"""Static program representation.

A :class:`Program` is an ordered list of static instructions plus a label
table.  Programs are produced either by the assembler
(:mod:`repro.isa.assembler`) from hand-written kernel sources, or
programmatically by the workload kernels.  The functional executor
(:mod:`repro.isa.executor`) runs a program to produce the dynamic trace the
timing models consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .instructions import Instruction, Opcode

#: Byte size of one instruction; pcs advance by this amount.
INSTRUCTION_SIZE = 4

#: Base address programs are loaded at (gives pcs a realistic magnitude so
#: cache indexing behaves like a real text segment).
TEXT_BASE = 0x0040_0000


@dataclass
class Program:
    """A static program: instructions, labels, and an entry point."""

    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    name: str = "program"
    text_base: int = TEXT_BASE

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    # ------------------------------------------------------------- addresses
    def pc_of_index(self, index: int) -> int:
        """Program counter of the instruction at list index ``index``."""
        return self.text_base + index * INSTRUCTION_SIZE

    def index_of_pc(self, pc: int) -> int:
        """List index of the instruction at ``pc``."""
        offset = pc - self.text_base
        if offset < 0 or offset % INSTRUCTION_SIZE != 0:
            raise ValueError(f"pc {pc:#x} is not aligned inside the program")
        index = offset // INSTRUCTION_SIZE
        if index >= len(self.instructions):
            raise ValueError(f"pc {pc:#x} is outside the program")
        return index

    def pc_of_label(self, label: str) -> int:
        """Program counter a label refers to."""
        if label not in self.labels:
            raise KeyError(f"unknown label {label!r}")
        return self.pc_of_index(self.labels[label])

    def instruction_at(self, pc: int) -> Instruction:
        """Static instruction at ``pc``."""
        return self.instructions[self.index_of_pc(pc)]

    # ------------------------------------------------------------ construction
    def add_label(self, label: str) -> None:
        """Attach ``label`` to the next instruction to be appended."""
        if label in self.labels:
            raise ValueError(f"duplicate label {label!r}")
        self.labels[label] = len(self.instructions)

    def append(self, instruction: Instruction) -> None:
        """Append one instruction to the text segment."""
        self.instructions.append(instruction)

    def extend(self, instructions) -> None:
        """Append a sequence of instructions to the text segment."""
        self.instructions.extend(instructions)

    # ---------------------------------------------------------------- queries
    @property
    def entry_pc(self) -> int:
        """Execution entry point: the ``main`` label if defined, else the text base."""
        return self.pc_of_label("main") if "main" in self.labels else self.text_base

    def static_mix(self) -> Dict[str, int]:
        """Histogram of static instruction classes (for reports and tests)."""
        mix: Dict[str, int] = {}
        for instr in self.instructions:
            key = instr.opclass.value
            mix[key] = mix.get(key, 0) + 1
        return mix

    def listing(self) -> str:
        """Human-readable assembly listing with pcs and labels."""
        index_to_labels: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            index_to_labels.setdefault(index, []).append(label)
        lines = []
        for index, instr in enumerate(self.instructions):
            for label in index_to_labels.get(index, []):
                lines.append(f"{label}:")
            lines.append(f"    {self.pc_of_index(index):#010x}  {instr}")
        return "\n".join(lines)

    def validate(self) -> None:
        """Check that every control-flow target label exists."""
        for instr in self.instructions:
            if instr.target_label is not None and instr.target_label not in self.labels:
                raise ValueError(
                    f"instruction {instr} references unknown label "
                    f"{instr.target_label!r}")
        if self.instructions and self.instructions[-1].opcode not in (
                Opcode.HALT, Opcode.J, Opcode.JR):
            # Falling off the end is almost always a kernel-authoring bug.
            raise ValueError(
                f"program {self.name!r} does not end in halt or an "
                f"unconditional jump")
