"""General-purpose event-driven simulation engine.

This is the Python equivalent of the C engine sketched in Figure 4 of the
paper: an event queue plus a global timer.  It can simulate purely
asynchronous systems, purely clocked systems (via periodic events -- one per
clock domain) and mixtures of the two, which is exactly what the GALS
processor model needs.

Typical use::

    engine = SimulationEngine()
    engine.schedule_periodic(start=0.5, period=2.0, callback=clock1_logic)
    engine.schedule_periodic(start=1.0, period=3.0, callback=clock2_logic)
    engine.schedule_periodic(start=0.0, period=2.5, callback=clock3_logic)
    engine.run(until=100.0)

Fast path
---------

A GALS run consists almost entirely of a handful of periodic clock-edge
events; one-shot events are rare.  The engine therefore keeps the periodic
events on a *clock wheel* -- a small list of chain records, one per clock,
each holding the chain's next edge time -- and merges the general-purpose
heap (one-shots, aperiodic events) into it only when the heap is non-empty.
Advancing a clock is then one C-level ``min()`` over the wheel plus a float
add, instead of a heap pop, an ``Event`` allocation and a heap push per edge.

Edge times are produced by the same repeated ``time += period`` float
addition the generic heap path uses, so the two paths are bit-identical:
identical seeds produce identical event orders, timestamps, and therefore
identical ``SimulationResult`` statistics (``use_wheel=False`` forces the
generic path; a regression test asserts the equivalence).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional

from .event import (CHAIN_CALLBACK, CHAIN_CANCELLED, CHAIN_HANDLE, CHAIN_NAME,
                    CHAIN_PARAM, CHAIN_PERIOD, CHAIN_PRIORITY, CHAIN_SEQ,
                    CHAIN_TIME, Event, SimulationError, _SEQUENCE)

#: Compact the heap once at least this many cancelled events are rotting in it
#: (and they make up the majority of the queue).
_COMPACT_THRESHOLD = 64


class SimulationEngine:
    """Discrete-event simulator with support for periodic (clock) events.

    Time is a float in nanoseconds by convention throughout the library,
    although the engine itself is unit-agnostic.

    ``use_wheel=False`` disables the clock-wheel fast path and schedules
    periodic events through the generic heap (the seed engine's behaviour);
    both paths are deterministic and produce identical simulations.
    """

    def __init__(self, use_wheel: bool = True) -> None:
        #: generic heap of (time, priority, seq, event) tuples
        self._queue: List[tuple] = []
        #: clock wheel: one chain record per periodic event (see event.py)
        self._wheel: List[list] = []
        self._use_wheel = use_wheel
        self._now: float = 0.0
        self._events_processed: int = 0
        self._running: bool = False
        self._stop_requested: bool = False
        self._cancelled_pending: int = 0
        self._current_chain: Optional[list] = None
        #: bumped on every wheel membership change; lets the run loop detect
        #: mid-run schedule/cancel of periodic chains even when the wheel
        #: length is unchanged
        self._wheel_version: int = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live events waiting to fire (cancelled events excluded)."""
        live_chains = sum(1 for chain in self._wheel
                          if not chain[CHAIN_CANCELLED])
        return len(self._queue) - self._cancelled_pending + live_chains

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        time: float,
        callback: Callable[[Any], None],
        param: Any = None,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule a one-shot event at absolute time ``time``."""
        if callback is None:
            raise SimulationError(
                f"cannot schedule event {name!r} without a callback")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = Event(time=time, priority=priority, callback=callback,
                      param=param, name=name)
        event._cancel_hook = self._note_cancelled
        heapq.heappush(self._queue, (time, priority, event.seq, event))
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[Any], None],
        param: Any = None,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule a one-shot event ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, callback, param, priority, name)

    def schedule_periodic(
        self,
        start: float,
        period: float,
        callback: Callable[[Any], None],
        param: Any = None,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule a periodic event -- the building block for clock domains.

        The first occurrence happens at absolute time ``start``; afterwards the
        event re-schedules itself every ``period`` time units until cancelled.
        The returned handle refers to the chain's next occurrence; cancelling
        it stops the whole chain.  To stop an already-running periodic chain
        use :meth:`cancel_chain` with the event name.
        """
        if callback is None:
            raise SimulationError(
                f"cannot schedule periodic event {name!r} without a callback")
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        if start < self._now:
            raise SimulationError(
                f"cannot start periodic event at {start} before now {self._now}"
            )
        event = Event(time=start, priority=priority, callback=callback,
                      param=param, period=period, name=name)
        if self._use_wheel:
            chain = [start, priority, event.seq, callback, param, period,
                     name, event, False]
            event._chain = chain
            self._wheel.append(chain)
            self._wheel_version += 1
        else:
            event._cancel_hook = self._note_cancelled
            heapq.heappush(self._queue, (start, priority, event.seq, event))
        return event

    def next_chain_time(self, name: str) -> Optional[float]:
        """Pending fire time of the live periodic chain named ``name``.

        Returns the earliest pending occurrence over both scheduler paths
        (clock wheel and generic heap), or ``None`` when no live event with
        that name is pending.  Used by mid-run DVFS retiming to anchor a
        domain's new clock schedule on the edge that is already in flight.
        """
        best: Optional[float] = None
        for chain in self._wheel:
            if chain[CHAIN_NAME] == name and not chain[CHAIN_CANCELLED]:
                time = chain[CHAIN_TIME]
                if best is None or time < best:
                    best = time
        for time, _, _, event in self._queue:
            if event.name == name and not event.cancelled:
                if best is None or time < best:
                    best = time
        return best

    def cancel_chain(self, name: str) -> int:
        """Cancel every pending event whose name matches ``name``.

        Returns the number of events cancelled.  Used to stop clock domains.
        The chain occurrence currently firing is not pending and therefore not
        cancelled (matching the generic path, where the firing event has
        already been popped off the queue).
        """
        count = 0
        current = self._current_chain
        for chain in self._wheel:
            if (chain[CHAIN_NAME] == name and not chain[CHAIN_CANCELLED]
                    and chain is not current):
                chain[CHAIN_HANDLE].cancel()
                count += 1
        self._prune_wheel()
        for _, _, _, event in self._queue:
            if event.name == name and not event.cancelled:
                event.cancel()
                count += 1
        return count

    # ----------------------------------------------- cancelled-event plumbing
    def _note_cancelled(self, _event: Event) -> None:
        """Cancel hook for heap events: track rot, compact past a threshold."""
        self._cancelled_pending += 1
        if (self._cancelled_pending >= _COMPACT_THRESHOLD
                and self._cancelled_pending * 2 > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events from the heap instead of letting them rot.

        In place: ``run()``/``step()`` hold direct references to the list.
        """
        self._queue[:] = [entry for entry in self._queue
                          if not entry[3].cancelled]
        heapq.heapify(self._queue)
        self._cancelled_pending = 0

    def _prune_wheel(self) -> None:
        """Remove cancelled chains (except the one currently firing)."""
        current = self._current_chain
        kept = [chain for chain in self._wheel
                if not chain[CHAIN_CANCELLED] or chain is current]
        if len(kept) != len(self._wheel):
            self._wheel[:] = kept
            self._wheel_version += 1

    def _discard_chain(self, chain: list) -> None:
        """Remove one chain from the wheel by identity (it may be gone
        already if a callback pruned it via cancel_chain)."""
        wheel = self._wheel
        for index in range(len(wheel)):
            if wheel[index] is chain:
                del wheel[index]
                self._wheel_version += 1
                return

    # ------------------------------------------------------------------- run
    def step(self) -> Optional[Event]:
        """Execute the single next non-cancelled event.  Returns it, or None."""
        queue = self._queue
        wheel = self._wheel
        while True:
            chain = None
            if wheel:
                chain = min(wheel)
                if chain[CHAIN_CANCELLED]:
                    self._discard_chain(chain)
                    continue
            head = None
            while queue:
                head = queue[0]
                if head[3].cancelled:
                    heapq.heappop(queue)
                    self._cancelled_pending -= 1
                    head = None
                    continue
                break
            if chain is None and head is None:
                return None
            if chain is not None and (
                    head is None
                    or (chain[0], chain[1], chain[2]) < (head[0], head[1], head[2])):
                return self._fire_chain(chain)
            heapq.heappop(queue)
            return self._fire_heap_event(head[3])

    def _fire_chain(self, chain: list) -> Event:
        time = chain[CHAIN_TIME]
        if time < self._now:
            raise SimulationError("event queue corrupted: time went backwards")
        self._now = time
        self._current_chain = chain
        chain[CHAIN_CALLBACK](chain[CHAIN_PARAM])
        self._current_chain = None
        self._events_processed += 1
        handle = chain[CHAIN_HANDLE]
        handle.time = time
        if chain[CHAIN_CANCELLED]:
            self._discard_chain(chain)
        else:
            # Fresh (seq, time) for the next occurrence, allocated after the
            # callback -- exactly when the generic path allocates the
            # rescheduled event -- so tie-breaking matches bit for bit.
            chain[CHAIN_SEQ] = next(_SEQUENCE)
            chain[CHAIN_TIME] = time + chain[CHAIN_PERIOD]
            handle.seq = chain[CHAIN_SEQ]
        return handle

    def _fire_heap_event(self, event: Event) -> Event:
        if event.time < self._now:
            raise SimulationError("event queue corrupted: time went backwards")
        # The event left the heap: a cancel() from here on must not count
        # toward the heap's cancelled-rot bookkeeping.
        event._cancel_hook = None
        self._now = event.time
        event.callback(event.param)
        self._events_processed += 1
        if event.period is not None and event.period > 0.0 and not event.cancelled:
            # Re-arm the *same* event object (fresh time and seq, allocated
            # after the callback exactly like the wheel path does), so the
            # handle returned by schedule_periodic stays live: cancelling it
            # stops the chain on both scheduler paths.
            event.time = event.time + event.period
            event.seq = next(_SEQUENCE)
            event._cancel_hook = self._note_cancelled
            heapq.heappush(self._queue,
                           (event.time, event.priority, event.seq, event))
        return event

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_condition: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Run the simulation.

        Parameters
        ----------
        until:
            Absolute time at which to stop (events at exactly ``until`` are
            still processed).  ``None`` runs until the queue drains.
        max_events:
            Safety limit on the number of events processed in this call.
        stop_condition:
            Callable evaluated after every event; simulation stops when it
            returns True.  Used to stop once a processor has committed the
            requested number of instructions.

        Returns the simulation time at which the run stopped.
        """
        self._running = True
        self._stop_requested = False
        processed = 0
        queue = self._queue
        wheel = self._wheel
        next_seq = _SEQUENCE.__next__
        events_done = self._events_processed
        # Hoisted sentinels: "no limit" becomes +inf so the per-event checks
        # are single float comparisons with no None tests.
        horizon = float("inf") if until is None else until
        event_limit = float("inf") if max_events is None else max_events
        try:
            while not self._stop_requested:
                if not queue and wheel:
                    # ---- clock-wheel fast path: periodic events only ----
                    # Equal-period wheels (the uniform GALS plan and the
                    # synchronous machine) fire in a fixed rotation: float
                    # rounding is monotonic, so per-chain `time += period`
                    # never reorders chains, and exact-tie breaking by seq
                    # agrees with the rotation because the chain that fired
                    # first also drew its fresh seq first.  One hyperperiod
                    # is simply one pass over the sorted chains, so the
                    # merged edge schedule needs no priority queue at all.
                    # The rotation is only valid while the next-edge times
                    # span less than one period (guaranteed to persist once
                    # true); chains started more than a period apart, and
                    # unequal periods, fall back to a C-level min() over the
                    # handful of chains (accumulated float edge times make a
                    # precomputed rational-ratio pattern unsafe to trust
                    # without re-verifying the order, which would cost the
                    # same min() again).
                    rotation = None
                    period = wheel[0][5]
                    priority = wheel[0][1]
                    for chain in wheel:
                        if chain[5] != period or chain[1] != priority:
                            break
                    else:
                        rotation = sorted(wheel)
                        if rotation[-1][0] - rotation[0][0] >= period:
                            rotation = None
                    index = 0
                    wheel_size = len(wheel)
                    wheel_version = self._wheel_version
                    if stop_condition is None and max_events is None:
                        # Leanest variant (every full processor run): no
                        # per-edge stop-condition or event-budget checks --
                        # the pipeline stops the engine via stop().
                        while not self._stop_requested:
                            if rotation is not None:
                                chain = rotation[index]
                                index += 1
                                if index == wheel_size:
                                    index = 0
                            else:
                                chain = min(wheel)
                            if chain[8]:        # CHAIN_CANCELLED
                                self._discard_chain(chain)
                                break
                            time = chain[0]     # CHAIN_TIME
                            if time > horizon:
                                self._now = until
                                return self._now
                            self._now = time
                            self._current_chain = chain
                            # callbacks observe the pre-event count, exactly
                            # as on the generic path
                            self._events_processed = events_done
                            chain[3](chain[4])  # CHAIN_CALLBACK(CHAIN_PARAM)
                            self._current_chain = None
                            events_done += 1
                            if chain[8]:
                                self._discard_chain(chain)
                                break
                            chain[2] = next_seq()       # CHAIN_SEQ
                            chain[0] = time + chain[5]  # TIME += PERIOD
                            if queue or self._wheel_version != wheel_version:
                                break   # one-shots scheduled / chains changed
                        self._events_processed = events_done
                        continue
                    while not self._stop_requested:
                        if rotation is not None:
                            chain = rotation[index]
                            index += 1
                            if index == wheel_size:
                                index = 0
                        else:
                            chain = min(wheel)
                        if chain[8]:            # CHAIN_CANCELLED
                            self._discard_chain(chain)
                            break
                        time = chain[0]         # CHAIN_TIME
                        if time > horizon:
                            self._now = until
                            return self._now
                        self._now = time
                        self._current_chain = chain
                        # callbacks observe the pre-event count, exactly as
                        # on the generic path (step() increments after fire)
                        self._events_processed = events_done
                        chain[3](chain[4])      # CHAIN_CALLBACK(CHAIN_PARAM)
                        self._current_chain = None
                        events_done += 1
                        if chain[8]:
                            self._discard_chain(chain)
                            break
                        chain[2] = next_seq()       # CHAIN_SEQ
                        chain[0] = time + chain[5]  # CHAIN_TIME += CHAIN_PERIOD
                        processed += 1
                        if stop_condition is not None:
                            self._events_processed = events_done
                            if stop_condition():
                                return self._now
                        if processed >= event_limit:
                            return self._now
                        if queue or self._wheel_version != wheel_version:
                            break   # one-shots scheduled / chains changed
                    self._events_processed = events_done
                else:
                    # ---- general path: one-shots pending, or wheel empty ----
                    next_time = self._peek_time()
                    if next_time is None:
                        break
                    if next_time > horizon:
                        self._now = until
                        break
                    if self.step() is None:
                        break
                    events_done = self._events_processed
                    processed += 1
                    if stop_condition is not None and stop_condition():
                        break
                    if processed >= event_limit:
                        break
        finally:
            if events_done > self._events_processed:
                self._events_processed = events_done
            self._running = False
        return self._now

    def stop(self) -> None:
        """Request the current :meth:`run` call to stop after the current event."""
        self._stop_requested = True

    def _peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None if none is pending."""
        queue = self._queue
        while queue and queue[0][3].cancelled:
            heapq.heappop(queue)
            self._cancelled_pending -= 1
        best: Optional[float] = queue[0][0] if queue else None
        for chain in self._wheel:
            if not chain[CHAIN_CANCELLED]:
                time = chain[CHAIN_TIME]
                if best is None or time < best:
                    best = time
        return best

    # ------------------------------------------------------------------ misc
    def drain(self) -> Iterable[Event]:
        """Remove and yield all remaining events without executing them."""
        remaining: List[Event] = []
        while self._queue:
            _, _, _, event = heapq.heappop(self._queue)
            event._cancel_hook = None   # no longer queued: detach bookkeeping
            if not event.cancelled:
                remaining.append(event)
        self._cancelled_pending = 0
        for chain in self._wheel:
            handle = chain[CHAIN_HANDLE]
            handle._chain = None
            if not chain[CHAIN_CANCELLED]:
                handle.time = chain[CHAIN_TIME]
                handle.seq = chain[CHAIN_SEQ]
                remaining.append(handle)
        if self._wheel:
            self._wheel.clear()
            self._wheel_version += 1
        remaining.sort(key=lambda e: (e.time, e.priority, e.seq))
        yield from remaining

    def reset(self) -> None:
        """Clear the queue and reset time to zero."""
        for _, _, _, event in self._queue:
            event._cancel_hook = None
        for chain in self._wheel:
            chain[CHAIN_HANDLE]._chain = None
        self._queue.clear()
        self._wheel.clear()
        self._wheel_version += 1
        self._now = 0.0
        self._events_processed = 0
        self._stop_requested = False
        self._cancelled_pending = 0
        self._current_chain = None
