"""Tests for DVFS policies and the experiment drivers (paper Section 5.2)."""

import pytest

from repro.core.dvfs import (GCC_GALS_1, GCC_GALS_2, GENERIC_SLOWDOWN, IJPEG_SWEEP,
                             PERL_FP_BY_3, POLICIES, SlowdownPolicy, get_policy,
                             recommend_policy)
from repro.core.experiments import (average_energy_increase,
                                    average_performance_drop, average_power_saving,
                                    baseline_comparison, phase_sensitivity,
                                    run_pair, run_single)
from repro.core.metrics import ComparisonRow
from repro.power.technology import DEFAULT_TECHNOLOGY
from repro.workloads.profiles import get_profile


# ------------------------------------------------------------------- policies
def test_paper_policies_are_registered():
    assert get_policy("generic") is GENERIC_SLOWDOWN
    assert get_policy("gals-1") is GCC_GALS_1
    assert get_policy("gals-2") is GCC_GALS_2
    assert get_policy("perl-fp3") is PERL_FP_BY_3
    assert len([p for p in POLICIES if p.startswith("gals-")]) >= 5
    with pytest.raises(KeyError):
        get_policy("turbo")


def test_figure11_policy_matches_paper_description():
    slowdowns = GENERIC_SLOWDOWN.slowdowns
    assert slowdowns["fetch"] == pytest.approx(1.10)
    assert slowdowns["memory"] == pytest.approx(1.10)
    assert slowdowns["fp"] == pytest.approx(1.50)


def test_figure12_sweep_covers_four_memory_slowdowns():
    memory_factors = [policy.slowdowns.get("memory", 1.0) for policy in IJPEG_SWEEP]
    assert memory_factors == pytest.approx([1.0, 1.10, 1.20, 1.50])
    for policy in IJPEG_SWEEP:
        assert policy.slowdowns["fetch"] == pytest.approx(1.10)
        assert policy.slowdowns["fp"] == pytest.approx(1.20)


def test_figure13_gals2_slows_fp_by_factor_three():
    assert GCC_GALS_2.slowdowns["fp"] == pytest.approx(3.0)


def test_policy_validation():
    with pytest.raises(ValueError):
        SlowdownPolicy("bad", "", {"gpu": 2.0})
    with pytest.raises(ValueError):
        SlowdownPolicy("bad", "", {"fp": 0.5})


def test_policy_plan_and_voltages():
    plan = GENERIC_SLOWDOWN.plan()
    assert plan.scale_voltages
    voltages = GENERIC_SLOWDOWN.voltages()
    assert voltages["fp"] < voltages["fetch"] < DEFAULT_TECHNOLOGY.nominal_vdd


def test_recommend_policy_follows_application_characteristics():
    perl_policy = recommend_policy(get_profile("perl"))
    assert perl_policy.slowdowns["fp"] == pytest.approx(3.0)
    swim_policy = recommend_policy(get_profile("swim"))
    assert "fp" not in swim_policy.slowdowns or swim_policy.slowdowns["fp"] < 2.0
    assert "fetch" in swim_policy.slowdowns  # swim has very few branches


# ------------------------------------------------------------------ experiments
def test_run_single_rejects_unknown_processor_kind():
    with pytest.raises(ValueError):
        run_single("perl", processor="quantum", num_instructions=100)


def test_run_pair_returns_comparison_row(perl_pair):
    assert isinstance(perl_pair, ComparisonRow)
    assert perl_pair.benchmark == "perl"
    assert perl_pair.base_result.processor == "base"
    assert perl_pair.gals_result.processor == "gals"


def test_baseline_comparison_and_averages():
    rows = baseline_comparison(["adpcm", "epic"], num_instructions=400)
    assert [row.benchmark for row in rows] == ["adpcm", "epic"]
    drop = average_performance_drop(rows)
    saving = average_power_saving(rows)
    energy = average_energy_increase(rows)
    assert -0.05 < drop < 0.5
    assert -0.05 < saving < 0.5
    assert -0.3 < energy < 0.3


def test_selective_slowdown_gcc_case_study(gcc_dvfs_result):
    """Figure 13 shape: slowing gcc's FP clock costs little performance and
    saves power once voltages scale."""
    result = gcc_dvfs_result
    assert result.policy == "gals-1"
    assert 0.6 < result.relative_performance < 1.0
    assert result.relative_power < 1.0
    assert result.relative_energy < 1.1
    # the "ideal" reference is a voltage-scaled synchronous machine at the
    # same performance, so it is always at least as good as doing nothing
    assert result.ideal_energy <= 1.0
    assert result.performance_drop == pytest.approx(1 - result.relative_performance)
    assert result.power_saving == pytest.approx(1 - result.relative_power)


def test_phase_sensitivity_reports_small_spread():
    report = phase_sensitivity("adpcm", phase_seeds=(0, 1, 2),
                               num_instructions=400)
    assert set(report) == {"phase-0", "phase-1", "phase-2", "spread"}
    assert report["spread"] < 0.08
    for key, value in report.items():
        if key != "spread":
            assert 0.5 < value <= 1.05


def test_policy_projection_onto_topologies():
    """Per-block policies project onto any topology's domains (max wins)."""
    from repro.core.domains import get_topology
    from repro.core.dvfs import GENERIC_SLOWDOWN

    # gals5 is the identity: the projection equals the policy itself
    gals5 = get_topology("gals5")
    assert GENERIC_SLOWDOWN.project_onto(gals5) == dict(
        GENERIC_SLOWDOWN.slowdowns)
    # frontback2 merges fetch into 'front' and fp/memory into 'back';
    # the back domain takes the largest member slowdown (fp's 1.5)
    front_back = get_topology("frontback2")
    assert GENERIC_SLOWDOWN.project_onto(front_back) == {
        "front": 1.10, "back": 1.50}
    plan = GENERIC_SLOWDOWN.plan_for(front_back, scale_voltages=True)
    assert plan.slowdowns == {"front": 1.10, "back": 1.50}
    assert plan.voltage_of("back") < plan.voltage_of("front")
