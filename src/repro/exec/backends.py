"""Pluggable job backends: the execution fabric behind scenario sweeps.

A :class:`JobBackend` turns a list of missing scenarios into completed
:class:`JobHandle` objects; :func:`~repro.results.runner.resume_sweep` (and
everything layered on it, up to the ``repro serve`` results service) only
talks to this protocol, so the execution fabric is swappable per call:

* ``serial`` -- one scenario at a time, in-process (no pool, no forking;
  deterministic and debugger-friendly);
* ``local`` -- the warm-started :class:`~concurrent.futures.ProcessPoolExecutor`
  fan-out (bit-identical to the pre-backend sweep path, and the default);
* ``subprocess`` -- N independent worker *processes* coordinating purely
  through a shared results store (queue files + atomic claim files under the
  store root), the multi-host-shaped fabric: point several machines at one
  ``REPRO_CACHE_DIR`` on shared storage and they divide the queue between
  them.

Backends register by name in :data:`JOB_BACKENDS` (shown by ``repro list
backends`` next to the kernel backends) so new fabrics -- a cluster
scheduler, an rsh/ssh fan-out in the style of instrumentation-infra's
``prun`` -- plug in without touching the sweep code.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import (TYPE_CHECKING, Callable, Dict, List, Optional, Sequence,
                    Tuple, Union)

from ..core.controllers import CONTROLLERS
from ..core.domains import TOPOLOGIES
from ..core.dvfs import POLICIES
from ..core.scenario import (Scenario, ScenarioResult, WorkloadSpec,
                             default_jobs, run_scenario, warm_worker)
from ..workloads.registry import WORKLOADS
from .config import ExecutionConfig

if TYPE_CHECKING:  # pragma: no cover - the import-time dependency must stay
    from ..results.store import ResultsStore  # one-way: results -> exec


def timed_run_scenario(scenario: Scenario) -> Tuple[ScenarioResult, float]:
    """Top-level (picklable) run returning (outcome, wall seconds)."""
    start = time.perf_counter()
    outcome = run_scenario(scenario)
    return outcome, time.perf_counter() - start


# ------------------------------------------------------ failure classification
#: Exception types that indicate the *fabric* failed, not the simulation.
INFRASTRUCTURE_ERRORS = (OSError, BrokenProcessPool)


def is_infrastructure_error(exc: BaseException) -> bool:
    """True when ``exc`` is an infrastructure failure worth retrying.

    Infrastructure failures -- ``OSError`` (filesystem hiccups, torn reads,
    spawn failures) and a :class:`BrokenProcessPool` -- are transient shapes:
    the same scenario may well succeed on the next attempt, so the fabric
    retries them with backoff.  Everything else is a *deterministic*
    simulation exception: retrying would fail identically, so those fail
    fast (and poison jobs are quarantined instead of retried).
    """
    return isinstance(exc, INFRASTRUCTURE_ERRORS)


def retry_delay(backoff: float, attempt: int, token: str) -> float:
    """Exponential backoff with deterministic per-(token, attempt) jitter.

    Attempt ``k`` (1-based) waits ``backoff * 2**(k-1)`` plus a jitter drawn
    from ``random.Random(f"{token}:{k}")`` -- deterministic so chaos runs
    replay identically, jittered so a fleet of retrying workers does not
    stampede the shared store in lockstep.  Capped at 5 seconds.
    """
    import random
    base = backoff * (2 ** max(attempt - 1, 0))
    jitter = random.Random(f"{token}:{attempt}").uniform(0.0, backoff)
    return min(base + jitter, 5.0)


# ------------------------------------------------------------------- handles
@dataclass
class JobHandle:
    """One submitted scenario's lifecycle under a job backend.

    ``index`` is the scenario's position in the ``submit()`` call;
    ``stored_key`` is set when the backend itself already persisted the
    result (the ``subprocess`` workers publish straight into the shared
    store), telling the caller not to ``put()`` a second time.
    """

    index: int
    scenario: Scenario
    done: bool = False
    outcome: Optional[ScenarioResult] = None
    seconds: float = 0.0
    stored_key: Optional[str] = None

    def complete(self, outcome: ScenarioResult, seconds: float,
                 stored_key: Optional[str] = None) -> "JobHandle":
        """Mark this handle finished with its outcome; returns itself."""
        self.outcome = outcome
        self.seconds = seconds
        self.stored_key = stored_key
        self.done = True
        return self


class JobBackend:
    """Protocol of a sweep execution fabric (duck-typed base class).

    The contract: ``warm(specs)`` may pre-build workloads, ``submit(
    scenarios)`` returns one :class:`JobHandle` per scenario, repeated
    ``poll()`` calls each return at least one newly completed handle while
    any job is pending (blocking as needed) and ``[]`` once none are, and
    ``cancel()`` abandons outstanding work and releases resources (always
    called, including after errors).  Scenario execution funnels through
    :func:`~repro.core.scenario.run_scenario`, so every backend produces
    bit-identical results for the same scenario.
    """

    #: registry name (overridden per implementation)
    name = "abstract"

    def warm(self, specs: Sequence[WorkloadSpec]) -> None:
        """Pre-build the sweep's workloads (default: in this process)."""
        warm_worker(specs)

    def submit(self, scenarios: Sequence[Scenario]) -> List[JobHandle]:
        """Queue the scenarios; returns their handles in submission order."""
        raise NotImplementedError

    def poll(self) -> List[JobHandle]:
        """Newly completed handles; ``[]`` only when nothing is pending."""
        raise NotImplementedError

    def cancel(self) -> None:
        """Abandon outstanding jobs and release backend resources."""


# ------------------------------------------------------------- serial backend
class SerialBackend(JobBackend):
    """Run scenarios one at a time in the calling process.

    No pool, no forking: the backend for restricted sandboxes, debugging
    (breakpoints work) and the results service's low-footprint drain mode.
    """

    name = "serial"

    def __init__(self, config: ExecutionConfig,
                 store: Optional[ResultsStore] = None) -> None:
        self.config = config
        self.store = store
        self._queue: List[JobHandle] = []

    def submit(self, scenarios: Sequence[Scenario]) -> List[JobHandle]:
        """Queue the scenarios for one-at-a-time execution."""
        handles = [JobHandle(index, scenario)
                   for index, scenario in enumerate(scenarios)]
        self._queue = list(handles)
        return handles

    def poll(self) -> List[JobHandle]:
        """Run the next queued scenario and return its completed handle."""
        if not self._queue:
            return []
        handle = self._queue.pop(0)
        return [handle.complete(*timed_run_scenario(handle.scenario))]

    def cancel(self) -> None:
        """Drop every queued (not yet started) scenario."""
        self._queue.clear()


# --------------------------------------------------------- local pool backend
class LocalPoolBackend(JobBackend):
    """Warm-started ``ProcessPoolExecutor`` fan-out (the default backend).

    Behaviour matches the pre-backend sweep path bit for bit: one worker per
    job up to ``jobs``/``REPRO_JOBS``/CPU count, workers warm-started via the
    pool initializer, and graceful degradation to in-process execution when
    the pool infrastructure is unavailable (sandboxes without fork/sem
    support) or dies mid-sweep.  Real worker exceptions -- a scenario that
    raises -- propagate unchanged; only *pool-infrastructure* failures and
    spawn-worker registry misses divert jobs to the in-process fallback.
    """

    name = "local"

    def __init__(self, config: ExecutionConfig,
                 store: Optional[ResultsStore] = None) -> None:
        self.config = config
        self.store = store
        self._handles: List[JobHandle] = []
        self._futures: Dict[object, JobHandle] = {}
        self._executor: Optional[ProcessPoolExecutor] = None
        self._serial: List[JobHandle] = []
        self._specs: Tuple[WorkloadSpec, ...] = ()
        self._rebuilds = 0

    def warm(self, specs: Sequence[WorkloadSpec]) -> None:
        """Warm the parent's workload memo and remember the specs for workers."""
        self._specs = tuple(specs)
        warm_worker(self._specs)

    def submit(self, scenarios: Sequence[Scenario]) -> List[JobHandle]:
        """Fan the scenarios out over the pool (or queue them in-process)."""
        self._handles = [JobHandle(index, scenario)
                         for index, scenario in enumerate(scenarios)]
        jobs = (self.config.jobs if self.config.jobs is not None
                else default_jobs())
        workers = min(max(1, jobs), len(self._handles))
        if workers > 1:
            # Pool infrastructure failure (sandboxes without fork/sem
            # support): the parent can still run everything itself.
            self._start_pool(self._handles)
        if self._executor is None:
            self._serial = list(self._handles)
        return list(self._handles)

    def _start_pool(self, handles: Sequence[JobHandle]) -> bool:
        """Build the executor and submit ``handles``; False on infra failure."""
        jobs = (self.config.jobs if self.config.jobs is not None
                else default_jobs())
        workers = min(max(1, jobs), max(len(handles), 1))
        try:
            self._executor = ProcessPoolExecutor(
                max_workers=workers, initializer=warm_worker,
                initargs=(self._specs,))
            self._futures = {
                self._executor.submit(timed_run_scenario, handle.scenario):
                handle for handle in handles}
            return True
        except (OSError, PermissionError):
            self._futures.clear()
            self._teardown_pool()
            return False

    def poll(self) -> List[JobHandle]:
        """Wait for pool completions (or run one in-process fallback job)."""
        completed: List[JobHandle] = []
        if self._futures:
            done, _ = wait(list(self._futures), return_when=FIRST_COMPLETED)
            for future in done:
                handle = self._futures.pop(future)
                try:
                    outcome, seconds = future.result()
                except (OSError, PermissionError, BrokenProcessPool):
                    # The pool died mid-sweep -- an infrastructure failure:
                    # rebuild it (with backoff) up to max_retries times before
                    # degrading this job and every still-queued one to the
                    # in-process fallback.
                    pending = [handle] + list(self._futures.values())
                    pending.sort(key=lambda item: item.index)
                    self._futures.clear()
                    self._teardown_pool()
                    self._rebuilds += 1
                    if self._rebuilds <= self.config.max_retries:
                        time.sleep(retry_delay(self.config.retry_backoff,
                                               self._rebuilds, "local-pool"))
                        if self._start_pool(pending):
                            break
                    self._serial.extend(pending)
                    self._serial.sort(key=lambda item: item.index)
                    break
                except KeyError:
                    # A spawn/forkserver worker re-imported the package with
                    # fresh registries and could not resolve a name that was
                    # registered at runtime in the parent.  Only that exact
                    # shape is retried in-process; a KeyError the parent
                    # cannot explain either is a real bug and surfaces.
                    if not _parent_can_resolve(handle.scenario):
                        raise
                    self._serial.append(handle)
                    continue
                completed.append(handle.complete(outcome, seconds))
            if completed:
                return completed
        if self._serial:
            handle = self._serial.pop(0)
            return [handle.complete(*timed_run_scenario(handle.scenario))]
        return completed

    def cancel(self) -> None:
        """Cancel queued pool futures and shut the executor down."""
        for future in self._futures:
            future.cancel()
        self._futures.clear()
        self._serial.clear()
        self._teardown_pool()

    def _teardown_pool(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None


def _parent_can_resolve(scenario: Scenario) -> bool:
    """True when every registry name the scenario uses resolves here.

    Distinguishes a worker-side registry miss (runtime registration the
    worker's re-imported registries lack -- retry in the parent) from a
    genuinely unknown name or a simulation-bug ``KeyError`` (surface it).
    """
    return (scenario.topology in TOPOLOGIES
            and scenario.workload in WORKLOADS
            and (scenario.policy is None or scenario.policy in POLICIES)
            and (scenario.controller is None
                 or scenario.controller in CONTROLLERS))


# --------------------------------------------------------- subprocess backend
class SubprocessBackend(JobBackend):
    """N worker processes coordinating through the shared results store.

    The multi-host-shaped fabric: ``submit()`` writes one queue file per
    scenario under ``<store root>/queue/``, spawns ``jobs`` detached
    ``python -m repro.exec.worker`` processes against the same store root,
    and ``poll()`` watches the store for published results -- the
    instrumentation-infra ``prun`` loop (queue jobs, poll completion,
    aggregate).  Workers claim jobs via atomic claim files
    (:meth:`~repro.results.store.ResultsStore.try_claim`), publish with the
    store's atomic ``put()`` and exit when the queue runs dry.  Because the
    only coordination substrate is the store directory, workers started by
    hand on *other hosts* against a shared filesystem participate in exactly
    the same way.  Jobs the workers cannot finish (crashes, registry names
    only the parent knows) fall back to in-process execution once every
    worker has exited, so the sweep still completes -- or surfaces the real
    exception with full context.
    """

    name = "subprocess"

    def __init__(self, config: ExecutionConfig,
                 store: Optional[ResultsStore]) -> None:
        if store is None:
            raise ValueError(
                "the 'subprocess' job backend requires a results store: its "
                "queue and claim files live under the store root (pass "
                "store=/--cache, or use the 'local' backend)")
        self.config = config
        self.store = store
        self._handles: List[JobHandle] = []
        self._pending: List[JobHandle] = []
        self._workers: List[subprocess.Popen] = []

    def submit(self, scenarios: Sequence[Scenario]) -> List[JobHandle]:
        """Enqueue job files in the store and spawn the worker processes."""
        from .worker import enqueue_job
        self._handles = [JobHandle(index, scenario)
                         for index, scenario in enumerate(scenarios)]
        for handle in self._handles:
            enqueue_job(self.store, handle.scenario)
        self._pending = list(self._handles)
        jobs = (self.config.jobs if self.config.jobs is not None
                else default_jobs())
        workers = min(max(1, jobs), len(self._handles))
        command = [sys.executable, "-m", "repro.exec.worker",
                   "--store", str(self.store.root), "--exit-when-idle",
                   "--poll-interval", str(self.config.poll_interval),
                   "--max-retries", str(self.config.max_retries),
                   "--retry-backoff", str(self.config.retry_backoff)]
        for _ in range(workers):
            try:
                self._workers.append(subprocess.Popen(
                    command, env=_worker_environment(),
                    stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL))
            except OSError:
                # cannot spawn (restricted environment): the in-process
                # fallback in poll() still completes the sweep
                break
        return list(self._handles)

    def poll(self) -> List[JobHandle]:
        """Collect results the workers published into the shared store."""
        from .worker import read_error, withdraw_error
        if not self._pending:
            return []
        completed: List[JobHandle] = []
        for handle in list(self._pending):
            hit = self.store.get_with_seconds(handle.scenario)
            if hit is not None:
                outcome, seconds = hit
                completed.append(handle.complete(
                    outcome, seconds,
                    stored_key=self.store.key_for(handle.scenario)))
                self._pending.remove(handle)
        if completed:
            return completed
        for handle in list(self._pending):
            key = self.store.key_for(handle.scenario)
            marker = read_error(self.store, key)
            if marker is not None and marker.get("quarantined"):
                # A worker gave up on this job (poison scenario, exhausted
                # retries, or a registry name only this process knows):
                # compute it in-process immediately so the sweep finishes or
                # the real exception surfaces with full context.
                self._pending.remove(handle)
                done = handle.complete(*timed_run_scenario(handle.scenario))
                withdraw_error(self.store, key)
                return [done]
        if not any(worker.poll() is None for worker in self._workers):
            # Every worker has exited yet jobs remain (a worker crashed, or
            # a scenario references registry names only this process knows):
            # finish in-process so the sweep completes or the real exception
            # surfaces with full context.
            handle = self._pending.pop(0)
            self._dequeue(handle.scenario)
            return [handle.complete(*timed_run_scenario(handle.scenario))]
        time.sleep(self.config.poll_interval)
        return []

    def cancel(self) -> None:
        """Stop the workers, release their claims, withdraw queued jobs.

        Termination escalates: ``terminate()`` (SIGTERM) first, and any
        worker still alive after the 5 s grace ``wait`` gets ``kill()``
        (SIGKILL) and a blocking reap.  Claims the stopped workers still
        held are then released outright -- the holders are provably dead,
        so a cancelled sweep can be resumed immediately instead of waiting
        out the lease TTL.
        """
        from ..results.store import _hostname
        for worker in self._workers:
            if worker.poll() is None:
                worker.terminate()
        for worker in self._workers:
            try:
                worker.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                worker.kill()
                worker.wait()
        pids = {worker.pid for worker in self._workers}
        self._workers.clear()
        for claim in self.store.list_claims():
            if claim.pid in pids and claim.host == _hostname():
                self.store.release_claim(claim.key)
        for handle in self._pending:
            self._dequeue(handle.scenario)
        self._pending.clear()

    def _dequeue(self, scenario: Scenario) -> None:
        from .worker import withdraw_job
        withdraw_job(self.store, self.store.key_for(scenario))


def _worker_environment() -> Dict[str, str]:
    """Environment for worker processes: parent env + importable ``repro``.

    Prepending the installed package's parent directory to ``PYTHONPATH``
    keeps workers importable both for ``pip install -e .`` checkouts and
    for ``PYTHONPATH=src`` source runs.
    """
    environment = dict(os.environ)
    package_parent = str(Path(__file__).resolve().parent.parent.parent)
    existing = environment.get("PYTHONPATH", "")
    if package_parent not in existing.split(os.pathsep):
        environment["PYTHONPATH"] = (
            package_parent + (os.pathsep + existing if existing else ""))
    return environment


# ------------------------------------------------------------------- registry
@dataclass(frozen=True)
class JobBackendInfo:
    """Registry entry: backend name, factory and one-line description."""

    name: str
    factory: Callable[[ExecutionConfig, Optional[ResultsStore]], JobBackend]
    description: str


JOB_BACKENDS: Dict[str, JobBackendInfo] = {}


def register_job_backend(name: str,
                         factory: Callable[..., JobBackend],
                         description: str = "") -> None:
    """Register a job backend factory under ``name``.

    The factory is called as ``factory(config, store)`` with the resolved
    :class:`ExecutionConfig` and the sweep's results store (or ``None``).
    """
    if name in JOB_BACKENDS:
        raise ValueError(f"job backend {name!r} already registered")
    JOB_BACKENDS[name] = JobBackendInfo(name=name, factory=factory,
                                        description=description)


def available_job_backends() -> Tuple[str, ...]:
    """Registered job backend names, in registration order."""
    return tuple(JOB_BACKENDS)


def make_job_backend(execution: Union[ExecutionConfig, str],
                     store: Optional[ResultsStore] = None) -> JobBackend:
    """Instantiate the job backend an execution config (or name) selects."""
    if isinstance(execution, str):
        execution = ExecutionConfig(backend=execution)
    try:
        info = JOB_BACKENDS[execution.backend]
    except KeyError as exc:
        raise KeyError(f"unknown job backend {execution.backend!r}; known: "
                       f"{', '.join(sorted(JOB_BACKENDS))}") from exc
    return info.factory(execution, store)


register_job_backend(
    "serial", SerialBackend,
    "one scenario at a time, in-process (no pool; sandbox/debug-friendly)")
register_job_backend(
    "local", LocalPoolBackend,
    "warm-started ProcessPoolExecutor fan-out on this machine (default)")
register_job_backend(
    "subprocess", SubprocessBackend,
    "worker processes coordinating via queue+claim files in the shared "
    "results store (multi-host-shaped; requires a store)")
