#!/usr/bin/env python3
"""Clock-distribution case study (paper Section 2, Table 1) and the GALS
motivation, plus a look at the asynchronous-interface design space (§3.2).

This example reproduces the argument that motivates GALS design:

1. global clock skew consumes a growing fraction of the cycle time across
   process generations (Table 1), and extrapolating the trend makes a global
   clock increasingly expensive;
2. the two candidate asynchronous communication mechanisms behave very
   differently in a processor pipeline: pausible (stretchable) clocks degrade
   the effective frequency with the communication rate, while the mixed-clock
   FIFO costs only a small, bounded synchronization latency per crossing.

Usage::

    python examples/clock_distribution_study.py
"""

from repro.analysis import clock_skew_table, projected_skew_fraction, skew_trend
from repro.async_comm import MixedClockFifo, PausibleClockModel
from repro.core import TOPOLOGIES
from repro.sim.clock import Clock


def main() -> None:
    print("=== Table 1: clock skew across process generations ===")
    print(clock_skew_table())
    print()
    print("skew as a fraction of the cycle time:")
    for design, fraction in skew_trend():
        print(f"  {design:<36} {fraction:6.1%}")
    print()
    for tech in (0.13, 0.09, 0.065):
        print(f"projected un-deskewed skew fraction at {tech:.3f} um: "
              f"{projected_skew_fraction(tech):.1%}")
    print()

    print("=== Asynchronous communication mechanisms (Section 3.2) ===")
    print("pausible (stretchable) clocking, 1 GHz ring oscillator:")
    pausible = PausibleClockModel(nominal_period=1.0, stretch_per_transaction=0.75)
    for rate in (0.1, 0.5, 1.0):
        print(f"  {rate:4.1f} transactions/cycle -> effective frequency "
              f"{pausible.effective_frequency(rate):.2f} GHz "
              f"({pausible.slowdown(rate):.2f}x slowdown)")
    print()
    print("mixed-clock FIFO between a 1 GHz producer and a 0.9 GHz consumer:")
    fifo = MixedClockFifo("demo", capacity=8,
                          producer_clock=Clock("producer", period=1.0),
                          consumer_clock=Clock("consumer", period=1.111, phase=0.3),
                          consumer_sync=1, producer_sync=1)
    for push_time in (0.0, 1.0, 2.0, 3.0):
        fifo.push(f"word@{push_time}", push_time)
    time = 0.0
    received = 0
    while received < 4:
        time += 0.1
        if fifo.can_pop(time):
            word = fifo.pop(time)
            print(f"  {word:<12} popped at t={time:4.1f} ns "
                  f"(waited {fifo.last_pop_wait:.1f} ns)")
            received += 1
    print()
    print("Conclusion: in a pipeline that communicates almost every cycle, the")
    print("FIFO's bounded per-crossing latency is the viable mechanism, which")
    print("is what the GALS processor model uses.")
    print()

    print("=== Registered clock-domain topologies (the resulting design space) ===")
    print("Each partitioning trades FIFO crossings against clocking freedom;")
    print("run any of them with `python -m repro run <name>`:")
    print()
    for topology in TOPOLOGIES.values():
        crossings = len(topology.edges())
        print(f"  {topology.name:<11} {topology.num_domains} domain(s), "
              f"{crossings} mixed-clock crossing(s)")


if __name__ == "__main__":
    main()
