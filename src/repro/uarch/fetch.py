"""Instruction fetch unit (clock domain 1: I-cache + branch predictor).

Per clock edge the fetch unit reads up to ``fetch_width`` instructions from
the correct-path trace, predicts conditional branches, and pushes the fetched
instructions into the fetch->decode channel (a plain pipeline queue in the
synchronous machine, a mixed-clock FIFO in the GALS machine).

Misprediction handling is where the GALS performance loss largely comes from:
when a branch is fetched with a wrong prediction the fetch unit keeps fetching
*wrong-path* instructions -- synthesised by the workload -- until the redirect
message, sent by the execution cluster at branch resolution, arrives through
the redirect channel.  In the GALS machine that message has to cross a FIFO
into the fetch clock domain, so the wrong-path episode is longer and more
speculative work is wasted (Figure 8), and the recovery pipeline is
effectively longer (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..isa.instructions import InstructionClass
from ..isa.program import INSTRUCTION_SIZE
from ..isa.trace import InstructionSource, ListTraceSource, TraceInstruction
from ..memory.hierarchy import MemoryHierarchy
from ..sim.channel import Channel
from .branch_predictor import BranchUnit
from .instruction import DynamicInstruction


@dataclass
class RedirectMessage:
    """Message sent from branch resolution back to fetch."""

    epoch: int
    branch_seq: int
    resume_pc: int


def _default_wrong_path(pc: int, offset: int) -> TraceInstruction:
    """Fallback wrong-path instruction generator (simple integer mix)."""
    classes = (InstructionClass.INT_ALU, InstructionClass.INT_ALU,
               InstructionClass.LOAD, InstructionClass.INT_ALU)
    opclass = classes[offset % len(classes)]
    return TraceInstruction(index=-1, pc=pc, opclass=opclass, dest=1 + (offset % 20),
                            sources=(1 + ((offset * 3) % 20),),
                            mem_address=0x2000_0000 + (offset * 64) % 65536
                            if opclass is InstructionClass.LOAD else None)


class FetchUnit:
    """Fetches from the trace through an I-cache and branch predictor."""

    def __init__(
        self,
        source: InstructionSource,
        output_channel: Channel,
        redirect_channel: Channel,
        branch_unit: BranchUnit,
        memory: MemoryHierarchy,
        clock_period: Callable[[], float],
        activity,
        fetch_width: int = 4,
        wrong_path_generator: Optional[Callable[[int, int], TraceInstruction]] = None,
    ) -> None:
        self.source = source
        #: direct view of a list-backed source (the common case): peeking and
        #: consuming happen once per fetched instruction, so the method-call
        #: round trips through InstructionSource are inlined when possible
        self._source_list = (source._instructions
                             if isinstance(source, ListTraceSource) else None)
        self.output_channel = output_channel
        self.redirect_channel = redirect_channel
        self.branch_unit = branch_unit
        self.memory = memory
        self.clock_period = clock_period
        self.activity = activity
        #: direct handle on the per-cycle counters (see DecodeRenameUnit)
        self._pending = activity._pending
        self.fetch_width = fetch_width
        self.wrong_path_generator = wrong_path_generator or _default_wrong_path

        self.epoch = 0
        self.wrong_path_mode = False
        self._wrong_path_pc = 0
        self._wrong_path_offset = 0
        self._busy_until = float("-inf")

        # statistics
        self.fetched_total = 0
        self.fetched_wrong_path = 0
        self.fetch_stall_cycles = 0
        self.icache_stall_cycles = 0
        self.redirects_received = 0

    # ---------------------------------------------------------------- helpers
    def _check_redirect(self, now: float) -> None:
        pop_ready = self.redirect_channel.pop_ready
        while True:
            message: RedirectMessage = pop_ready(now)
            if message is None:
                break
            self.redirects_received += 1
            if message.epoch > self.epoch:
                self.epoch = message.epoch
                self.wrong_path_mode = False
                # Abandon any wrong-path I-cache miss in flight: the front end
                # restarts on the correct path immediately.
                self._busy_until = now

    def _enter_wrong_path(self, after_pc: int) -> None:
        self.wrong_path_mode = True
        self._wrong_path_pc = after_pc + INSTRUCTION_SIZE
        self._wrong_path_offset = 0

    # --------------------------------------------------------------- clocking
    def clock_edge(self, cycle: int, time: float) -> None:
        """One fetch-domain cycle: honour redirects, fetch up to ``fetch_width`` instructions into the fetch queue."""
        if self.redirect_channel._entries:
            self._check_redirect(time)
        output_channel = self.output_channel
        output_channel.occupancy_samples += 1
        output_channel.occupancy_accum += len(output_channel._entries)
        if time < self._busy_until:
            self.icache_stall_cycles += 1
            return
        wrong_path = self.wrong_path_mode
        if wrong_path:
            first_pc = self._wrong_path_pc
        else:
            source_list = self._source_list
            if source_list is not None:
                position = self.source._position
                if position >= len(source_list):
                    return
                first_pc = source_list[position].pc
            else:
                peeked = self.source.peek()
                if peeked is None:
                    return
                first_pc = peeked.pc

        latency = self.memory.fetch_access(first_pc)
        self._pending["icache"] += 1
        if latency > self.memory.config.il1_latency:
            # Miss: the front end stalls until the line arrives.
            self._busy_until = time + latency * self.clock_period()
            self.icache_stall_cycles += 1
            return

        fetched_this_cycle = 0
        while fetched_this_cycle < self.fetch_width:
            if not output_channel.can_push(time):
                output_channel.record_full_stall()
                self.fetch_stall_cycles += 1
                break
            instr = self._fetch_one(time)
            if instr is None:
                break
            output_channel.push(instr, time)
            fetched_this_cycle += 1
            # A predicted-taken control instruction ends the fetch group.
            if instr.is_control and (instr.predicted_taken or instr.trace.opclass
                                     is InstructionClass.JUMP):
                break
            # A misprediction also ends useful fetching for this group; wrong
            # path continues next cycle.
            if instr.mispredicted:
                break

    def _next_pc_hint(self) -> Optional[int]:
        if self.wrong_path_mode:
            return self._wrong_path_pc
        peeked = self.source.peek()
        return peeked.pc if peeked is not None else None

    def _fetch_one(self, time: float) -> Optional[DynamicInstruction]:
        if self.wrong_path_mode:
            trace = self.wrong_path_generator(self._wrong_path_pc,
                                              self._wrong_path_offset)
            self._wrong_path_pc += INSTRUCTION_SIZE
            self._wrong_path_offset += 1
            instr = DynamicInstruction(trace, epoch=self.epoch, wrong_path=True)
            instr.fetch_time = time
            self.fetched_total += 1
            self.fetched_wrong_path += 1
            return instr

        source_list = self._source_list
        if source_list is not None:
            source = self.source
            position = source._position
            if position >= len(source_list):
                return None
            source._position = position + 1
            trace = source_list[position]
        else:
            trace = self.source.next()
            if trace is None:
                return None
        instr = DynamicInstruction(trace, epoch=self.epoch, wrong_path=False)
        instr.fetch_time = time
        self.fetched_total += 1

        if trace.is_branch:
            predicted_taken, _predicted_target = self.branch_unit.predict(trace.pc)
            self._pending["bpred"] += 1
            instr.predicted_taken = predicted_taken
            if predicted_taken != trace.taken:
                instr.mispredicted = True
                self._enter_wrong_path(trace.pc)
        elif instr.is_control:
            # Unconditional jumps are assumed correctly predicted (BTB hit).
            self._pending["bpred"] += 1
            instr.predicted_taken = True
        return instr

    # ------------------------------------------------------------------ state
    def pending_work(self) -> int:
        """Items still queued toward decode (used by the drain check)."""
        return self.output_channel.occupancy
