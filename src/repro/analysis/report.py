"""Textual reports and ASCII charts of experiment results.

The paper presents its results as bar charts (Figures 5-13); this module
renders the same series as text tables and simple horizontal ASCII bars so
the benchmark harness can print directly comparable output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.experiments import DvfsResult
from ..core.metrics import ComparisonRow
from ..power.accounting import EnergyBreakdown
from ..power.blocks import BREAKDOWN_CATEGORIES


def ascii_bar(value: float, scale: float = 50.0, maximum: float = 1.2) -> str:
    """A horizontal bar of '#' characters for a normalised value."""
    if maximum <= 0:
        raise ValueError("maximum must be positive")
    clamped = max(0.0, min(value, maximum))
    return "#" * int(round(clamped / maximum * scale))


def bar_chart(series: Mapping[str, float], title: str = "",
              maximum: Optional[float] = None, width: int = 40) -> str:
    """Render a named series as an ASCII bar chart."""
    if not series:
        return title
    peak = maximum if maximum is not None else max(series.values()) or 1.0
    label_width = max(len(name) for name in series)
    lines = [title] if title else []
    for name, value in series.items():
        bar = ascii_bar(value, scale=width, maximum=peak)
        lines.append(f"{name:<{label_width}}  {value:6.3f}  {bar}")
    return "\n".join(lines)


# ------------------------------------------------------------------ Figures 5-9
def performance_table(rows: Sequence[ComparisonRow]) -> str:
    """Figure 5: GALS performance relative to base, per benchmark."""
    lines = [f"{'benchmark':<10} {'relative performance':>21}"]
    for row in rows:
        lines.append(f"{row.benchmark:<10} {row.relative_performance:>21.3f}")
    mean = sum(r.relative_performance for r in rows) / len(rows)
    lines.append(f"{'average':<10} {mean:>21.3f}")
    return "\n".join(lines)


def slip_table(rows: Sequence[ComparisonRow]) -> str:
    """Figure 6: average slip (ns) in base and GALS."""
    lines = [f"{'benchmark':<10} {'base slip':>10} {'gals slip':>10} {'ratio':>7}"]
    for row in rows:
        lines.append(f"{row.benchmark:<10} {row.base_slip_ns:>10.2f} "
                     f"{row.gals_slip_ns:>10.2f} {row.slip_ratio:>7.2f}")
    return "\n".join(lines)


def slip_breakdown_table(rows: Sequence[ComparisonRow]) -> str:
    """Figure 7: share of the GALS slip spent in FIFOs vs in the pipeline."""
    lines = [f"{'benchmark':<10} {'FIFO share':>11} {'pipeline share':>15}"]
    for row in rows:
        fifo = row.gals_fifo_slip_fraction
        lines.append(f"{row.benchmark:<10} {fifo:>11.2%} {1 - fifo:>15.2%}")
    return "\n".join(lines)


def misspeculation_table(rows: Sequence[ComparisonRow]) -> str:
    """Figure 8: percentage of mis-speculated instructions, base vs GALS."""
    lines = [f"{'benchmark':<10} {'base':>8} {'gals':>8}"]
    for row in rows:
        lines.append(f"{row.benchmark:<10} {row.base_misspeculation:>8.1%} "
                     f"{row.gals_misspeculation:>8.1%}")
    return "\n".join(lines)


def energy_power_table(rows: Sequence[ComparisonRow]) -> str:
    """Figure 9: GALS energy and power normalised to base."""
    lines = [f"{'benchmark':<10} {'rel energy':>11} {'rel power':>10}"]
    for row in rows:
        lines.append(f"{row.benchmark:<10} {row.relative_energy:>11.3f} "
                     f"{row.relative_power:>10.3f}")
    mean_e = sum(r.relative_energy for r in rows) / len(rows)
    mean_p = sum(r.relative_power for r in rows) / len(rows)
    lines.append(f"{'average':<10} {mean_e:>11.3f} {mean_p:>10.3f}")
    return "\n".join(lines)


# -------------------------------------------------------------------- Figure 10
def breakdown_table(base: EnergyBreakdown, gals: EnergyBreakdown) -> str:
    """Figure 10: per-macro-block energy, both machines normalised to base."""
    lines = [f"{'category':<18} {'base':>8} {'gals':>8}"]
    total = base.total_energy_nj or 1.0
    for category in BREAKDOWN_CATEGORIES:
        base_share = base.by_category.get(category, 0.0) / total
        gals_share = gals.by_category.get(category, 0.0) / total
        lines.append(f"{category:<18} {base_share:>8.3f} {gals_share:>8.3f}")
    lines.append(f"{'total':<18} {1.0:>8.3f} "
                 f"{gals.total_energy_nj / total:>8.3f}")
    return "\n".join(lines)


# ------------------------------------------------------------------- scenarios
def scenario_table(results: Sequence) -> str:
    """Comparison table for a batch of ScenarioResult objects (CLI sweeps)."""
    header = (f"{'scenario':<20} {'topology':<11} {'workload':<18} "
              f"{'IPC':>6} {'elapsed ns':>11} {'energy nJ':>10} {'power W':>8}")
    lines = [header]
    for item in results:
        result = item.result
        lines.append(
            f"{item.scenario.name:<20} {item.scenario.topology:<11} "
            f"{item.scenario.workload:<18} {result.ipc:>6.2f} "
            f"{result.elapsed_ns:>11.1f} {result.total_energy_nj:>10.1f} "
            f"{result.average_power_w:>8.2f}")
    return "\n".join(lines)


# ----------------------------------------------------------------- Figures 11-13
def dvfs_table(results: Sequence[DvfsResult], include_ideal: bool = True) -> str:
    """Figures 11-13: normalised performance / energy / (ideal) / power."""
    header = f"{'config':<22} {'performance':>12} {'energy':>8}"
    if include_ideal:
        header += f" {'ideal':>7}"
    header += f" {'power':>7}"
    lines = [header]
    for result in results:
        line = (f"{result.benchmark + '/' + result.policy:<22} "
                f"{result.relative_performance:>12.3f} "
                f"{result.relative_energy:>8.3f}")
        if include_ideal:
            line += f" {result.ideal_energy:>7.3f}"
        line += f" {result.relative_power:>7.3f}"
        lines.append(line)
    return "\n".join(lines)
