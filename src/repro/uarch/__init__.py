"""Out-of-order superscalar microarchitecture components (paper Tables 2-3).

The components here are clock-domain agnostic: the same fetch, decode/rename,
issue/execute and commit units are assembled into either the synchronous base
processor (one clock domain, plain pipeline queues) or the 5-domain GALS
processor (mixed-clock FIFOs between domains) by :mod:`repro.core`.
"""

from .branch_predictor import (BimodalPredictor, BranchTargetBuffer, BranchUnit,
                               GSharePredictor, make_direction_predictor)
from .commit import CommitUnit
from .decode import DecodeRenameUnit, cluster_for
from .execute import ExecutionUnit, FunctionalUnitPool
from .fetch import FetchUnit, RedirectMessage
from .instruction import DynamicInstruction
from .issue_queue import IssueQueue
from .regfile import PhysicalRegisterFile
from .rename import RegisterAliasTable, RenameCheckpoint, RenameError
from .rob import ReorderBuffer, ReorderBufferFullError

__all__ = [
    "BimodalPredictor",
    "BranchTargetBuffer",
    "BranchUnit",
    "CommitUnit",
    "DecodeRenameUnit",
    "DynamicInstruction",
    "ExecutionUnit",
    "FetchUnit",
    "FunctionalUnitPool",
    "GSharePredictor",
    "IssueQueue",
    "PhysicalRegisterFile",
    "RedirectMessage",
    "RegisterAliasTable",
    "RenameCheckpoint",
    "RenameError",
    "ReorderBuffer",
    "ReorderBufferFullError",
    "cluster_for",
    "make_direction_predictor",
]
