"""Figure 9: energy and average power of GALS normalised to the base machine.

Paper result: eliminating the global clock lowers per-cycle power (about 10 %
on average), but the longer execution time and extra speculative activity mean
total energy is *not* lower -- it rises by about 1 % on average.  This is the
paper's headline negative result: a GALS conversion by itself is not a
low-power technique.
"""

from repro.analysis import energy_power_table
from repro.core.experiments import (average_energy_increase, average_power_saving,
                                    run_pair)

from conftest import TIMED_INSTRUCTIONS

import pytest

#: figure-reproduction benchmarks are tier-2: heavy, skipped by tier-1
pytestmark = pytest.mark.slow


def test_fig09_energy_and_power(benchmark, suite_rows):
    benchmark.pedantic(
        run_pair, args=("li",), kwargs={"num_instructions": TIMED_INSTRUCTIONS},
        rounds=1, iterations=1)

    print("\n=== Figure 9: GALS energy / power normalised to base ===")
    print(energy_power_table(suite_rows))

    power_saving = average_power_saving(suite_rows)
    energy_increase = average_energy_increase(suite_rows)
    print(f"\naverage power saving:   {power_saving:.1%} (paper: ~10%)")
    print(f"average energy change:  {energy_increase:+.1%} (paper: +1%)")

    # Power drops visibly...
    assert 0.04 < power_saving < 0.20
    # ...but energy does not: the suite average stays within a few percent of
    # the synchronous machine, and some benchmarks pay *more* energy.
    assert -0.05 < energy_increase < 0.08
    assert any(row.relative_energy > 1.0 for row in suite_rows)
