"""Cache-aware scenario execution: memoized runs and resumable sweeps.

:func:`resume_sweep` is the sweep engine behind ``repro sweep --cache`` and
``repro report compare``: scenarios already in the store load from disk, only
the missing ones fan out over the experiment process pool, and every freshly
computed result is stored immediately -- so an interrupted sweep resumes
where it stopped, and a repeated sweep is served entirely from cache.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..core.scenario import (Scenario, ScenarioResult, default_jobs,
                             resolve_scenarios, run_scenario, warm_worker,
                             workload_specs)
from .store import ResultsStore, resolve_store


@dataclass
class SweepRun:
    """One sweep slot: the result plus where it came from.

    ``seconds`` is the simulation wall time for computed slots and the time
    the original (stored) computation took for cached ones -- so a hit's
    entry shows what the cache saved, not the microseconds the load took.
    """

    outcome: ScenarioResult
    cached: bool
    key: str
    seconds: float

    @property
    def status(self) -> str:
        """'cached' when the result was served from the store, else 'computed'."""
        return "cached" if self.cached else "computed"


def timed_run_scenario(scenario: Scenario) -> Tuple[ScenarioResult, float]:
    """Top-level (picklable) run returning (outcome, wall seconds)."""
    start = time.perf_counter()
    outcome = run_scenario(scenario)
    return outcome, time.perf_counter() - start


def run_cached(scenario: Union[Scenario, str],
               store: Union[bool, str, ResultsStore, None] = True,
               **overrides) -> SweepRun:
    """Run one scenario through the store (compute-and-store on a miss)."""
    (scenario,) = resolve_scenarios([scenario], overrides)
    resolved_store = resolve_store(store)
    if resolved_store is not None:
        hit = resolved_store.get_with_seconds(scenario)
        if hit is not None:
            return SweepRun(outcome=hit[0], cached=True,
                            key=resolved_store.key_for(scenario),
                            seconds=hit[1])
    outcome, seconds = timed_run_scenario(scenario)
    key = ""
    if resolved_store is not None:
        key = resolved_store.put(outcome, wall_seconds=seconds)
    return SweepRun(outcome=outcome, cached=False, key=key, seconds=seconds)


def resume_sweep(scenarios: Sequence[Union[Scenario, str]],
                 store: Union[bool, str, ResultsStore, None] = True,
                 jobs: Optional[int] = None,
                 **overrides) -> List[SweepRun]:
    """Sweep many scenarios, loading hits from the store, computing misses.

    Results come back in submission order either way, and computed slots are
    bit-identical to a plain uncached :func:`sweep_scenarios` (both funnel
    through :func:`run_scenario`).  With ``store=None`` every slot is
    computed -- the per-scenario timing/status bookkeeping still applies,
    which is what the CLI prints for uncached sweeps.
    """
    resolved = resolve_scenarios(scenarios, overrides)
    resolved_store = resolve_store(store)

    slots: List[Optional[SweepRun]] = [None] * len(resolved)
    missing: List[Tuple[int, Scenario]] = []
    for index, scenario in enumerate(resolved):
        if resolved_store is not None:
            hit = resolved_store.get_with_seconds(scenario)
            if hit is not None:
                slots[index] = SweepRun(
                    outcome=hit[0], cached=True,
                    key=resolved_store.key_for(scenario),
                    seconds=hit[1])
                continue
        missing.append((index, scenario))

    if missing:
        _compute_and_store(missing, slots, resolved_store, jobs)

    return [slot for slot in slots if slot is not None]


def _compute_and_store(missing: Sequence[Tuple[int, Scenario]],
                       slots: List[Optional[SweepRun]],
                       store: Optional[ResultsStore],
                       jobs: Optional[int]) -> None:
    """Compute the missing slots, persisting each result *as it completes*.

    Storing per-completion (not after the whole pool drains) is what makes
    an interrupted sweep resumable: killing the process loses at most the
    runs still in flight, and the re-run picks up every finished one from
    the store.
    """
    def record(index: int, outcome: ScenarioResult, seconds: float) -> None:
        key = ""
        if store is not None:
            key = store.put(outcome, wall_seconds=seconds)
        slots[index] = SweepRun(outcome=outcome, cached=False, key=key,
                                seconds=seconds)

    workers = jobs if jobs is not None else default_jobs()
    workers = min(max(1, workers), len(missing))
    # Warm-start: build the missing scenarios' workloads once in the parent
    # (copy-on-write shared with fork-start workers, memo hits for the
    # serial fallback below) and re-run the same warm pass in each worker's
    # initializer for the spawn/forkserver start methods.
    specs = workload_specs([scenario for _, scenario in missing])
    warm_worker(specs)
    if workers > 1:
        try:
            with ProcessPoolExecutor(max_workers=workers,
                                     initializer=warm_worker,
                                     initargs=(specs,)) as executor:
                futures = {executor.submit(timed_run_scenario, scenario): index
                           for index, scenario in missing}
                for future in as_completed(futures):
                    outcome, seconds = future.result()
                    record(futures[future], outcome, seconds)
        except (OSError, PermissionError, BrokenProcessPool, KeyError):
            # Pool infrastructure failure (sandboxes without fork/sem
            # support), or a KeyError from a spawn/forkserver worker whose
            # re-imported registries lack a name registered at runtime: the
            # parent can still run these, so fall through to the serial
            # loop for whatever is not recorded yet (see sweep_scenarios).
            pass
    for index, scenario in missing:
        if slots[index] is None:
            record(index, *timed_run_scenario(scenario))


def hit_rate(runs: Sequence[SweepRun]) -> float:
    """Fraction of sweep slots served from the store."""
    if not runs:
        return 0.0
    return sum(run.cached for run in runs) / len(runs)
