"""Unit tests for the ISA layer: registers, instructions, assembler, executor."""

import pytest

from repro.isa import (AssemblerError, FunctionalExecutor, Instruction,
                       InstructionClass, Opcode, Program, assemble,
                       execute_program, fp_reg, int_reg, latency_of, parse_reg,
                       reg_name)
from repro.isa.program import INSTRUCTION_SIZE, TEXT_BASE
from repro.isa.registers import ZERO_REG, is_fp_reg, is_int_reg


# -------------------------------------------------------------------- registers
def test_register_namespace_roundtrip():
    assert int_reg(5) == 5
    assert fp_reg(3) == 35
    assert is_int_reg(int_reg(31))
    assert is_fp_reg(fp_reg(0))
    assert reg_name(int_reg(7)) == "r7"
    assert reg_name(fp_reg(2)) == "f2"
    assert reg_name(None) == "-"
    assert parse_reg("r12") == 12
    assert parse_reg("f4") == fp_reg(4)


def test_register_bounds_checked():
    with pytest.raises(ValueError):
        int_reg(32)
    with pytest.raises(ValueError):
        fp_reg(-1)
    with pytest.raises(ValueError):
        parse_reg("x3")


# ------------------------------------------------------------------ instructions
def test_opcode_classes_and_latencies():
    add = Instruction(Opcode.ADD, dest=1, sources=(2, 3))
    assert add.opclass is InstructionClass.INT_ALU
    assert latency_of(add.opclass) == 1
    fdiv = Instruction(Opcode.FDIV, dest=fp_reg(1), sources=(fp_reg(2), fp_reg(3)))
    assert fdiv.opclass is InstructionClass.FP_DIV
    assert latency_of(fdiv.opclass) == 12
    assert latency_of(InstructionClass.INT_ALU, {InstructionClass.INT_ALU: 3}) == 3
    load = Instruction(Opcode.LW, dest=1, sources=(2,), immediate=8)
    assert load.is_load and load.opclass.is_memory
    branch = Instruction(Opcode.BNE, sources=(1, 2), target_label="loop")
    assert branch.is_branch and branch.opclass.is_control
    assert "bne" in str(branch)


# --------------------------------------------------------------------- assembler
def test_assemble_simple_program():
    program = assemble("""
    main:
        li   r1, 10
        addi r1, r1, -2
        sw   r1, 0(r2)
        halt
    """)
    assert len(program) == 4
    assert program.labels["main"] == 0
    assert program.instructions[0].immediate == 10
    assert program.instructions[2].is_store
    assert program.pc_of_index(1) == TEXT_BASE + INSTRUCTION_SIZE
    assert "li" in program.listing()


def test_assemble_rejects_unknown_mnemonic_and_bad_operands():
    with pytest.raises(AssemblerError):
        assemble("frobnicate r1, r2\nhalt")
    with pytest.raises(AssemblerError):
        assemble("add r1, r2\nhalt")
    with pytest.raises(AssemblerError):
        assemble("lw r1, banana\nhalt")


def test_assemble_rejects_duplicate_label_and_missing_target():
    with pytest.raises(AssemblerError):
        assemble("x:\nx:\nhalt")
    with pytest.raises(ValueError):
        assemble("beq r1, r2, nowhere\nhalt")


def test_program_must_end_in_halt_or_jump():
    with pytest.raises(ValueError):
        assemble("add r1, r2, r3")


def test_program_pc_mapping_errors():
    program = assemble("main:\n  halt")
    with pytest.raises(ValueError):
        program.index_of_pc(TEXT_BASE + 1)
    with pytest.raises(ValueError):
        program.index_of_pc(TEXT_BASE + 100 * INSTRUCTION_SIZE)
    with pytest.raises(KeyError):
        program.pc_of_label("missing")


# ---------------------------------------------------------------------- executor
def test_executor_loop_and_memory():
    program = assemble("""
    main:
        li   r1, 0
        li   r2, 0
        li   r3, 5
        li   r4, 4096
    loop:
        lw   r5, 0(r4)
        add  r1, r1, r5
        addi r4, r4, 8
        addi r2, r2, 1
        blt  r2, r3, loop
        sw   r1, 0(r4)
        halt
    """)
    memory = {4096 + 8 * i: i + 1 for i in range(5)}
    executor = FunctionalExecutor(program)
    executor.preload_memory(memory)
    trace = executor.run()
    # sum 1..5 = 15 stored at 4096 + 5*8
    assert executor.state.read_mem(4096 + 40) == 15
    branches = [t for t in trace if t.is_branch]
    assert len(branches) == 5
    assert [b.taken for b in branches] == [True, True, True, True, False]
    loads = [t for t in trace if t.is_load]
    assert [l.mem_address for l in loads] == [4096 + 8 * i for i in range(5)]


def test_executor_fp_and_conversion():
    program = assemble("""
    main:
        li    r1, 3
        cvtif f1, r1
        fadd  f2, f1, f1
        fmul  f3, f2, f1
        cvtfi r2, f3
        sw    r2, 0(r3)
        halt
    """)
    trace = execute_program(program)
    assert len(trace) == 7
    fp_ops = [t for t in trace if t.opclass.is_fp]
    assert len(fp_ops) == 4  # cvtif, fadd, fmul, cvtfi


def test_executor_respects_instruction_limit():
    program = assemble("""
    main:
        j main
    """)
    from repro.isa.executor import ExecutionLimitExceeded
    with pytest.raises(ExecutionLimitExceeded):
        FunctionalExecutor(program, max_instructions=100).run()


def test_zero_register_is_immutable():
    program = assemble("""
    main:
        li r0, 99
        sw r0, 0(r1)
        halt
    """)
    executor = FunctionalExecutor(program)
    executor.run()
    assert executor.state.read_reg(ZERO_REG) == 0
    assert executor.state.read_mem(0) == 0


def test_trace_next_pc_for_taken_and_fallthrough():
    program = assemble("""
    main:
        beq r1, r1, target
        addi r2, r2, 1
    target:
        halt
    """)
    trace = execute_program(program)
    branch = trace.peek()
    assert branch.is_branch and branch.taken
    assert branch.next_pc() == program.pc_of_label("target")
