"""Stdlib client for the ``repro serve`` JSON API (used by ``repro query``).

The client speaks the three endpoints of
:class:`~repro.serve.service.ResultsService` over :mod:`urllib` -- no
third-party HTTP stack.  :func:`query_scenario` sends the *full canonical
scenario JSON* (not just a name), so the key the service computes is
identical to the key a local ``repro run --cache`` would use, and a hit's
body is byte-identical to ``repro run --json``.  With ``wait`` set it polls
*202 Accepted* replies until the queued computation lands (or the deadline
passes), mirroring a prun-style submit-and-poll loop.

Every request in this module is an idempotent GET, so :func:`request_json`
retries transparently: connection failures (``URLError``/``OSError``) and
*429*/*503* replies are retried with capped exponential backoff -- honouring
the server's ``Retry-After`` when it sends one -- before the final reply
(or error) is surfaced.  A saturated or briefly unreachable service
therefore looks like a slow request, not a crash, to ``repro query``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional
from urllib.error import HTTPError, URLError
from urllib.parse import urlencode
from urllib.request import urlopen

from ..core.scenario import Scenario

__all__ = ["QueryReply", "query_compare", "query_health", "query_scenario",
           "request_json", "scenario_query_url"]

#: HTTP statuses that mean "try again shortly" for an idempotent GET.
RETRYABLE_STATUSES = (429, 503)

#: Hard ceiling on one retry's backoff sleep (seconds).
MAX_BACKOFF = 2.0


@dataclass
class QueryReply:
    """One service response: HTTP code, raw body, parsed body, headers."""

    code: int
    body: str
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def payload(self) -> Any:
        """The body parsed as JSON (None when it is not JSON)."""
        try:
            return json.loads(self.body)
        except ValueError:
            return None

    @property
    def status(self) -> str:
        """Service-level status: the X-Repro-Status header when present,
        else the payload's ``status`` field, else ``hit``/``error`` by code.
        """
        if "X-Repro-Status" in self.headers:
            return self.headers["X-Repro-Status"]
        payload = self.payload
        if isinstance(payload, dict) and "status" in payload:
            return str(payload["status"])
        return "hit" if self.code == 200 else "error"

    @property
    def key(self) -> str:
        """The result's cache key (header first, payload fallback)."""
        if "X-Repro-Key" in self.headers:
            return self.headers["X-Repro-Key"]
        payload = self.payload
        if isinstance(payload, dict):
            return str(payload.get("key", ""))
        return ""


def _retry_sleep(reply: Optional[QueryReply], attempt: int,
                 backoff: float) -> float:
    """The capped backoff before retry ``attempt`` (honours Retry-After)."""
    delay = min(backoff * (2 ** attempt), MAX_BACKOFF)
    if reply is not None and "Retry-After" in reply.headers:
        try:
            delay = max(delay, float(reply.headers["Retry-After"]))
        except ValueError:
            pass
    return min(delay, MAX_BACKOFF)


def request_json(url: str, timeout: float = 30.0, retries: int = 3,
                 backoff: float = 0.1) -> QueryReply:
    """GET one URL, returning the reply whatever the HTTP status code is.

    GETs against the service are idempotent, so transient failures --
    a refused/reset connection (``URLError``, ``OSError``) or a
    *429*/*503* reply -- are retried up to ``retries`` times with capped
    exponential backoff, honouring a ``Retry-After`` header when the
    server sends one.  The last reply (or the last connection error) is
    surfaced once the budget is spent.
    """
    last_error: Optional[Exception] = None
    reply: Optional[QueryReply] = None
    for attempt in range(retries + 1):
        if attempt:
            time.sleep(_retry_sleep(reply, attempt - 1, backoff))
        try:
            with urlopen(url, timeout=timeout) as response:
                return QueryReply(code=response.status,
                                  body=response.read().decode("utf-8"),
                                  headers=dict(response.headers))
        except HTTPError as error:
            # 4xx/5xx carry a JSON error body too -- surface it, don't raise
            reply = QueryReply(code=error.code,
                               body=error.read().decode("utf-8"),
                               headers=dict(error.headers))
            last_error = None
            if error.code not in RETRYABLE_STATUSES:
                return reply
        except (URLError, OSError) as error:
            last_error = error
            reply = None
    if reply is not None:
        return reply
    raise last_error  # type: ignore[misc]  # loop always ran once


def scenario_query_url(base_url: str, scenario: Scenario) -> str:
    """The /scenario URL carrying one scenario's full canonical JSON."""
    query = urlencode({"scenario": scenario.to_json(indent=None)})
    return f"{base_url.rstrip('/')}/scenario?{query}"


def query_health(base_url: str, timeout: float = 30.0) -> QueryReply:
    """GET /health."""
    return request_json(f"{base_url.rstrip('/')}/health", timeout=timeout)


def query_scenario(base_url: str, scenario: Scenario,
                   wait: float = 0.0, poll: float = 0.2,
                   timeout: float = 30.0) -> QueryReply:
    """Query one scenario, optionally polling a 202 until it is served.

    Returns the final reply: 200 with the result JSON body on a hit (or
    once the queued computation lands within ``wait`` seconds), the last
    202 when the deadline passes first, or the 4xx/5xx error reply.
    """
    url = scenario_query_url(base_url, scenario)
    deadline = time.monotonic() + wait
    while True:
        reply = request_json(url, timeout=timeout)
        # 429 (saturated queue) is as transient as 202: keep polling
        if reply.code not in (202, 429) or time.monotonic() >= deadline:
            return reply
        time.sleep(poll)


def query_compare(base_url: str,
                  params: Optional[Dict[str, Any]] = None,
                  wait: float = 0.0, poll: float = 0.2,
                  timeout: float = 30.0) -> QueryReply:
    """GET /compare with the given query parameters (polling like above)."""
    suffix = f"?{urlencode(params)}" if params else ""
    url = f"{base_url.rstrip('/')}/compare{suffix}"
    deadline = time.monotonic() + wait
    while True:
        reply = request_json(url, timeout=timeout)
        if reply.code not in (202, 429) or time.monotonic() >= deadline:
            return reply
        time.sleep(poll)
