"""Tests for the Topology abstraction, its registry and the generic builder."""

from dataclasses import asdict

import pytest

from repro.core.domains import (BLOCK_LINKS, BLOCKS, DOMAIN_DECODE,
                                DOMAIN_FETCH, DOMAIN_FP, DOMAIN_INTEGER,
                                DOMAIN_MEMORY, GALS_DOMAINS, SYNC_DOMAIN,
                                Topology, available_topologies, base_block,
                                get_topology, make_cluster_topology,
                                register_topology, uniform_plan)
from repro.core.experiments import run_single
from repro.core.processor import Processor, build_processor
from repro.core.scenario import Scenario, run_scenario
from repro.sim.engine import SimulationEngine
from repro.workloads import make_workload

SMALL = 250


# ------------------------------------------------------------------ structure
def test_canonical_topologies_registered():
    names = available_topologies()
    assert "base" in names and "gals5" in names
    # at least three non-paper topologies, as the design-space opener promises
    extras = [n for n in names if n not in ("base", "gals5")]
    assert len(extras) >= 3


def test_aliases_resolve():
    assert get_topology("gals") is get_topology("gals5")
    assert get_topology("sync") is get_topology("base")


def test_base_topology_is_degenerate_single_domain():
    base = get_topology("base")
    assert base.is_synchronous
    assert base.domain_names == (SYNC_DOMAIN,)
    assert base.edges() == ()
    assert base.blocks_in(SYNC_DOMAIN) == BLOCKS


def test_gals5_topology_is_identity_partition():
    gals = get_topology("gals5")
    assert gals.domain_names == GALS_DOMAINS
    assert not gals.is_synchronous
    # every structural link crosses a domain boundary in the 5-domain machine
    assert len(gals.edges()) == len(BLOCK_LINKS)
    for block in BLOCKS:
        assert gals.domain_of(block) == block


def test_partition_edges_follow_assignment():
    topo = get_topology("frontback2")
    edge_names = {name for name, _, _ in topo.edges()}
    # fetch->decode stays inside the front domain; dispatch and redirect cross
    assert "fetch->decode" not in edge_names
    assert {"dispatch->int", "dispatch->fp", "dispatch->mem",
            "redirect"} == edge_names


def test_topology_validation():
    with pytest.raises(ValueError):
        Topology("bad", "missing blocks", {DOMAIN_FETCH: "a"})
    with pytest.raises(ValueError):
        Topology("bad", "unknown block",
                 {**{b: "a" for b in BLOCKS}, "rogue": "a"})
    with pytest.raises(ValueError):
        Topology("bad", "empty domain name", {b: "" for b in BLOCKS})


def test_register_rejects_duplicates():
    with pytest.raises(ValueError):
        register_topology(Topology("gals5", "dup",
                                   {b: b for b in BLOCKS}))
    with pytest.raises(KeyError):
        get_topology("never-registered")


def test_register_with_conflicting_alias_leaves_registry_untouched():
    """A rejected registration must not leave a half-registered topology."""
    fresh = Topology("atomic-check", "alias conflict fixture",
                     {b: "one" for b in BLOCKS})
    with pytest.raises(ValueError):
        register_topology(fresh, aliases=("gals",))   # 'gals' is taken
    with pytest.raises(KeyError):
        get_topology("atomic-check")
    # and the corrected retry succeeds
    register_topology(fresh, aliases=("atomic-check-alias",))
    assert get_topology("atomic-check-alias") is fresh


# ------------------------------------------------------------------ execution
@pytest.mark.parametrize("name", ["frontback2", "fem3", "alu4", "memsplit2"])
def test_new_topologies_run_to_completion(name):
    result = run_single("perl", name, num_instructions=SMALL, seed=1)
    topo = get_topology(name)
    assert result.committed_instructions == SMALL
    assert result.processor == topo.kind
    assert set(result.domain_cycles) == set(topo.domain_names)
    assert result.ipc > 0
    assert result.total_energy_nj > 0


def test_coarser_partitions_lose_less_performance_than_gals5():
    """Fewer domain crossings on the critical path -> smaller slowdown."""
    base = run_single("perl", "base", num_instructions=SMALL, seed=1)
    gals5 = run_single("perl", "gals5", num_instructions=SMALL, seed=1)
    front = run_single("perl", "frontback2", num_instructions=SMALL, seed=1)
    assert base.elapsed_ns <= front.elapsed_ns <= gals5.elapsed_ns


def test_adhoc_single_domain_topology_matches_base_bit_for_bit():
    """Any all-in-one assignment degenerates to the synchronous machine."""
    adhoc = Topology("adhoc-sync", "unregistered single-domain topology",
                     {block: SYNC_DOMAIN for block in BLOCKS},
                     random_phases=False, kind="base")
    workload = make_workload("perl", seed=1)
    machine = build_processor(workload.trace(SMALL), topology=adhoc,
                              workload=workload)
    result = machine.run()
    reference = run_single("perl", "base", num_instructions=SMALL, seed=1)
    assert result.elapsed_ns == reference.elapsed_ns
    assert result.ipc == reference.ipc
    assert result.total_energy_nj == reference.total_energy_nj


def test_unknown_processor_kind_still_raises_value_error():
    with pytest.raises(ValueError):
        run_single("perl", "warp-drive", num_instructions=10)


def test_synchronous_topology_has_no_fifo_machinery():
    workload = make_workload("perl", seed=1)
    machine = build_processor(workload.trace(10), topology="base",
                              workload=workload)
    assert not any(ch.counts_as_fifo for ch in machine.all_channels)
    assert machine.kind == "base"
    assert not machine.gals


def test_multi_domain_topology_builds_fifos_on_edges_only():
    workload = make_workload("perl", seed=1)
    machine = build_processor(workload.trace(10), topology="fem3",
                              workload=workload)
    topo = get_topology("fem3")
    edge_names = {name for name, _, _ in topo.edges()}
    for link_name, channel in machine.channels.items():
        assert channel.counts_as_fifo == (link_name in edge_names)


def _fifo_power_ports(machine):
    for blocks in machine.power._blocks_by_domain.values():
        for model in blocks:
            if model.name == "fifo":
                return model.ports
    return None


def test_fifo_power_model_scales_with_crossing_count():
    """A topology with fewer mixed-clock FIFOs pays for fewer FIFO ports."""
    workload = make_workload("perl", seed=1)
    ports = {}
    for name in ("gals5", "memsplit2", "frontback2"):
        machine = build_processor(workload.trace(10), topology=name,
                                  workload=workload)
        ports[name] = _fifo_power_ports(machine)
    # gals5 keeps the stock full-complex model (all 5 links are FIFOs)
    full = ports["gals5"]
    assert full is not None
    assert ports["memsplit2"] == max(1, round(full * 1 / len(BLOCK_LINKS)))
    assert ports["frontback2"] == max(1, round(full * 4 / len(BLOCK_LINKS)))


# ------------------------------------------------- replicated-cluster family
def test_base_block_strips_replica_suffixes():
    assert base_block("integer2") == DOMAIN_INTEGER
    assert base_block("fp12") == DOMAIN_FP
    for block in BLOCKS:
        assert base_block(block) == block
    # only canonical stems resolve; anything else passes through unchanged
    assert base_block("rogue7") == "rogue7"


def test_cluster_topology_structure_scales_with_replicas():
    """Domains, blocks and synchronizer crossings grow as N predicts."""
    for n in (1, 2, 3, 4, 8):
        topo = get_topology(f"cluster{n}")
        assert topo.num_domains == 3 + 2 * n
        assert len(topo.blocks) == 3 + 2 * n
        # every block keeps its own clock -> every link is a crossing
        assert len(topo.edges()) == len(BLOCK_LINKS) + 2 * (n - 1)
        assert len(topo.links) == len(BLOCK_LINKS) + 2 * (n - 1)
    with pytest.raises(ValueError):
        make_cluster_topology(0)
    with pytest.raises(KeyError):
        get_topology("cluster999")   # beyond the on-demand synthesis bound


def test_cluster1_matches_gals5_bit_for_bit():
    """The 1-pair member of the parametric family IS the paper's machine."""
    reference = run_single("perl", "gals5", num_instructions=SMALL, seed=1)
    cluster1 = run_single("perl", "cluster1", num_instructions=SMALL, seed=1)
    ref = asdict(reference)
    got = asdict(cluster1)
    # only the processor label (the topology's kind) may differ
    assert ref.pop("processor") == "gals"
    assert got.pop("processor") == "cluster1"
    assert got == ref


#: Bit-exact goldens for the replicated-cluster machines, captured when the
#: cluster family landed.  If a future change intentionally alters the model,
#: update these constants in the same commit and say so.
CLUSTER_GOLDEN = {
    ("cluster2", "perl", 300): {
        "committed_instructions": 300,
        "elapsed_ns": 146.7579544029403,
        "ipc": 2.044182212953968,
        "mean_slip_ns": 26.206865884748627,
        "total_energy_nj": 2734.6213859555164,
        "recoveries": 0,
        "domain_cycles": {"fetch": 146, "decode": 147, "integer": 147,
                          "fp": 147, "memory": 147, "integer2": 147,
                          "fp2": 146},
    },
    ("cluster4", "perl", 300): {
        "committed_instructions": 300,
        "elapsed_ns": 146.7579544029403,
        "ipc": 2.044182212953968,
        "mean_slip_ns": 26.843532551415294,
        "total_energy_nj": 3388.528607560866,
        "recoveries": 0,
        "domain_cycles": {"fetch": 146, "decode": 147, "integer": 147,
                          "fp": 147, "memory": 147, "integer2": 147,
                          "fp2": 146, "integer3": 147, "fp3": 147,
                          "integer4": 147, "fp4": 146},
    },
}


def test_cluster_goldens_bit_identical():
    for (kind, benchmark, instructions), expected in CLUSTER_GOLDEN.items():
        result = run_single(benchmark, kind, num_instructions=instructions,
                            seed=1)
        assert result.committed_instructions == expected["committed_instructions"]
        # exact float equality on purpose: the contract is bit-identity
        assert result.elapsed_ns == expected["elapsed_ns"]
        assert result.ipc == expected["ipc"]
        assert result.mean_slip_ns == expected["mean_slip_ns"]
        assert result.total_energy_nj == expected["total_energy_nj"]
        assert result.recoveries == expected["recoveries"]
        assert result.domain_cycles == expected["domain_cycles"]


def test_cluster_machine_replicates_execution_resources():
    """The builder materialises per-replica queues, channels and power models."""
    workload = make_workload("perl", seed=1)
    machine = build_processor(workload.trace(10), topology="cluster2",
                              workload=workload)
    assert set(machine.exec_units) == {"int", "fp", "mem", "int2", "fp2"}
    assert set(machine.dispatch_channels) == {"int", "fp", "mem", "int2", "fp2"}
    # 7 links, every one a crossing on the identity-assignment cluster machine
    assert len(machine.all_channels) == 7
    assert all(ch.counts_as_fifo for ch in machine.all_channels)
    # the FIFO power complex scales UP beyond the paper's five crossings
    full_machine = build_processor(workload.trace(10), topology="gals5",
                                   workload=make_workload("perl", seed=1))
    full = _fifo_power_ports(full_machine)
    assert _fifo_power_ports(machine) == max(1, round(full * 7 / 5))
    # replicas carry their own (renamed) energy models in their own domains
    registered = {model.name
                  for blocks in machine.power._blocks_by_domain.values()
                  for model in blocks}
    assert {"iq_int2", "alu_int2", "iq_fp2", "alu_fp2",
            "clock_integer2", "clock_fp2"} <= registered
    # only the primary integer cluster resolves branches
    assert machine.exec_units["int"].branch_unit is not None
    assert machine.exec_units["int2"].branch_unit is None


def test_replicas_actually_receive_work():
    result = run_single("perl", "cluster2", num_instructions=SMALL, seed=1)
    assert result.mean_iq_occupancy["int2"] > 0


def test_cluster_scenario_equivalent_on_wheel_and_heap_schedulers():
    scenario = Scenario(name="eq", topology="cluster2", workload="perl",
                        num_instructions=SMALL)

    def run(use_wheel):
        topology = scenario.build_topology()
        config = scenario.build_config()
        plan = scenario.build_plan(topology, config.technology)
        trace, workload = scenario.build_trace()
        machine = Processor(trace, config=config, plan=plan,
                            workload=workload, topology=topology,
                            engine=SimulationEngine(use_wheel=use_wheel))
        return machine.run()

    assert asdict(run(True)) == asdict(run(False))


def test_cluster_scenario_event_wakeup_bit_identical_to_scan():
    event = run_scenario(Scenario(name="w", topology="cluster2",
                                  workload="perl", num_instructions=SMALL,
                                  config={"wakeup_scheme": "event"}))
    scan = run_scenario(Scenario(name="w", topology="cluster2",
                                 workload="perl", num_instructions=SMALL,
                                 config={"wakeup_scheme": "scan"}))
    assert asdict(event.result) == asdict(scan.result)
