"""Clock-domain partitioning of the GALS processor (paper Section 4.1).

The GALS machine has five clock domains, chosen to mirror the 21264's
major-clock partitioning (Figure 3b):

1. ``fetch``   -- L1 instruction cache and branch prediction unit,
2. ``decode``  -- decode, register rename, register files, dispatch and commit,
3. ``integer`` -- integer issue queue and integer ALUs,
4. ``fp``      -- floating-point issue queue and FP ALUs,
5. ``memory``  -- memory issue queue, data cache and L2.

:class:`ClockPlan` captures how those domains are clocked in one experiment:
a common base period, a per-domain slowdown, a per-domain phase (random in the
GALS experiments) and optionally a per-domain supply voltage derived from the
slowdown (the multiple-voltage experiments of Section 5.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..power.technology import DEFAULT_TECHNOLOGY, TechnologyParameters
from ..power.voltage import voltage_for_slowdown
from ..sim.clock import Clock, ClockDomain

#: Canonical domain names, in pipeline order.
DOMAIN_FETCH = "fetch"
DOMAIN_DECODE = "decode"
DOMAIN_INTEGER = "integer"
DOMAIN_FP = "fp"
DOMAIN_MEMORY = "memory"
GALS_DOMAINS: Tuple[str, ...] = (DOMAIN_FETCH, DOMAIN_DECODE, DOMAIN_INTEGER,
                                 DOMAIN_FP, DOMAIN_MEMORY)

#: Single-domain name used by the synchronous baseline.
SYNC_DOMAIN = "core"

#: Table 2: pipeline stage -> clock domains involved.
PIPELINE_STAGES: Tuple[Tuple[int, str, Tuple[str, ...]], ...] = (
    (1, "Fetch from I-cache", (DOMAIN_FETCH,)),
    (2, "Decode", (DOMAIN_DECODE,)),
    (3, "Register rename, Regfile read", (DOMAIN_DECODE,)),
    (4, "Dispatch into issue queue",
     (DOMAIN_DECODE, DOMAIN_INTEGER, DOMAIN_FP, DOMAIN_MEMORY)),
    (5, "Issue to functional unit", (DOMAIN_INTEGER, DOMAIN_FP, DOMAIN_MEMORY)),
    (6, "Execute", (DOMAIN_INTEGER, DOMAIN_FP, DOMAIN_MEMORY)),
    (7, "Wakeup, Writeback", (DOMAIN_INTEGER, DOMAIN_FP, DOMAIN_MEMORY)),
    (8, "Regfile write, Commit",
     (DOMAIN_INTEGER, DOMAIN_FP, DOMAIN_MEMORY, DOMAIN_DECODE)),
)


def pipeline_stage_table() -> str:
    """Render Table 2 (pipeline stages and the domains involved)."""
    lines = [f"{'Stage':<6} {'Operation':<34} Domains"]
    for number, operation, domains in PIPELINE_STAGES:
        lines.append(f"{number:<6} {operation:<34} {', '.join(domains)}")
    return "\n".join(lines)


@dataclass
class ClockPlan:
    """Clocking (and optional voltage) assignment for one simulation run."""

    #: period of the nominal clock, in ns (1 GHz by default)
    base_period: float = 1.0
    #: per-domain slowdown factor (1.0 = nominal; 1.1 = 10 % slower clock)
    slowdowns: Dict[str, float] = field(default_factory=dict)
    #: per-domain starting phase in ns; missing domains get a random phase
    #: drawn from ``phase_seed`` (the paper randomises phases at run time)
    phases: Dict[str, float] = field(default_factory=dict)
    #: explicit per-domain supply voltages; overrides ``scale_voltages``
    voltages: Dict[str, float] = field(default_factory=dict)
    #: derive each slowed domain's voltage from Equation 1 when True
    scale_voltages: bool = False
    phase_seed: int = 0
    technology: TechnologyParameters = DEFAULT_TECHNOLOGY

    def slowdown_of(self, domain: str) -> float:
        slowdown = self.slowdowns.get(domain, 1.0)
        if slowdown <= 0:
            raise ValueError(f"slowdown for domain {domain!r} must be positive")
        return slowdown

    def period_of(self, domain: str) -> float:
        return self.base_period * self.slowdown_of(domain)

    def voltage_of(self, domain: str) -> float:
        if domain in self.voltages:
            return self.voltages[domain]
        if self.scale_voltages:
            return voltage_for_slowdown(self.slowdown_of(domain), self.technology)
        return self.technology.nominal_vdd

    def phase_of(self, domain: str, rng: random.Random) -> float:
        if domain in self.phases:
            return self.phases[domain] % self.period_of(domain)
        return rng.uniform(0.0, self.period_of(domain))

    # ------------------------------------------------------------- factories
    def build_gals_domains(self) -> Dict[str, ClockDomain]:
        """Create the five independent clock domains of the GALS machine."""
        rng = random.Random(self.phase_seed)
        domains: Dict[str, ClockDomain] = {}
        for name in GALS_DOMAINS:
            clock = Clock(name=name, period=self.period_of(name),
                          phase=self.phase_of(name, rng))
            domains[name] = ClockDomain(
                clock,
                voltage=self.voltage_of(name),
                nominal_voltage=self.technology.nominal_vdd,
            )
        return domains

    def build_sync_domain(self) -> ClockDomain:
        """Create the single global clock domain of the base machine.

        A global slowdown may be requested via ``slowdowns['core']`` (used for
        the "ideal" voltage-scaled synchronous reference of Figures 12-13).
        """
        slowdown = self.slowdowns.get(SYNC_DOMAIN, 1.0)
        clock = Clock(name=SYNC_DOMAIN, period=self.base_period * slowdown,
                      phase=self.phases.get(SYNC_DOMAIN, 0.0))
        voltage = self.voltages.get(SYNC_DOMAIN)
        if voltage is None:
            voltage = (voltage_for_slowdown(slowdown, self.technology)
                       if self.scale_voltages else self.technology.nominal_vdd)
        return ClockDomain(clock, voltage=voltage,
                           nominal_voltage=self.technology.nominal_vdd)


def uniform_plan(base_period: float = 1.0, phase_seed: int = 0) -> ClockPlan:
    """All domains at the nominal frequency (experiment set 1, Section 5.1)."""
    return ClockPlan(base_period=base_period, phase_seed=phase_seed)


def slowdown_plan(slowdowns: Mapping[str, float],
                  base_period: float = 1.0,
                  scale_voltages: bool = True,
                  phase_seed: int = 0,
                  technology: TechnologyParameters = DEFAULT_TECHNOLOGY) -> ClockPlan:
    """Per-domain slowdowns with (by default) Equation-1 voltage scaling."""
    unknown = set(slowdowns) - set(GALS_DOMAINS) - {SYNC_DOMAIN}
    if unknown:
        raise ValueError(f"unknown clock domains in slowdown plan: {sorted(unknown)}")
    return ClockPlan(base_period=base_period, slowdowns=dict(slowdowns),
                     scale_voltages=scale_voltages, phase_seed=phase_seed,
                     technology=technology)
