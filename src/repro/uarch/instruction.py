"""In-flight (dynamic) instruction state.

A :class:`DynamicInstruction` wraps one fetched instruction -- correct-path
(from the workload trace) or wrong-path (synthesised after a misprediction) --
and carries all the per-instruction state the pipeline needs: renamed
registers, the ROB slot, timestamps of every pipeline event, and the
accumulated time spent inside inter-domain FIFOs (the quantity Figure 7
reports).
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

from ..isa.instructions import InstructionClass
from ..isa.trace import TraceInstruction

_SEQ = itertools.count()


class DynamicInstruction:
    """One instruction in flight through the pipeline."""

    __slots__ = (
        "trace", "seq", "epoch", "wrong_path",
        "phys_dest", "phys_sources", "prev_phys_dest", "rename_checkpoint",
        "rob_index", "exec_domain",
        "predicted_taken", "mispredicted",
        "fetch_time", "decode_time", "rename_time", "dispatch_time",
        "issue_time", "complete_time", "commit_time",
        "fifo_time", "extra_latency",
        "squashed", "completed", "issued",
    )

    def __init__(self, trace: TraceInstruction, epoch: int,
                 wrong_path: bool = False,
                 seq: Optional[int] = None) -> None:
        self.trace = trace
        self.seq = seq if seq is not None else next(_SEQ)
        self.epoch = epoch
        self.wrong_path = wrong_path

        self.phys_dest: Optional[int] = None
        self.phys_sources: Tuple[int, ...] = ()
        self.prev_phys_dest: Optional[int] = None
        self.rename_checkpoint = None
        self.rob_index: Optional[int] = None
        self.exec_domain: str = ""

        self.predicted_taken: Optional[bool] = None
        self.mispredicted: bool = False

        self.fetch_time: float = -1.0
        self.decode_time: float = -1.0
        self.rename_time: float = -1.0
        self.dispatch_time: float = -1.0
        self.issue_time: float = -1.0
        self.complete_time: float = -1.0
        self.commit_time: float = -1.0

        #: accumulated residency (ns) in mixed-clock FIFOs
        self.fifo_time: float = 0.0
        #: extra execution latency in cycles (cache misses)
        self.extra_latency: int = 0

        self.squashed: bool = False
        self.completed: bool = False
        self.issued: bool = False

    # --------------------------------------------------------------- queries
    @property
    def opclass(self) -> InstructionClass:
        return self.trace.opclass

    @property
    def pc(self) -> int:
        return self.trace.pc

    @property
    def dest(self) -> Optional[int]:
        return self.trace.dest

    @property
    def sources(self) -> Tuple[int, ...]:
        return self.trace.sources

    @property
    def is_branch(self) -> bool:
        return self.trace.is_branch

    @property
    def is_control(self) -> bool:
        return self.trace.is_control

    @property
    def is_load(self) -> bool:
        return self.trace.is_load

    @property
    def is_store(self) -> bool:
        return self.trace.is_store

    @property
    def is_fp(self) -> bool:
        return self.opclass.is_fp

    @property
    def is_mem(self) -> bool:
        return self.opclass.is_memory

    @property
    def slip(self) -> float:
        """Fetch-to-commit latency in ns (the paper's 'slip', Figure 6)."""
        if self.commit_time < 0 or self.fetch_time < 0:
            return 0.0
        return self.commit_time - self.fetch_time

    def record_fifo_wait(self, wait: float) -> None:
        """Accumulate time spent in a mixed-clock FIFO."""
        if wait > 0:
            self.fifo_time += wait

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.wrong_path:
            flags.append("wrong-path")
        if self.squashed:
            flags.append("squashed")
        if self.completed:
            flags.append("done")
        flag_text = f" [{', '.join(flags)}]" if flags else ""
        return (f"DynInstr(seq={self.seq}, pc={self.pc:#x}, "
                f"{self.opclass.value}{flag_text})")
