"""Tests for the persistent results store (:mod:`repro.results`).

Covers the cache-key semantics the store's correctness rests on (hits only
for identical simulation inputs under an identical simulator), bit-identity
of cached vs freshly computed results, resumable sweeps, and store
maintenance (ls/gc/clear).
"""

import json
import time
from dataclasses import replace

import pytest

from repro.core.scenario import get_scenario, run_scenario, sweep_scenarios
from repro.results import (ResultsStore, cache_key, canonical_scenario_dict,
                           code_fingerprint, resolve_store, resume_sweep,
                           run_cached, source_tree_digest)
from repro.results.store import CACHE_DIR_ENV_VAR, default_cache_dir

SMALL = 200

#: Six registered scenarios for the resumable-sweep acceptance test.
SWEEP_SCENARIOS = ["base", "gals5", "frontback2", "fem3", "alu4", "memsplit2"]


@pytest.fixture
def store(tmp_path):
    return ResultsStore(root=tmp_path / "cache")


@pytest.fixture
def scenario():
    return replace(get_scenario("gals5"), num_instructions=SMALL)


# ------------------------------------------------------------------ fingerprint
def test_code_fingerprint_is_versioned_and_stable():
    from repro import __version__
    fingerprint = code_fingerprint()
    assert fingerprint.startswith(f"{__version__}:")
    assert fingerprint == code_fingerprint()


def test_source_tree_digest_tracks_simulation_sources(tmp_path):
    (tmp_path / "core").mkdir()
    (tmp_path / "core" / "a.py").write_text("x = 1\n")
    before = source_tree_digest(tmp_path)
    assert before == source_tree_digest(tmp_path)
    (tmp_path / "core" / "a.py").write_text("x = 2\n")
    assert source_tree_digest(tmp_path) != before
    # files outside the simulation packages do not participate
    (tmp_path / "analysis").mkdir()
    (tmp_path / "analysis" / "b.py").write_text("y = 1\n")
    (tmp_path / "core" / "a.py").write_text("x = 1\n")
    assert source_tree_digest(tmp_path) == before


# ------------------------------------------------------------- key semantics
def test_key_hits_on_identical_scenario(scenario):
    assert cache_key(scenario) == cache_key(replace(scenario))


def test_key_ignores_pure_metadata(scenario):
    renamed = replace(scenario, name="other-name", description="different")
    assert cache_key(renamed) == cache_key(scenario)
    assert "name" not in canonical_scenario_dict(scenario)
    assert "description" not in canonical_scenario_dict(scenario)


@pytest.mark.parametrize("change", [
    {"config": {"rob_entries": 48}},
    {"seed": 2},
    {"phase_seed": 7},
    {"topology": "base"},
    {"workload": "gcc"},
    {"policy": "generic"},
    {"num_instructions": SMALL + 1},
    {"slowdowns": {"fp": 2.0}},
    {"base_period": 2.0},
    {"scale_voltages": False},
])
def test_key_misses_on_simulation_relevant_change(scenario, change):
    assert cache_key(replace(scenario, **change)) != cache_key(scenario)


def test_key_misses_on_code_fingerprint_change(scenario):
    assert (cache_key(scenario, "2.0.0:aaaaaaaaaaaaaaaa")
            != cache_key(scenario, "2.0.0:bbbbbbbbbbbbbbbb"))


def test_store_misses_across_fingerprints(tmp_path, scenario):
    old = ResultsStore(root=tmp_path, fingerprint="old:0000000000000000")
    new = ResultsStore(root=tmp_path, fingerprint="new:1111111111111111")
    old.put(run_scenario(scenario))
    assert old.get(scenario) is not None
    assert new.get(scenario) is None  # same store root, new simulator
    assert new.misses == 1


# ------------------------------------------------------------- bit-identity
def test_cached_result_is_bit_identical_to_fresh(store, scenario):
    fresh = run_scenario(scenario, store=store)     # miss: compute + put
    cached = run_scenario(scenario, store=store)    # hit: load from disk
    direct = run_scenario(scenario)                 # no cache involved
    assert store.hits == 1 and store.misses == 1
    assert cached.result == fresh.result == direct.result
    assert cached.to_json() == direct.to_json()
    assert cached.scenario == scenario


def test_cached_result_survives_json_reload_exactly(store):
    # a policy run exercises voltage/energy floats and per-domain dicts
    scenario = replace(get_scenario("gals5-perl-fp3"), num_instructions=SMALL)
    fresh = run_cached(scenario, store=store)
    assert not fresh.cached
    warm = run_cached(scenario, store=store)
    assert warm.cached
    assert warm.outcome.result == fresh.outcome.result
    assert (warm.outcome.result.energy.by_block
            == fresh.outcome.result.energy.by_block)


# ---------------------------------------------------------- resumable sweeps
def test_interrupted_sweep_resumes_only_missing(store):
    names = SWEEP_SCENARIOS[:4]
    # "interrupted" sweep: only the first two scenarios completed
    resume_sweep(names[:2], store=store, jobs=1, num_instructions=SMALL)
    store.hits = store.misses = 0
    runs = resume_sweep(names, store=store, jobs=1, num_instructions=SMALL)
    assert [run.outcome.scenario.name for run in runs] == names
    assert [run.cached for run in runs] == [True, True, False, False]
    assert store.hits == 2 and store.misses == 2


def test_repeated_sweep_is_fully_cached_and_faster(store):
    """Acceptance: a warm 6-scenario sweep is all hits, >=5x faster, and
    bit-identical to the uncached pool path."""
    start = time.perf_counter()
    cold = sweep_scenarios(SWEEP_SCENARIOS, jobs=1, store=store,
                           num_instructions=SMALL)
    cold_seconds = time.perf_counter() - start

    store.hits = store.misses = 0
    start = time.perf_counter()
    warm = sweep_scenarios(SWEEP_SCENARIOS, jobs=1, store=store,
                           num_instructions=SMALL)
    warm_seconds = time.perf_counter() - start

    assert store.hits == len(SWEEP_SCENARIOS) and store.misses == 0
    uncached = sweep_scenarios(SWEEP_SCENARIOS, jobs=1,
                               num_instructions=SMALL)
    assert ([item.result for item in warm]
            == [item.result for item in cold]
            == [item.result for item in uncached])
    assert warm_seconds < cold_seconds / 5, (
        f"warm sweep took {warm_seconds:.3f}s vs cold {cold_seconds:.3f}s")


def test_sweep_statuses_and_hit_rate(store):
    from repro.results import hit_rate
    resume_sweep(["base"], store=store, jobs=1, num_instructions=SMALL)
    runs = resume_sweep(["base", "gals5"], store=store, jobs=1,
                        num_instructions=SMALL)
    assert [run.status for run in runs] == ["cached", "computed"]
    assert hit_rate(runs) == 0.5
    assert all(run.key for run in runs)


# ------------------------------------------------------------- maintenance
def test_entries_gc_clear(tmp_path, scenario):
    store = ResultsStore(root=tmp_path)
    stale = ResultsStore(root=tmp_path, fingerprint="stale:123456789abcdef0")
    store.put(run_scenario(scenario))
    stale.put(run_scenario(replace(scenario, seed=3)))

    entries = store.entries()
    assert len(entries) == 2
    assert {entry.stale for entry in entries} == {True, False}
    assert {entry.scenario_name for entry in entries} == {"gals5"}

    stats = store.gc()
    assert stats.removed == 1 and stats.kept == 1 and stats.bytes_freed > 0
    assert store.get(scenario) is not None

    assert store.clear() == 1
    assert store.entries() == []


def test_corrupt_entry_is_a_miss_and_recomputed(store, scenario):
    run_scenario(scenario, store=store)
    path = store.entry_path(store.key_for(scenario))
    path.write_text("{not json")
    outcome = run_scenario(scenario, store=store)   # recomputes, rewrites
    assert outcome.result == run_scenario(scenario).result
    assert json.loads(path.read_text())["key"] == store.key_for(scenario)


def test_default_cache_dir_honours_environment(monkeypatch, tmp_path):
    monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "elsewhere"))
    assert default_cache_dir() == tmp_path / "elsewhere"
    assert ResultsStore().root == tmp_path / "elsewhere"
    monkeypatch.delenv(CACHE_DIR_ENV_VAR)
    assert default_cache_dir().name == "repro"


def test_resolve_store_forms(tmp_path):
    assert resolve_store(None) is None
    assert resolve_store(False) is None
    store = ResultsStore(root=tmp_path)
    assert resolve_store(store) is store
    assert resolve_store(tmp_path).root == tmp_path
    assert resolve_store(str(tmp_path)).root == tmp_path


def test_atomic_put_leaves_no_temp_files(store, scenario):
    store.put(run_scenario(scenario))
    leftovers = [p for p in store.results_dir.rglob("*")
                 if p.is_file() and p.suffix != ".json"]
    assert leftovers == []


# --------------------------------------------- registry-definition sensitivity
def test_key_tracks_reregistered_topology_definition(monkeypatch):
    from repro.core.domains import BLOCKS, TOPOLOGIES, Topology
    one_domain = Topology(name="custom", description="v1",
                          assignment={block: "main" for block in BLOCKS})
    monkeypatch.setitem(TOPOLOGIES, "custom", one_domain)
    scenario = replace(get_scenario("base"), topology="custom",
                       num_instructions=SMALL)
    key_v1 = cache_key(scenario)
    changed = Topology(name="custom", description="v2",
                       assignment={block: block for block in BLOCKS})
    monkeypatch.setitem(TOPOLOGIES, "custom", changed)
    assert cache_key(scenario) != key_v1


def test_key_tracks_reregistered_policy_definition(monkeypatch):
    from repro.core.dvfs import POLICIES, SlowdownPolicy
    monkeypatch.setitem(POLICIES, "custom-policy",
                        SlowdownPolicy("custom-policy", "v1", {"fp": 2.0}))
    scenario = replace(get_scenario("gals5"), policy="custom-policy",
                       num_instructions=SMALL)
    key_v1 = cache_key(scenario)
    monkeypatch.setitem(POLICIES, "custom-policy",
                        SlowdownPolicy("custom-policy", "v2", {"fp": 3.0}))
    assert cache_key(scenario) != key_v1


def test_interrupted_sweep_persists_completed_runs(store):
    """Results are stored as they complete: a sweep aborted mid-way keeps
    every finished scenario (the actual resumability contract)."""
    good = replace(get_scenario("base"), num_instructions=SMALL)
    bad = replace(get_scenario("gals5"), workload="no-such-workload",
                  num_instructions=SMALL)
    with pytest.raises(KeyError):
        resume_sweep([good, bad], store=store, jobs=1)
    # the completed run survived the abort and is a hit on the retry
    assert store.get(good) is not None
    runs = resume_sweep([good], store=store, jobs=1)
    assert runs[0].cached


# --------------------------------------------------------- concurrent writers
def test_racing_puts_on_same_key_produce_identical_bytes(tmp_path, scenario,
                                                         monkeypatch):
    """Two writers racing put() on one key: both succeed, bytes identical.

    The entry timestamp is frozen so both writers serialize the exact same
    payload -- the store's atomic temp-file + os.replace publish then means
    the race can only ever swap identical files, never tear one.
    """
    import threading

    monkeypatch.setattr(time, "strftime",
                        lambda fmt, *args: "2026-01-01T00:00:00")
    outcome = run_scenario(scenario)
    writers = [ResultsStore(root=tmp_path / "cache") for _ in range(2)]
    barrier = threading.Barrier(len(writers))
    keys = []

    def racer(writer):
        barrier.wait()
        for _ in range(20):
            keys.append(writer.put(outcome, wall_seconds=1.5))

    threads = [threading.Thread(target=racer, args=(writer,))
               for writer in writers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(set(keys)) == 1
    # the published entry is whole and serves the result bit-identically
    reader = ResultsStore(root=tmp_path / "cache")
    loaded = reader.get(scenario)
    assert loaded is not None
    assert loaded.to_json() == outcome.to_json()
    payload = json.loads(reader.entry_path(keys[0]).read_text())
    assert payload["key"] == keys[0]


def test_reads_never_tear_under_a_concurrent_writer(tmp_path, scenario):
    """A reader polling during repeated put() sees a hit or a miss -- never
    a torn/partial entry (atomic publish)."""
    import threading

    outcome = run_scenario(scenario)
    writer = ResultsStore(root=tmp_path / "cache")
    reader = ResultsStore(root=tmp_path / "cache")
    stop = threading.Event()

    def keep_writing():
        while not stop.is_set():
            writer.put(outcome, wall_seconds=0.5)

    thread = threading.Thread(target=keep_writing)
    thread.start()
    try:
        hits = 0
        for _ in range(200):
            loaded = reader.get(scenario)
            if loaded is not None:
                hits += 1
                assert loaded.to_json() == outcome.to_json()
    finally:
        stop.set()
        thread.join()
    assert hits > 0


def test_claim_contention_has_exactly_one_winner(store):
    """Many threads racing try_claim() on one key: exactly one wins."""
    import threading

    contenders = 8
    barrier = threading.Barrier(contenders)
    wins = []

    def contend(index):
        barrier.wait()
        if store.try_claim("deadbeef", owner=f"thread-{index}"):
            wins.append(index)

    threads = [threading.Thread(target=contend, args=(index,))
               for index in range(contenders)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(wins) == 1
    assert store.claimed("deadbeef")
    # release -> the key is claimable again (exactly once, as before)
    store.release_claim("deadbeef")
    assert not store.claimed("deadbeef")
    assert store.try_claim("deadbeef")
    assert not store.try_claim("deadbeef")


# ------------------------------------------------------- deprecated spellings
def test_resolve_store_cache_alias_warns_but_works(tmp_path):
    with pytest.warns(DeprecationWarning, match="store="):
        resolved = resolve_store(cache=str(tmp_path / "cache"))
    assert resolved is not None
    assert resolved.root == tmp_path / "cache"


def test_run_scenario_cache_alias_warns_but_works(store, scenario):
    with pytest.warns(DeprecationWarning, match="store="):
        outcome = run_scenario(scenario, cache=store)
    assert store.get(scenario) is not None
    assert store.get(scenario).to_json() == outcome.to_json()


def test_run_cached_cache_alias_warns_but_works(store, scenario):
    with pytest.warns(DeprecationWarning, match="store="):
        run = run_cached(scenario, cache=store)
    assert not run.cached
    assert run_cached(scenario, store=store).cached


def test_sweep_scenarios_cache_alias_warns_but_works(store):
    with pytest.warns(DeprecationWarning, match="store="):
        results = sweep_scenarios(["base"], jobs=1, cache=store,
                                  num_instructions=SMALL)
    assert len(results) == 1
    assert store.get(replace(get_scenario("base"),
                             num_instructions=SMALL)) is not None


def test_run_design_space_cache_alias_warns_but_works(store):
    from repro.core.experiments import run_design_space
    with pytest.warns(DeprecationWarning, match="store="):
        results = run_design_space(topologies=["base"], workloads=["perl"],
                                   num_instructions=SMALL, jobs=1,
                                   cache=store)
    assert len(results) == 1
