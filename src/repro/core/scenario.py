"""Declarative scenarios: topology + config + clocking + workload + seeds.

A :class:`Scenario` is a complete, JSON-serializable description of one
simulation run: which clock-domain :class:`~repro.core.domains.Topology` to
build, which :class:`~repro.core.config.ProcessorConfig` fields to override,
how to clock the domains (a registered DVFS policy and/or explicit per-domain
slowdowns), which registered workload to run, and every seed involved.  All
cross-references are *names* resolved through the topology, policy and
workload registries, so scenarios round-trip through JSON and pickle cleanly
across process-pool workers.

:func:`run_scenario` is the single execution path: every experiment driver in
:mod:`repro.core.experiments` and the ``python -m repro`` CLI funnel through
:func:`execute_run` underneath it, so a scenario run is bit-identical to the
equivalent hand-assembled run.
"""

from __future__ import annotations

import json
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field, replace
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from ..isa.trace import ListTraceSource
from ..power.accounting import EnergyBreakdown
from ..power.technology import TechnologyParameters
from ..workloads.registry import build_workload
from .config import DEFAULT_CONFIG, ProcessorConfig
from .controllers import DvfsController, make_controller
from .domains import ClockPlan, Topology, get_topology
from .dvfs import get_policy
from .metrics import SimulationResult
from .processor import Processor

#: Default trace length for the reproduction harness.  The paper simulates
#: full SPEC runs; the synthetic workloads reach steady state quickly, so a
#: few thousand instructions per run keep the harness fast while preserving
#: the relative behaviour.
DEFAULT_INSTRUCTIONS = 3000

#: Environment variable selecting the default worker count of the parallel
#: experiment runner.  Unset -> one worker per CPU; "1" -> serial.
JOBS_ENV_VAR = "REPRO_JOBS"


# ------------------------------------------------------------ parallel runner
def default_jobs() -> int:
    """Worker count for experiment sweeps (REPRO_JOBS, else cpu count)."""
    value = os.environ.get(JOBS_ENV_VAR)
    if value:
        try:
            return max(1, int(value))
        except ValueError:
            raise ValueError(f"{JOBS_ENV_VAR} must be an integer, got {value!r}")
    return os.cpu_count() or 1


def _call_star(job: Tuple[Callable, tuple]) -> Any:
    """Top-level trampoline so (function, args) tuples pickle cleanly."""
    function, args = job
    return function(*args)


#: A workload build spec: (workload name, num_instructions, seed, kernel_size)
#: -- exactly build_workload's memo key.
WorkloadSpec = Tuple[str, int, int, int]


def workload_specs(scenarios: Sequence["Scenario"]) -> List[WorkloadSpec]:
    """Distinct workload build specs of a sweep, in first-use order."""
    specs: List[WorkloadSpec] = []
    for scenario in scenarios:
        spec = (scenario.workload, scenario.num_instructions,
                scenario.seed, scenario.kernel_size)
        if spec not in specs:
            specs.append(spec)
    return specs


def warm_worker(specs: Sequence[WorkloadSpec] = ()) -> None:
    """Warm-start one sweep worker (a ``ProcessPoolExecutor`` initializer).

    Importing this module has already paid the simulation-package imports by
    the time the initializer runs, so the remaining per-worker start-up cost
    is trace synthesis: pre-build the sweep's workload materialisations into
    the :func:`~repro.workloads.registry.build_workload` memo once per
    worker instead of once per scenario run.  Called in the *parent* before
    the pool forks, the same warm memo is shared copy-on-write with every
    fork-start worker, making the initializer's own pass memo hits.

    Workload names unknown to this process (registered at runtime in the
    parent, invisible to a spawn-start worker's re-imported registry) are
    skipped; the sweep's existing KeyError fallback handles those scenarios.
    """
    for name, num_instructions, seed, kernel_size in specs:
        try:
            build_workload(name, num_instructions, seed=seed,
                           kernel_size=kernel_size)
        except KeyError:
            pass


def _run_jobs(function: Callable, argument_tuples: Sequence[tuple],
              jobs: Optional[int] = None,
              initializer: Optional[Callable] = None,
              initargs: tuple = ()) -> List[Any]:
    """Run ``function(*args)`` for each argument tuple, in order.

    Every experiment run is fully independent (a fresh Processor, engine and
    workload per run), so sweeps fan out over a ``ProcessPoolExecutor``.
    Results are returned in submission order and are identical to the serial
    path -- each run's determinism depends only on its own seeds.  Falls back
    to serial execution when only one worker is useful or when worker
    processes cannot be spawned (restricted environments).
    ``initializer``/``initargs`` warm-start each pool worker once (see
    :func:`warm_worker`).
    """
    if jobs is None:
        jobs = default_jobs()
    jobs = min(jobs, len(argument_tuples))
    if jobs <= 1:
        return [function(*args) for args in argument_tuples]
    payload = [(function, args) for args in argument_tuples]
    try:
        with ProcessPoolExecutor(max_workers=jobs, initializer=initializer,
                                 initargs=initargs) as executor:
            return list(executor.map(_call_star, payload))
    except (OSError, PermissionError, BrokenProcessPool):
        # Pool infrastructure failure (e.g. sandboxes without fork/sem
        # support) -- run serially instead.  Exceptions raised by the
        # experiment itself propagate unchanged.
        return [function(*args) for args in argument_tuples]


# ------------------------------------------------------------- single run path
def execute_run(trace: ListTraceSource,
                topology: Union[Topology, str],
                config: ProcessorConfig = DEFAULT_CONFIG,
                plan: Optional[ClockPlan] = None,
                workload=None,
                controller: Optional[DvfsController] = None,
                controller_epoch: float = 0.0) -> SimulationResult:
    """Build one processor for ``topology`` and run one trace through it.

    This is the single funnel every driver uses -- scenario runs, the paper's
    experiment drivers and the CLI all meet here, which is what keeps their
    results mutually bit-identical.  ``controller``/``controller_epoch``
    attach an online DVFS control loop (:mod:`repro.core.controllers`); the
    controller instance must be fresh (controllers are stateful).
    """
    machine = Processor(trace, config=config, plan=plan, workload=workload,
                        topology=topology, controller=controller,
                        controller_epoch=controller_epoch)
    return machine.run()


# ------------------------------------------------------------------- scenario
@dataclass(frozen=True)
class Scenario:
    """A declarative description of one simulation run."""

    name: str
    #: registered topology name (see ``repro.core.domains.TOPOLOGIES``)
    topology: str = "gals5"
    #: registered workload name ("perl", ..., or "kernel:<name>")
    workload: str = "perl"
    #: registered DVFS policy name, or None for uniform clocks
    policy: Optional[str] = None
    num_instructions: int = DEFAULT_INSTRUCTIONS
    #: problem size for kernel workloads (ignored for synthetic ones)
    kernel_size: int = 64
    #: workload generation seed
    seed: int = 1
    #: seed for the domains' random relative clock phases
    phase_seed: int = 0
    base_period: float = 1.0
    #: apply Equation-1 voltage scaling to slowed domains
    scale_voltages: bool = True
    #: explicit per-*domain* slowdowns, merged over (and overriding) the
    #: policy's per-block slowdowns
    slowdowns: Dict[str, float] = field(default_factory=dict)
    #: explicit per-domain starting phases in ns (domains not listed draw
    #: random phases on multi-domain topologies)
    phases: Dict[str, float] = field(default_factory=dict)
    #: ProcessorConfig field overrides (scalar fields only)
    config: Dict[str, Any] = field(default_factory=dict)
    #: registered online DVFS controller name ("static", "interval",
    #: "occupancy", "pid", ...), or None for today's static clocking
    controller: Optional[str] = None
    #: JSON-safe constructor arguments for the controller
    controller_args: Dict[str, Any] = field(default_factory=dict)
    #: control epoch in ns (how often the controller observes and may retime)
    controller_epoch: float = 50.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.num_instructions <= 0:
            raise ValueError(f"scenario {self.name!r}: num_instructions "
                             "must be positive")
        if self.base_period <= 0:
            raise ValueError(f"scenario {self.name!r}: base_period must be "
                             "positive")
        if self.controller_epoch <= 0:
            raise ValueError(f"scenario {self.name!r}: controller_epoch "
                             "must be positive")
        if self.controller_args and self.controller is None:
            raise ValueError(f"scenario {self.name!r}: controller_args "
                             "given without a controller")

    # -------------------------------------------------------- materialization
    def build_topology(self) -> Topology:
        """The registered :class:`Topology` this scenario names."""
        return get_topology(self.topology)

    def build_config(self) -> ProcessorConfig:
        """ProcessorConfig with this scenario's overrides applied."""
        if not self.config:
            return DEFAULT_CONFIG
        return DEFAULT_CONFIG.with_changes(**self.config)

    def build_plan(self, topology: Optional[Topology] = None,
                   technology: Optional[TechnologyParameters] = None
                   ) -> ClockPlan:
        """Concrete clock/voltage plan for this scenario on its topology."""
        if topology is None:
            topology = self.build_topology()
        if technology is None:
            technology = self.build_config().technology
        slowdowns: Dict[str, float] = {}
        if self.policy is not None:
            # Project the policy's per-block slowdowns onto the topology's
            # domains (a merged domain runs at its slowest member's clock).
            slowdowns.update(get_policy(self.policy).project_onto(topology))
        for domain, slowdown in self.slowdowns.items():
            slowdowns[domain] = slowdown
        unknown = (set(slowdowns) | set(self.phases)) - set(topology.domain_names)
        if unknown:
            raise ValueError(
                f"scenario {self.name!r}: slowdowns/phases name domains "
                f"{sorted(unknown)} absent from topology {topology.name!r}")
        return ClockPlan(
            base_period=self.base_period,
            slowdowns=slowdowns,
            phases=dict(self.phases),
            # an online controller may introduce slowdowns mid-run, so its
            # presence alone turns Equation-1 voltage scaling on
            scale_voltages=(bool(slowdowns) or self.controller is not None)
            and self.scale_voltages,
            phase_seed=self.phase_seed,
            technology=technology,
        )

    def build_controller(self) -> Optional[DvfsController]:
        """A fresh controller instance for one run (None without one)."""
        if self.controller is None:
            return None
        return make_controller(self.controller, self.controller_args)

    def build_trace(self):
        """(trace, workload-or-None) for this scenario's workload."""
        return build_workload(self.workload, self.num_instructions,
                              seed=self.seed, kernel_size=self.kernel_size)

    # --------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe; inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from its dict form, rejecting unknown fields."""
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
        return cls(**dict(data))

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON text form (see :meth:`to_dict`)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Parse a scenario from JSON text."""
        return cls.from_dict(json.loads(text))


# ------------------------------------------------------------ scenario result
def _result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    return asdict(result)


def _result_from_dict(data: Mapping[str, Any]) -> SimulationResult:
    payload = dict(data)
    energy = payload.get("energy")
    if energy is not None and not isinstance(energy, EnergyBreakdown):
        payload["energy"] = EnergyBreakdown(**energy)
    return SimulationResult(**payload)


@dataclass
class ScenarioResult:
    """Outcome of one scenario run: the scenario plus its simulation result."""

    scenario: Scenario
    result: SimulationResult

    def summary(self) -> str:
        """Human-readable summary of the scenario and its result."""
        return (f"scenario {self.scenario.name!r} "
                f"(topology {self.scenario.topology}, workload "
                f"{self.scenario.workload})\n" + self.result.summary())

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form of scenario + result (JSON-safe)."""
        return {"scenario": self.scenario.to_dict(),
                "result": _result_to_dict(self.result)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioResult":
        """Rebuild a ScenarioResult from its dict form."""
        return cls(scenario=Scenario.from_dict(data["scenario"]),
                   result=_result_from_dict(data["result"]))

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON text form; round-trips bit-identically."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioResult":
        """Parse a ScenarioResult from JSON text."""
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------- scenario registry
SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Register a named scenario for lookup (and the CLI)."""
    if scenario.name in SCENARIOS:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError as exc:
        raise KeyError(f"unknown scenario {name!r}; known: "
                       f"{', '.join(sorted(SCENARIOS))}") from exc


def available_scenarios() -> Tuple[str, ...]:
    """Registered scenario names, in registration order."""
    return tuple(SCENARIOS)


# One runnable scenario per registered topology (the perl workload, uniform
# clocks -- the paper's experiment-set-1 conditions) ...
register_scenario(Scenario(
    name="base", topology="base", workload="perl",
    description="fully synchronous baseline on the perl workload"))
register_scenario(Scenario(
    name="gals5", topology="gals5", workload="perl",
    description="the paper's 5-domain GALS machine on the perl workload"))
register_scenario(Scenario(
    name="frontback2", topology="frontback2", workload="perl",
    description="2-domain front/back split on the perl workload"))
register_scenario(Scenario(
    name="fem3", topology="fem3", workload="perl",
    description="3-domain fetch/exec/memory split on the perl workload"))
register_scenario(Scenario(
    name="alu4", topology="alu4", workload="perl",
    description="4-domain merged-ALU variant on the perl workload"))
register_scenario(Scenario(
    name="memsplit2", topology="memsplit2", workload="perl",
    description="2-domain memory split on the perl workload"))
register_scenario(Scenario(
    name="cluster2-perl", topology="cluster2", workload="perl",
    description="replicated-cluster machine (2 integer/FP cluster pairs, "
                "7 domains) on the perl workload"))

# ... a phase-structured (regime-changing) workload scenario ...
register_scenario(Scenario(
    name="gals5-phased-osc", topology="gals5", workload="phased:intfp-osc",
    num_instructions=1200,
    description="integer/FP oscillating phased workload on the 5-domain "
                "GALS machine"))

# ... plus the paper's DVFS case studies as scenarios ...
register_scenario(Scenario(
    name="gals5-perl-fp3", topology="gals5", workload="perl",
    policy="perl-fp3",
    description="Section 5.2: perl with the FP clock slowed by 3x, "
                "voltage-scaled"))
register_scenario(Scenario(
    name="gals5-gcc-generic", topology="gals5", workload="gcc",
    policy="generic",
    description="Figure 11: gcc under the generic slowdown policy"))

# ... and a real-program (kernel) scenario ...
register_scenario(Scenario(
    name="dotprod-gals5", topology="gals5", workload="kernel:dot_product",
    kernel_size=96,
    description="assembled dot-product kernel on the 5-domain GALS machine"))

# ... plus online (mid-run) DVFS controller scenarios.
register_scenario(Scenario(
    name="gals5-perl-occupancy", topology="gals5", workload="perl",
    controller="occupancy",
    description="adaptive queue-occupancy DVFS controller re-binding domain "
                "clocks mid-run on the perl workload"))
register_scenario(Scenario(
    name="gals5-perl-pid", topology="gals5", workload="perl",
    controller="pid", controller_args={"setpoint": 2.0},
    description="IPC-setpoint PID DVFS controller on the perl workload"))


# ------------------------------------------------------------------ execution
def resolve_scenarios(scenarios: Sequence[Union[Scenario, str]],
                      overrides: Mapping[str, Any]) -> List[Scenario]:
    """Materialise names into registered scenarios and apply overrides."""
    resolved = []
    for scenario in scenarios:
        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        if overrides:
            scenario = replace(scenario, **overrides)
        resolved.append(scenario)
    return resolved


#: Local "argument not passed" sentinel (this module cannot import
#: :mod:`repro.exec` -- the exec backends import *us*).
_UNSET: Any = object()


def _fold_cache_alias(store: Any, cache: Any) -> Any:
    """Fold the deprecated ``cache=`` spelling into ``store=`` (warning)."""
    if cache is not _UNSET:
        warnings.warn("the cache= parameter is deprecated; use store=",
                      DeprecationWarning, stacklevel=3)
        if store is None or store is _UNSET:
            store = cache
    return store


def run_scenario(scenario: Union[Scenario, str],
                 store: Any = None, cache: Any = _UNSET,
                 **overrides) -> ScenarioResult:
    """Run one scenario (by object or registered name) end to end.

    Keyword overrides are applied with :func:`dataclasses.replace`, e.g.
    ``run_scenario("gals5", num_instructions=500)``.

    ``store`` memoizes the run in the persistent results store
    (:mod:`repro.results`): pass ``True`` for the default store
    (``REPRO_CACHE_DIR``, else ``~/.cache/repro``), a path for a specific
    store root, or a :class:`~repro.results.ResultsStore`.  A cached result
    is bit-identical to a fresh one; the key covers every
    simulation-relevant scenario field plus the code fingerprint.
    ``cache=`` is the deprecated alias of ``store=``.
    """
    store = _fold_cache_alias(store, cache)
    if store is not None and store is not False:
        from ..results import run_cached
        return run_cached(scenario, store=store, **overrides).outcome
    (scenario,) = resolve_scenarios([scenario], overrides)
    topology = scenario.build_topology()
    config = scenario.build_config()
    plan = scenario.build_plan(topology, config.technology)
    trace, workload = scenario.build_trace()
    result = execute_run(trace, topology, config=config, plan=plan,
                         workload=workload,
                         controller=scenario.build_controller(),
                         controller_epoch=scenario.controller_epoch)
    return ScenarioResult(scenario=scenario, result=result)


def sweep_scenarios(scenarios: Sequence[Union[Scenario, str]],
                    jobs: Optional[int] = None,
                    store: Any = None,
                    execution: Any = None,
                    cache: Any = _UNSET,
                    **overrides) -> List[ScenarioResult]:
    """Run many scenarios, fanned out over the experiment process pool.

    Results come back in submission order and match the serial path exactly
    (every scenario is self-contained and seed-deterministic).

    With ``store`` set (see :func:`run_scenario`), the sweep is *resumable*:
    scenarios already in the results store load from disk, only the missing
    ones fan out over the pool, and each freshly computed result is stored
    immediately -- a repeated sweep is served entirely from cache.
    ``execution`` (an :class:`~repro.exec.ExecutionConfig` or a job-backend
    name) routes the sweep through :func:`~repro.results.resume_sweep` on
    the selected backend; ``cache=`` is the deprecated alias of ``store=``.
    """
    store = _fold_cache_alias(store, cache)
    if execution is not None or (store is not None and store is not False):
        from ..results import resume_sweep
        keywords: dict = {"jobs": jobs, "execution": execution}
        if store is not None:
            keywords["store"] = store
        return [run.outcome
                for run in resume_sweep(scenarios, **keywords, **overrides)]
    resolved = resolve_scenarios(scenarios, overrides)
    # Warm-start: materialise the sweep's workloads in the parent (shared
    # copy-on-write with fork-start workers, and a memo hit for the serial
    # fallback) and hand the spec list to each worker's initializer for the
    # spawn/forkserver start methods.
    specs = workload_specs(resolved)
    warm_worker(specs)
    try:
        return _run_jobs(run_scenario, [(scenario,) for scenario in resolved],
                         jobs=jobs, initializer=warm_worker, initargs=(specs,))
    except KeyError:
        # A scenario references a registry entry added at runtime (e.g. a
        # recommend_policy() registration): workers under the spawn /
        # forkserver start methods re-import the package with fresh
        # registries and cannot resolve it.  The parent's registries can,
        # so fall back to running serially here; a name unknown to the
        # parent as well re-raises with the registry's helpful message.
        return [run_scenario(scenario) for scenario in resolved]
