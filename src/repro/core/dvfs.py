"""Multiple-clock / multiple-voltage (DVFS) policies (paper Section 5.2).

The second experiment set slows down selected clock domains of the GALS
processor in an application-dependent way and lowers the corresponding supply
voltages according to Equation 1.  This module defines the slowdown
configurations the paper evaluates and turns them into
:class:`~repro.core.domains.ClockPlan` objects.

Interpretation of the paper's wording (documented here because the prose is
informal): "slowed down by X %" means the clock period is stretched by X %
(slowdown factor 1 + X/100); "slowed by a factor of N" means the period is
multiplied by N.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..power.technology import DEFAULT_TECHNOLOGY, TechnologyParameters
from ..power.voltage import voltage_for_slowdown
from .domains import (DOMAIN_FETCH, DOMAIN_FP, DOMAIN_MEMORY, GALS_DOMAINS,
                      ClockPlan, Topology, slowdown_plan)


@dataclass(frozen=True)
class SlowdownPolicy:
    """A named per-domain slowdown configuration."""

    name: str
    description: str
    slowdowns: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = set(self.slowdowns) - set(GALS_DOMAINS)
        if unknown:
            raise ValueError(f"policy {self.name!r}: unknown domains {sorted(unknown)}")
        if any(s < 1.0 for s in self.slowdowns.values()):
            raise ValueError(f"policy {self.name!r}: slowdowns must be >= 1.0")

    def plan(self, base_period: float = 1.0, scale_voltages: bool = True,
             phase_seed: int = 0,
             technology: TechnologyParameters = DEFAULT_TECHNOLOGY) -> ClockPlan:
        """Turn the policy into a concrete clock/voltage plan."""
        return slowdown_plan(dict(self.slowdowns), base_period=base_period,
                             scale_voltages=scale_voltages, phase_seed=phase_seed,
                             technology=technology)

    def project_onto(self, topology: Topology) -> Dict[str, float]:
        """Per-domain slowdowns implied by this per-block policy.

        Policies are expressed over the paper's five logical blocks.  On a
        coarser topology, a clock domain containing several blocks runs at
        the *largest* slowdown requested for any of its blocks: slowing a
        merged domain less than a member block requires would violate that
        block's timing assumption, while slowing the co-resident blocks more
        is exactly the cost of merging domains.
        """
        domain_slowdowns: Dict[str, float] = {}
        for block, slowdown in self.slowdowns.items():
            domain = topology.domain_of(block)
            if slowdown > domain_slowdowns.get(domain, 1.0):
                domain_slowdowns[domain] = slowdown
        return domain_slowdowns

    def plan_for(self, topology: Topology, base_period: float = 1.0,
                 scale_voltages: bool = True, phase_seed: int = 0,
                 technology: TechnologyParameters = DEFAULT_TECHNOLOGY
                 ) -> ClockPlan:
        """Project the policy onto one topology (see :meth:`project_onto`)
        and turn it into a concrete clock/voltage plan."""
        return slowdown_plan(self.project_onto(topology),
                             base_period=base_period,
                             scale_voltages=scale_voltages,
                             phase_seed=phase_seed, technology=technology,
                             allowed_domains=topology.domain_names)

    def voltages(self, technology: TechnologyParameters = DEFAULT_TECHNOLOGY
                 ) -> Dict[str, float]:
        """Ideal per-domain supply voltages implied by the slowdowns."""
        return {domain: voltage_for_slowdown(slowdown, technology)
                for domain, slowdown in self.slowdowns.items()}


#: Figure 11 -- the "generic" slowdown applied to three benchmarks:
#: fetch and memory clocks 10 % slower, FP clock 50 % slower.
GENERIC_SLOWDOWN = SlowdownPolicy(
    name="generic",
    description="fetch -10%, memory -10%, FP -50% (Figure 11)",
    slowdowns={DOMAIN_FETCH: 1.10, DOMAIN_MEMORY: 1.10, DOMAIN_FP: 1.50},
)

#: Section 5.2, perl: the FP clock slowed by a factor of 3 (perl has
#: essentially no FP instructions).
PERL_FP_BY_3 = SlowdownPolicy(
    name="perl-fp3",
    description="FP clock slowed by a factor of 3 (perl case study)",
    slowdowns={DOMAIN_FP: 3.0},
)

#: Figure 12 -- ijpeg: fetch -10 %, FP -20 %, memory swept over
#: {0 %, 10 %, 20 %, 50 %} (gals-00 / gals-10 / gals-20 / gals-50).
IJPEG_SWEEP: Tuple[SlowdownPolicy, ...] = tuple(
    SlowdownPolicy(
        name=f"gals-{label}",
        description=f"fetch -10%, FP -20%, memory -{label}% (Figure 12)",
        slowdowns={DOMAIN_FETCH: 1.10, DOMAIN_FP: 1.20,
                   **({DOMAIN_MEMORY: factor} if factor > 1.0 else {})},
    )
    for label, factor in (("00", 1.0), ("10", 1.10), ("20", 1.20), ("50", 1.50))
)

#: Figure 13 -- gcc: fetch -10 %; FP clock -50 % (gals-1) or /3 (gals-2).
GCC_GALS_1 = SlowdownPolicy(
    name="gals-1",
    description="fetch -10%, FP -50% (Figure 13)",
    slowdowns={DOMAIN_FETCH: 1.10, DOMAIN_FP: 1.50},
)
GCC_GALS_2 = SlowdownPolicy(
    name="gals-2",
    description="fetch -10%, FP clock slowed by a factor of 3 (Figure 13)",
    slowdowns={DOMAIN_FETCH: 1.10, DOMAIN_FP: 3.0},
)

#: All named policies, for lookup by the benchmark harness and scenarios.
POLICIES: Dict[str, SlowdownPolicy] = {
    policy.name: policy
    for policy in (GENERIC_SLOWDOWN, PERL_FP_BY_3, *IJPEG_SWEEP,
                   GCC_GALS_1, GCC_GALS_2)
}


def register_policy(policy: SlowdownPolicy) -> SlowdownPolicy:
    """Add a named slowdown policy to the registry."""
    if policy.name in POLICIES:
        raise ValueError(f"DVFS policy {policy.name!r} already registered")
    POLICIES[policy.name] = policy
    return policy


def available_policies() -> Tuple[str, ...]:
    """Registered policy names, in registration order."""
    return tuple(POLICIES)


def get_policy(name: str) -> SlowdownPolicy:
    """Look up a named slowdown policy."""
    try:
        return POLICIES[name]
    except KeyError as exc:
        raise KeyError(f"unknown DVFS policy {name!r}; known: "
                       f"{', '.join(sorted(POLICIES))}") from exc


def recommend_policy(profile, aggressiveness: float = 1.0) -> SlowdownPolicy:
    """Derive an application-driven slowdown policy from a benchmark profile.

    This implements the paper's observation that clock slowdown must be
    applied "on a selective basis, after studying the application's
    characteristics": domains whose resources the application barely uses are
    slowed down aggressively, lightly used ones moderately, and heavily used
    ones are left at full speed.

    ``aggressiveness`` scales how far the slowdowns go (1.0 reproduces the
    paper-style choices; smaller values are more conservative).
    """
    slowdowns: Dict[str, float] = {}
    fp_usage = profile.fp_fraction
    mem_usage = profile.load_fraction + profile.store_fraction
    fetch_pressure = profile.branches_per_instruction
    if fp_usage < 0.01:
        slowdowns[DOMAIN_FP] = 1.0 + 2.0 * aggressiveness
    elif fp_usage < 0.10:
        slowdowns[DOMAIN_FP] = 1.0 + 0.5 * aggressiveness
    if mem_usage < 0.25:
        slowdowns[DOMAIN_MEMORY] = 1.0 + 0.10 * aggressiveness
    if fetch_pressure < 0.15:
        slowdowns[DOMAIN_FETCH] = 1.0 + 0.10 * aggressiveness
    return SlowdownPolicy(
        name=f"auto-{profile.name}",
        description=f"application-driven slowdown derived from the "
                    f"{profile.name} profile",
        slowdowns=slowdowns,
    )
