"""Kernel backend selection, pickling, and pure-vs-compiled bit-identity.

Three layers of guarantees:

* **selection** -- ``resolve_backend`` / ``ProcessorConfig.backend`` /
  ``REPRO_BACKEND`` resolve as documented, unknown names are rejected, and
  the backend never leaks into results-store cache keys;
* **pickling** -- configs and resolved :class:`~repro.kernel.Kernel` objects
  survive the round-trip a ``spawn``-platform sweep worker pool imposes;
* **differential bit-identity** -- with a compiled artifact built
  (``tools/build_kernel.py``), the compiled backend produces byte-identical
  simulation results to the pure-Python reference: engine-level event traces
  across every wheel exit path, full runs across every registered topology,
  an occupancy-controller run with mid-run retimes, and a recovery-heavy
  long program.  Without the artifact the differential tests skip cleanly.
"""

import pickle

import pytest

from repro.core.config import ProcessorConfig
from repro.core.domains import TOPOLOGIES
from repro.core.scenario import (Scenario, _result_to_dict, run_scenario,
                                 sweep_scenarios)
from repro.kernel import (BACKENDS, Kernel, available_backends,
                          compiled_available, get_kernel, resolve_backend)
from repro.kernel.reference import sync_visible_at as reference_sync
from repro.results.store import cache_key
from repro.sim.engine import SimulationEngine

COMPILED = compiled_available()
needs_compiled = pytest.mark.skipif(
    not COMPILED,
    reason="no compiled kernel artifact (run tools/build_kernel.py)")

MIXED_CLOCKS = ((0.8, 0.0), (1.1, 0.3), (0.95, 0.1), (1.25, 0.6), (1.0, 0.2))


# -------------------------------------------------------------- selection
def test_backends_tuple_matches_config_validation():
    assert BACKENDS == ("auto", "pure", "compiled")
    for name in BACKENDS:
        ProcessorConfig(backend=name)  # accepted
    with pytest.raises(ValueError, match="unknown backend"):
        ProcessorConfig(backend="fortran")


def test_resolve_backend_defaults_to_pure(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert resolve_backend() == "pure"
    assert resolve_backend("auto") == "pure"
    assert resolve_backend("pure") == "pure"


def test_resolve_backend_follows_environment(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "pure")
    assert resolve_backend("auto") == "pure"
    # an explicit request always beats the environment
    monkeypatch.setenv("REPRO_BACKEND", "compiled")
    assert resolve_backend("pure") == "pure"
    # auto never recurses: an env var saying "auto" means "pure"
    monkeypatch.setenv("REPRO_BACKEND", "auto")
    assert resolve_backend("auto") == "pure"


def test_resolve_backend_rejects_unknown_names(monkeypatch):
    with pytest.raises(ValueError, match="unknown kernel backend"):
        resolve_backend("numba")
    monkeypatch.setenv("REPRO_BACKEND", "numba")
    with pytest.raises(ValueError, match="unknown kernel backend"):
        resolve_backend("auto")


def test_compiled_degrades_gracefully_when_artifact_missing(monkeypatch):
    import repro.kernel as kernel_pkg
    monkeypatch.setattr(kernel_pkg, "load_compiled", lambda: None)
    assert kernel_pkg.resolve_backend("compiled") == "pure"
    assert kernel_pkg.available_backends() == ["pure"]
    assert kernel_pkg.get_kernel("compiled").name == "pure"


def test_available_backends_reports_reality():
    names = available_backends()
    assert names[0] == "pure"
    assert ("compiled" in names) == COMPILED


def test_get_kernel_is_cached_and_consistent():
    pure = get_kernel("pure")
    assert pure is get_kernel("pure")
    assert pure.name == "pure" and pure.compiled is False
    assert pure.run_wheel is not None
    if COMPILED:
        compiled = get_kernel("compiled")
        assert compiled is get_kernel("compiled")
        assert compiled.name == "compiled" and compiled.compiled is True
        assert compiled.run_wheel is not pure.run_wheel


def test_engine_and_processor_report_their_backend(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert SimulationEngine().kernel_backend == "pure"
    from repro.core.processor import Processor
    from repro.workloads.registry import build_workload
    trace, workload = build_workload("perl", 100, seed=1)
    machine = Processor(trace, workload=workload,
                        config=ProcessorConfig(backend="pure"))
    assert machine.backend == "pure"
    assert machine.engine.kernel_backend == "pure"


# ------------------------------------------------------- cache-key hygiene
def test_backend_never_changes_cache_keys():
    base = Scenario(name="key-probe", topology="gals5", workload="perl",
                    num_instructions=200)
    tagged = {backend: Scenario(name="key-probe", topology="gals5",
                                workload="perl", num_instructions=200,
                                config={"backend": backend})
              for backend in ("pure", "compiled")}
    fingerprint = "test:fingerprint"
    keys = {cache_key(base, fingerprint)}
    keys.update(cache_key(scenario, fingerprint)
                for scenario in tagged.values())
    assert len(keys) == 1, "backend leaked into the results-store cache key"
    # ... while a real config change still misses
    other = Scenario(name="key-probe", topology="gals5", workload="perl",
                     num_instructions=200, config={"fifo_capacity": 12})
    assert cache_key(other, fingerprint) not in keys


# ---------------------------------------------------------------- pickling
def test_processor_config_backend_survives_pickle():
    config = ProcessorConfig(backend="compiled")
    clone = pickle.loads(pickle.dumps(config))
    assert clone.backend == "compiled"
    assert clone == config


def test_kernel_objects_pickle_by_name():
    pure = get_kernel("pure")
    clone = pickle.loads(pickle.dumps(pure))
    assert clone is pure  # cached instance, resolved by name
    if COMPILED:
        compiled = get_kernel("compiled")
        assert pickle.loads(pickle.dumps(compiled)) is compiled


def test_kernel_pickle_degrades_in_artifactless_worker(monkeypatch):
    """A kernel pickled as 'compiled' resolves to pure where there is no
    artifact -- the spawn-worker graceful-degradation contract."""
    import repro.kernel as kernel_pkg
    if COMPILED:
        payload = pickle.dumps(get_kernel("compiled"))
        monkeypatch.setattr(kernel_pkg, "load_compiled", lambda: None)
        monkeypatch.setitem(kernel_pkg._KERNELS, "pure",
                            kernel_pkg._KERNELS.get("pure"))
        clone = pickle.loads(payload)
        assert clone.name == "pure"
    else:
        payload = pickle.dumps(get_kernel("pure"))
        assert pickle.loads(payload).name == "pure"


def test_backend_config_survives_the_sweep_pool():
    """Scenarios carrying an explicit backend run through the worker pool
    (workload warm-start memo included) and match the serial path."""
    scenario = Scenario(name="pool-probe", topology="gals5", workload="perl",
                        num_instructions=300,
                        config={"backend": resolve_backend("compiled")})
    serial = run_scenario(scenario)
    pooled = sweep_scenarios([scenario, scenario], jobs=2)
    assert len(pooled) == 2
    for outcome in pooled:
        assert outcome.scenario.config["backend"] == scenario.config["backend"]
        assert _result_to_dict(outcome.result) == _result_to_dict(serial.result)


# ----------------------------------------------- engine-level differential
def _engine_events(kernel, *, cancel=False, oneshots=False,
                   stop_after=None, max_events=None, until=300.0):
    """Drive one engine over the mixed wheel; return its full event trace."""
    engine = SimulationEngine(kernel=kernel)
    events = []
    chains = []
    for index, (period, phase) in enumerate(MIXED_CLOCKS):
        def tick(_param, index=index, engine=engine):
            events.append((round(engine.now, 9), index,
                           engine.events_processed))
        chains.append(engine.schedule_periodic(
            start=phase, period=period, callback=tick,
            name=f"clk{index}"))
    if oneshots:
        def oneshot(param):
            events.append((round(engine.now, 9), "oneshot", param))
            if param < 5:
                engine.schedule_after(7.3, oneshot, param + 1)
        engine.schedule(2.5, oneshot, 0)
    if cancel:
        def cancel_one(_param):
            if engine.now >= 100.0:
                engine.cancel_chain("clk3")
        engine.schedule_periodic(start=50.0, period=60.0,
                                 callback=cancel_one, name="canceller")
    stop_condition = None
    if stop_after is not None:
        stop_condition = lambda: len(events) >= stop_after  # noqa: E731
    final = engine.run(until=until, max_events=max_events,
                       stop_condition=stop_condition)
    return events, engine.events_processed, final, engine.now


@needs_compiled
@pytest.mark.parametrize("variant", ["lean", "oneshots", "cancel",
                                     "stop_condition", "max_events"])
def test_engine_traces_bit_identical_across_backends(variant):
    options = {
        "lean": {},
        "oneshots": {"oneshots": True},
        "cancel": {"cancel": True},
        "stop_condition": {"stop_after": 500},
        "max_events": {"max_events": 700},
    }[variant]
    pure = _engine_events(get_kernel("pure"), **options)
    compiled = _engine_events(get_kernel("compiled"), **options)
    assert pure == compiled


@needs_compiled
def test_sync_visible_at_grid_matches_reference_and_fifo():
    from repro.async_comm.fifo import MixedClockFifo
    from repro.sim.clock import Clock
    compiled = get_kernel("compiled")
    for step in range(160):
        time = step * 0.37
        for phase, period, latency in ((0.0, 1.0, 1.0), (0.3, 0.8, 1.6),
                                       (2.5, 1.25, 0.0), (0.05, 0.33, 0.66)):
            expected = reference_sync(time, phase, period, latency)
            assert compiled.sync_visible_at(time, phase, period,
                                            latency) == expected
    # and the FIFO's read-only pin agrees on both sides
    fifo = MixedClockFifo(
        "probe", 8,
        producer_clock=Clock("prod", 0.8, phase=0.1),
        consumer_clock=Clock("cons", 1.1, phase=0.3),
        producer_sync=1, consumer_sync=1)
    sides = {
        "data": (fifo._data_phase, fifo._data_period, fifo._data_latency),
        "space": (fifo._space_phase, fifo._space_period, fifo._space_latency),
    }
    for step in range(40):
        time = step * 0.41
        for side, parameters in sides.items():
            assert (fifo.synchronizer_visible_at(time, side)
                    == compiled.sync_visible_at(time, *parameters))
    with pytest.raises(ValueError, match="unknown synchronizer side"):
        fifo.synchronizer_visible_at(1.0, "sideways")


# --------------------------------------------------- full-run differential
def _run_pair(topology, workload="perl", instructions=300, **fields):
    results = {}
    for backend in ("pure", "compiled"):
        scenario = Scenario(name=f"diff-{topology}-{backend}",
                            topology=topology, workload=workload,
                            num_instructions=instructions,
                            config={"backend": backend}, **fields)
        results[backend] = _result_to_dict(run_scenario(scenario).result)
    return results


@needs_compiled
@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
def test_all_topologies_bit_identical_across_backends(topology):
    results = _run_pair(topology)
    assert results["pure"] == results["compiled"]


@needs_compiled
def test_controller_run_with_retimes_bit_identical():
    results = {}
    for backend in ("pure", "compiled"):
        scenario = Scenario(name=f"diff-ctrl-{backend}", topology="gals5",
                            workload="perl", num_instructions=1200,
                            controller="occupancy", controller_epoch=50.0,
                            config={"backend": backend})
        outcome = run_scenario(scenario)
        results[backend] = _result_to_dict(outcome.result)
        # the differential is only meaningful if the controller actually
        # retimed clocks mid-run (the wheel-membership-change exit path)
        assert outcome.result.dvfs_trace, "controller produced no trace"
    assert results["pure"] == results["compiled"]


@needs_compiled
def test_recovery_heavy_long_run_bit_identical():
    results = _run_pair("gals5", workload="gcc", instructions=2500)
    assert results["pure"] == results["compiled"]
    from repro.core.scenario import _result_from_dict
    reloaded = _result_from_dict(results["pure"])
    assert reloaded.recoveries > 0, "program exercised no recoveries"
