"""Processor configuration (paper Tables 2 and 3).

:class:`ProcessorConfig` gathers every microarchitectural parameter of the
modelled machine.  The defaults are exactly the paper's Table 3 plus the
conventional values (widths, ROB size, queue depths) SimpleScalar-era
configurations used where the paper does not spell them out.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from ..memory.hierarchy import MemoryHierarchyConfig
from ..power.technology import DEFAULT_TECHNOLOGY, TechnologyParameters


@dataclass(frozen=True)
class ProcessorConfig:
    """Microarchitecture parameters shared by the base and GALS processors."""

    # -- machine width (Table 3: fetch and decode rate 4 inst/cycle)
    fetch_width: int = 4
    decode_width: int = 4
    dispatch_width: int = 4
    commit_width: int = 4
    issue_width_int: int = 4
    issue_width_fp: int = 4
    issue_width_mem: int = 2

    # -- issue queues (Table 3)
    int_issue_entries: int = 20
    fp_issue_entries: int = 16
    mem_issue_entries: int = 16

    # -- physical registers (Table 3)
    int_registers: int = 72
    fp_registers: int = 72

    # -- reorder buffer and front-end queues (conventional values)
    rob_entries: int = 64
    fetch_queue_entries: int = 8
    dispatch_queue_entries: int = 8
    decode_stages: int = 2

    # -- functional units (Table 3: 4 integer, 4 FP ALUs)
    num_int_alus: int = 4
    num_fp_alus: int = 4
    num_mem_ports: int = 2

    # -- simulation options
    #: pre-touch the trace's code and data lines so short traces measure
    #: steady-state (warm-cache) behaviour, as the paper's full SPEC runs do
    warm_caches: bool = True
    #: issue-queue wakeup implementation: "event" keeps per-physical-register
    #: waiter lists feeding an age-ordered per-queue ready list (the default,
    #: no per-cycle window scan); "scan" is the legacy poll-based CAM scan,
    #: kept selectable for the differential wakeup-equivalence tests.  Both
    #: produce bit-identical simulation results.
    wakeup_scheme: str = "event"
    #: engine hot-core kernel backend: "auto" (follow the ``REPRO_BACKEND``
    #: environment variable, pure-Python reference otherwise), "pure", or
    #: "compiled" (the ahead-of-time compiled kernel built by
    #: ``tools/build_kernel.py``; degrades gracefully to "pure" when no
    #: compiled artifact is importable).  Backends are bit-identical, so the
    #: choice never changes simulation results or results-store cache keys.
    backend: str = "auto"

    # -- branch prediction
    predictor_kind: str = "bimodal"
    predictor_entries: int = 4096
    predictor_history_bits: int = 10
    btb_entries: int = 512
    btb_associativity: int = 4

    # -- inter-domain FIFOs (GALS machine only; Section 3.2)
    fifo_capacity: int = 24
    #: extra consumer-clock cycles (beyond the next consumer edge) before data
    #: pushed into a mixed-clock FIFO is observable on the other side.  The
    #: default of 1 models one synchronization stage after the capturing
    #: consumer edge (a 1.5-2.0 cycle total penalty); set it to 0 for the
    #: latency-optimised Chelcea/Nowick interface, where data becomes visible
    #: at the first consumer edge after the push, or raise it to model a
    #: conservative multi-flop synchronizer.
    fifo_sync_cycles: int = 1
    #: synchronizer depth for the branch-redirect signal into the fetch
    #: domain; control signals crossing domains use a full synchronizer, so
    #: the redirect (and therefore misprediction recovery) is slower in the
    #: GALS machine -- the "longer recovery pipeline" of Section 5.1.
    redirect_sync_cycles: int = 1
    #: average extra consumer-domain cycles before a result produced in
    #: another domain is usable (cross-domain operand forwarding, completion
    #: reports); models the steady-state forward latency of the mixed-clock
    #: FIFOs carrying results between clusters
    forwarding_sync_cycles: float = 1.0

    # -- memory hierarchy (Table 3)
    memory: MemoryHierarchyConfig = field(default_factory=MemoryHierarchyConfig)

    # -- process / operating point
    technology: TechnologyParameters = DEFAULT_TECHNOLOGY

    def __post_init__(self) -> None:
        positive_fields = (
            "fetch_width", "decode_width", "dispatch_width", "commit_width",
            "issue_width_int", "issue_width_fp", "issue_width_mem",
            "int_issue_entries", "fp_issue_entries", "mem_issue_entries",
            "int_registers", "fp_registers", "rob_entries",
            "fetch_queue_entries", "dispatch_queue_entries", "decode_stages",
            "num_int_alus", "num_fp_alus", "num_mem_ports",
            "predictor_entries", "btb_entries", "fifo_capacity",
        )
        for name in positive_fields:
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.fifo_sync_cycles < 0:
            raise ValueError("fifo_sync_cycles must be non-negative")
        if self.int_registers < 32 or self.fp_registers < 32:
            raise ValueError("physical registers must cover the 32+32 architectural state")
        if self.wakeup_scheme not in ("event", "scan"):
            raise ValueError(f"unknown wakeup_scheme {self.wakeup_scheme!r}; "
                             "known: ('event', 'scan')")
        if self.backend not in ("auto", "pure", "compiled"):
            raise ValueError(f"unknown backend {self.backend!r}; "
                             "known: ('auto', 'pure', 'compiled')")
        self.memory.validate()

    # ------------------------------------------------------------- utilities
    def with_changes(self, **changes) -> "ProcessorConfig":
        """Copy with selected fields replaced (for sweeps and ablations)."""
        return replace(self, **changes)

    @property
    def machine_width(self) -> int:
        """Front-end width used by the power models' port counts."""
        return self.fetch_width

    def describe(self) -> str:
        """Human-readable summary mirroring Table 3."""
        m = self.memory
        lines = [
            f"Fetch and decode rate       {self.fetch_width} inst/cycle",
            f"Integer issue queue size    {self.int_issue_entries}",
            f"FP issue queue size         {self.fp_issue_entries}",
            f"Memory issue queue size     {self.mem_issue_entries}",
            f"Integer registers           {self.int_registers}",
            f"FP registers                {self.fp_registers}",
            f"L1 data cache               {m.dl1_size // 1024}KB {m.dl1_assoc}-way, "
            f"{m.dl1_latency} cycle latency",
            f"L1 instruction cache        {m.il1_size // 1024}KB "
            f"{'direct-mapped' if m.il1_assoc == 1 else f'{m.il1_assoc}-way'}, "
            f"{m.il1_latency} cycle latency",
            f"L2 unified cache            {m.l2_size // 1024}KB {m.l2_assoc}-way, "
            f"{m.l2_latency} cycles latency",
            f"ALUs                        {self.num_int_alus} integer, "
            f"{self.num_fp_alus} FP",
        ]
        return "\n".join(lines)


#: The configuration used for every experiment in the paper's evaluation.
DEFAULT_CONFIG = ProcessorConfig()
