"""Instruction classes, static instructions and execution latencies.

The timing model only needs to know an instruction's *class* (which issue
queue and functional unit it uses, and its latency), its register
dependences, and -- for branches and memory operations -- its dynamic
behaviour.  The small RISC ISA defined here is rich enough to write real
kernels (see :mod:`repro.workloads.kernels`) yet simple enough to execute
functionally at trace-generation speed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from . import registers


class InstructionClass(enum.Enum):
    """Functional classes recognised by the issue/execute stages."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ALU = "fp_alu"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    NOP = "nop"

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self in (InstructionClass.LOAD, InstructionClass.STORE)

    @property
    def is_control(self) -> bool:
        """True for branches, jumps and calls."""
        return self in (InstructionClass.BRANCH, InstructionClass.JUMP)

    @property
    def is_fp(self) -> bool:
        """True for floating-point operation classes."""
        return self in (InstructionClass.FP_ALU, InstructionClass.FP_MUL,
                        InstructionClass.FP_DIV)

    @property
    def is_int(self) -> bool:
        """True for integer ALU operation classes."""
        return self in (InstructionClass.INT_ALU, InstructionClass.INT_MUL,
                        InstructionClass.INT_DIV)


# Flattened per-member facts for the pipeline hot paths: enum members hash
# and compare through Python-level descriptors, so the per-instruction stages
# (dispatch clustering, latency lookup, commit statistics) read plain
# attributes stamped once at import instead of hitting enum-keyed dicts.
for _op_index, _opclass in enumerate(InstructionClass):
    _opclass.op_index = _op_index
    _opclass.class_key = _opclass.value
    _opclass.cluster = ("mem" if _opclass.is_memory
                        else "fp" if _opclass.is_fp else "int")
    _opclass.unpipelined = _opclass in (InstructionClass.INT_DIV,
                                        InstructionClass.FP_DIV)


#: Execution latencies in cycles (Alpha-21264-like, matching SimpleScalar's
#: default functional-unit latencies used by the paper's infrastructure).
DEFAULT_LATENCIES: Dict[InstructionClass, int] = {
    InstructionClass.INT_ALU: 1,
    InstructionClass.INT_MUL: 3,
    InstructionClass.INT_DIV: 12,
    InstructionClass.FP_ALU: 2,
    InstructionClass.FP_MUL: 4,
    InstructionClass.FP_DIV: 12,
    InstructionClass.LOAD: 1,      # address generation; cache latency added on top
    InstructionClass.STORE: 1,
    InstructionClass.BRANCH: 1,
    InstructionClass.JUMP: 1,
    InstructionClass.NOP: 1,
}


class Opcode(enum.Enum):
    """Mnemonics of the small RISC ISA used by hand-written kernels."""

    # integer arithmetic / logic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SLT = "slt"
    ADDI = "addi"
    LI = "li"
    MOV = "mov"
    # floating point
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FMOV = "fmov"
    CVTIF = "cvtif"   # int -> fp
    CVTFI = "cvtfi"   # fp -> int
    # memory
    LW = "lw"
    SW = "sw"
    FLW = "flw"
    FSW = "fsw"
    # control
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    J = "j"
    JAL = "jal"
    JR = "jr"
    HALT = "halt"
    NOP = "nop"


#: Map from opcode to the functional class the timing model uses.
OPCODE_CLASS: Dict[Opcode, InstructionClass] = {
    Opcode.ADD: InstructionClass.INT_ALU,
    Opcode.SUB: InstructionClass.INT_ALU,
    Opcode.MUL: InstructionClass.INT_MUL,
    Opcode.DIV: InstructionClass.INT_DIV,
    Opcode.AND: InstructionClass.INT_ALU,
    Opcode.OR: InstructionClass.INT_ALU,
    Opcode.XOR: InstructionClass.INT_ALU,
    Opcode.SLL: InstructionClass.INT_ALU,
    Opcode.SRL: InstructionClass.INT_ALU,
    Opcode.SLT: InstructionClass.INT_ALU,
    Opcode.ADDI: InstructionClass.INT_ALU,
    Opcode.LI: InstructionClass.INT_ALU,
    Opcode.MOV: InstructionClass.INT_ALU,
    Opcode.FADD: InstructionClass.FP_ALU,
    Opcode.FSUB: InstructionClass.FP_ALU,
    Opcode.FMUL: InstructionClass.FP_MUL,
    Opcode.FDIV: InstructionClass.FP_DIV,
    Opcode.FMOV: InstructionClass.FP_ALU,
    Opcode.CVTIF: InstructionClass.FP_ALU,
    Opcode.CVTFI: InstructionClass.FP_ALU,
    Opcode.LW: InstructionClass.LOAD,
    Opcode.SW: InstructionClass.STORE,
    Opcode.FLW: InstructionClass.LOAD,
    Opcode.FSW: InstructionClass.STORE,
    Opcode.BEQ: InstructionClass.BRANCH,
    Opcode.BNE: InstructionClass.BRANCH,
    Opcode.BLT: InstructionClass.BRANCH,
    Opcode.BGE: InstructionClass.BRANCH,
    Opcode.J: InstructionClass.JUMP,
    Opcode.JAL: InstructionClass.JUMP,
    Opcode.JR: InstructionClass.JUMP,
    Opcode.HALT: InstructionClass.JUMP,
    Opcode.NOP: InstructionClass.NOP,
}


@dataclass(frozen=True)
class Instruction:
    """One *static* instruction of a program.

    ``dest``/``sources`` are architectural register ids (see
    :mod:`repro.isa.registers`).  ``immediate`` holds the literal operand of
    immediate forms, the address offset of loads/stores, and the target label
    index (resolved to a pc by the assembler) of control instructions.
    """

    opcode: Opcode
    dest: Optional[int] = None
    sources: Tuple[int, ...] = field(default_factory=tuple)
    immediate: Optional[int] = None
    target_label: Optional[str] = None

    @property
    def opclass(self) -> InstructionClass:
        """The instruction's :class:`InstructionClass` (derived from its opcode)."""
        return OPCODE_CLASS[self.opcode]

    @property
    def is_branch(self) -> bool:
        """True for conditional branches."""
        return self.opclass is InstructionClass.BRANCH

    @property
    def is_jump(self) -> bool:
        """True for unconditional jumps/calls."""
        return self.opclass is InstructionClass.JUMP

    @property
    def is_control(self) -> bool:
        """True for any control-flow instruction."""
        return self.opclass.is_control

    @property
    def is_load(self) -> bool:
        """True for memory loads."""
        return self.opclass is InstructionClass.LOAD

    @property
    def is_store(self) -> bool:
        """True for memory stores."""
        return self.opclass is InstructionClass.STORE

    def __str__(self) -> str:
        parts = [self.opcode.value]
        operands = []
        if self.dest is not None:
            operands.append(registers.reg_name(self.dest))
        operands.extend(registers.reg_name(s) for s in self.sources)
        if self.target_label is not None:
            operands.append(self.target_label)
        elif self.immediate is not None:
            operands.append(str(self.immediate))
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)


def latency_of(opclass: InstructionClass,
               overrides: Optional[Dict[InstructionClass, int]] = None) -> int:
    """Execution latency of an instruction class, with optional overrides."""
    if overrides and opclass in overrides:
        return overrides[opclass]
    return DEFAULT_LATENCIES[opclass]
