"""repro -- a reproduction of "Power and Performance Evaluation of Globally
Asynchronous Locally Synchronous Processors" (Iyer & Marculescu, ISCA 2002).

The library provides:

* an event-driven simulation engine able to mix clocked and asynchronous
  components (:mod:`repro.sim`),
* a cycle-accurate out-of-order superscalar processor model
  (:mod:`repro.uarch`, :mod:`repro.memory`, :mod:`repro.isa`),
* mixed-clock FIFO communication between clock domains (:mod:`repro.async_comm`),
* Wattch-style power models with per-domain voltage scaling (:mod:`repro.power`),
* the synchronous-vs-GALS evaluation framework itself (:mod:`repro.core`), and
* Spec95/Mediabench-like workload models (:mod:`repro.workloads`).

Quickstart::

    from repro import run_pair, run_scenario
    row = run_pair("perl", num_instructions=2000)
    print(f"GALS relative performance: {row.relative_performance:.3f}")
    print(f"GALS relative power:       {row.relative_power:.3f}")

    # or, declaratively, through the scenario subsystem / `python -m repro`:
    print(run_scenario("frontback2", num_instructions=2000).summary())
"""

from .core import (ClockPlan, ComparisonRow, DEFAULT_CONFIG, DvfsController,
                   DvfsResult, EpochTelemetry, Processor, ProcessorConfig,
                   Scenario, ScenarioResult, SimulationResult, SlowdownPolicy,
                   Topology, available_controllers, available_policies,
                   available_scenarios, available_topologies,
                   baseline_comparison, build_base_processor,
                   build_gals_processor, build_processor, compare,
                   design_space_scenarios, get_policy, get_scenario,
                   get_topology, make_controller, phase_sensitivity,
                   register_controller, register_scenario, register_topology,
                   run_design_space, run_pair, run_scenario, run_single,
                   selective_slowdown, slowdown_plan, slowdown_sweep,
                   sweep_scenarios, uniform_plan)
from .exec import (ExecutionConfig, JobBackend, available_job_backends,
                   make_job_backend, register_job_backend)
from .results import (ResultsStore, code_fingerprint, resume_sweep,
                      run_cached)
from .workloads import (DEFAULT_BENCHMARKS, PROFILES, available_workloads,
                        build_workload, get_kernel, get_profile, kernel_trace,
                        make_trace, make_workload)

__version__ = "2.7.0"

__all__ = [
    "ClockPlan",
    "ComparisonRow",
    "DEFAULT_BENCHMARKS",
    "DEFAULT_CONFIG",
    "DvfsController",
    "DvfsResult",
    "EpochTelemetry",
    "ExecutionConfig",
    "JobBackend",
    "PROFILES",
    "Processor",
    "ProcessorConfig",
    "ResultsStore",
    "Scenario",
    "ScenarioResult",
    "SimulationResult",
    "SlowdownPolicy",
    "Topology",
    "__version__",
    "available_controllers",
    "available_job_backends",
    "available_policies",
    "available_scenarios",
    "available_topologies",
    "available_workloads",
    "baseline_comparison",
    "build_base_processor",
    "build_gals_processor",
    "build_processor",
    "build_workload",
    "code_fingerprint",
    "compare",
    "design_space_scenarios",
    "get_kernel",
    "get_policy",
    "get_profile",
    "get_scenario",
    "get_topology",
    "kernel_trace",
    "make_controller",
    "make_job_backend",
    "make_trace",
    "make_workload",
    "phase_sensitivity",
    "register_controller",
    "register_job_backend",
    "register_scenario",
    "register_topology",
    "resume_sweep",
    "run_cached",
    "run_design_space",
    "run_pair",
    "run_scenario",
    "run_single",
    "selective_slowdown",
    "slowdown_plan",
    "slowdown_sweep",
    "sweep_scenarios",
    "uniform_plan",
]
