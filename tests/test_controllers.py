"""Online DVFS controllers: retiming mechanics, determinism, and the
adaptive-beats-static acceptance criterion.

The three load-bearing contracts:

* the ``static`` controller (and any controller that never retimes) is
  **bit-identical** to the plain SlowdownPolicy path -- including the pinned
  goldens of ``test_golden_regression``;
* controller runs are deterministic: same scenario + controller + seed give a
  bit-identical ``ScenarioResult``, on both scheduler paths and through the
  results store;
* an adaptive controller beats the best registered static policy on ED² for
  at least one workload (the FP-bound ``tomcatv``, where no static policy in
  the registry helps).
"""

import json
from dataclasses import asdict, replace

import pytest

from repro.analysis.report import (design_space_records, design_space_table,
                                   dvfs_trace_records, dvfs_trace_table,
                                   phase_resolved_table, phase_trace_records)
from repro.core.controllers import (CONTROLLERS, EpochTelemetry,
                                    IntervalController, OccupancyController,
                                    PidController, available_controllers,
                                    make_controller)
from repro.core.dvfs import POLICIES
from repro.core.processor import Processor
from repro.core.scenario import Scenario, run_scenario, sweep_scenarios
from repro.results import ResultsStore
from repro.sim.clock import Clock, ClockDomain
from repro.sim.engine import SimulationEngine
from repro.sim.event import SimulationError

SMALL = 400


def _telemetry(epoch=0, time_ns=50.0, ipc=2.0, occupancy=None, slowdowns=None):
    return EpochTelemetry(
        epoch=epoch, time_ns=time_ns, epoch_ns=50.0, committed=100,
        committed_delta=100, ipc=ipc, energy_nj=500.0, energy_delta_nj=500.0,
        queue_occupancy=occupancy or {}, slowdowns=slowdowns or {})


# ------------------------------------------------------------------- registry
def test_registry_holds_the_four_required_controllers():
    assert {"static", "interval", "occupancy", "pid"} <= set(CONTROLLERS)
    assert available_controllers() == tuple(CONTROLLERS)


def test_make_controller_builds_fresh_configured_instances():
    first = make_controller("pid", {"setpoint": 1.5})
    second = make_controller("pid", {"setpoint": 1.5})
    assert first is not second
    assert first.setpoint == 1.5


def test_make_controller_rejects_unknown_names_and_bad_args():
    with pytest.raises(KeyError, match="unknown DVFS controller"):
        make_controller("nonesuch")
    with pytest.raises(ValueError, match="invalid arguments"):
        make_controller("pid", {"no_such_arg": 1})


# ----------------------------------------------------------- controller logic
def test_static_controller_never_changes_anything():
    controller = make_controller("static")
    assert controller.observe(_telemetry()) is None


def test_interval_controller_follows_its_schedule():
    controller = IntervalController(
        schedule=[[0.0, {"fp": 1.0}], [100.0, {"fp": 2.0}]])
    first = controller.observe(_telemetry(time_ns=50.0))
    assert first == {"fp": 1.0}
    # same segment again: no change
    assert controller.observe(_telemetry(time_ns=99.0)) is None
    second = controller.observe(_telemetry(time_ns=100.0))
    assert second == {"fp": 2.0}


def test_interval_controller_rejects_unknown_blocks():
    with pytest.raises(ValueError, match="unknown blocks"):
        IntervalController(schedule=[[0.0, {"warp": 2.0}]])


def test_interval_controller_rejects_speedup_slowdowns_eagerly():
    # a < 1.0 slowdown must fail at construction, not mid-simulation
    with pytest.raises(ValueError, match=">= 1.0"):
        IntervalController(schedule=[[0.0, {"fp": 0.8}]])


def test_occupancy_controller_ramps_idle_and_snaps_busy():
    controller = OccupancyController(low=0.5, high=4.0, step=0.5,
                                     max_slowdown=2.0)
    # fp queue idle -> ramp fp up one step
    vector = controller.observe(_telemetry(occupancy={"iq_fp": 0.0}))
    assert vector["fp"] == 1.5
    # still idle at the cap -> clamps
    vector = controller.observe(_telemetry(
        occupancy={"iq_fp": 0.0}, slowdowns={"fp": 2.0}))
    assert vector is None or vector["fp"] == 2.0
    # busy -> snaps back to nominal in one decision
    vector = controller.observe(_telemetry(
        occupancy={"iq_fp": 5.0}, slowdowns={"fp": 2.0}))
    assert vector["fp"] == 1.0


def test_occupancy_controller_fetch_polarity_is_reversed():
    controller = OccupancyController(fetch_low=2.0, fetch_high=6.0, step=0.5,
                                     max_fetch_slowdown=1.5)
    # a full fetch queue means fetch runs ahead -> slow it
    vector = controller.observe(_telemetry(occupancy={"fetch_q": 7.0}))
    assert vector["fetch"] == 1.5
    # a drained fetch queue restores full speed
    vector = controller.observe(_telemetry(
        occupancy={"fetch_q": 0.5}, slowdowns={"fetch": 1.5}))
    assert vector["fetch"] == 1.0


def test_pid_controller_slows_on_slack_and_recovers_on_pressure():
    controller = PidController(setpoint=2.0, kp=1.0, blocks=("fp",),
                               max_slowdown=3.0, step=0.25)
    # IPC above the setpoint: slack -> slow down
    vector = controller.observe(_telemetry(ipc=3.0))
    assert vector["fp"] == 2.0
    # IPC below the setpoint: pressure -> speed back up
    vector = controller.observe(_telemetry(ipc=1.0, slowdowns={"fp": 2.0}))
    assert vector["fp"] == 1.0
    # output is quantized: sub-step noise does not retime
    controller = PidController(setpoint=2.0, kp=0.1, blocks=("fp",), step=0.5)
    assert controller.observe(_telemetry(ipc=2.1)) is None


# ----------------------------------------------------------- retime mechanics
def test_clock_domain_retime_keeps_pending_edge_and_new_period():
    engine = SimulationEngine()
    edges = []
    domain = ClockDomain(Clock(name="d", period=1.0, phase=0.5))
    domain.add_edge_hook(lambda cycle, time: edges.append(time))
    domain.bind(engine)
    engine.run(until=2.6)                      # edges at 0.5, 1.5, 2.5
    domain.retime(2.0)                         # pending edge at 3.5 anchors
    engine.run(until=8.0)                      # then 5.5, 7.5
    assert edges == [0.5, 1.5, 2.5, 3.5, 5.5, 7.5]
    assert domain.cycle == 6                   # counter never reset


def test_clock_domain_retime_requires_bound_domain_and_positive_period():
    domain = ClockDomain(Clock(name="d", period=1.0))
    with pytest.raises(SimulationError, match="unbound"):
        domain.retime(2.0)
    engine = SimulationEngine()
    domain.bind(engine)
    with pytest.raises(SimulationError, match="positive"):
        domain.retime(0.0)


def test_engine_next_chain_time_on_both_scheduler_paths():
    for use_wheel in (True, False):
        engine = SimulationEngine(use_wheel=use_wheel)
        engine.schedule_periodic(start=0.5, period=2.0,
                                 callback=lambda _: None, name="clock:x")
        assert engine.next_chain_time("clock:x") == 0.5
        assert engine.next_chain_time("clock:y") is None


def test_fifo_retime_refreshes_synchronizer_constants():
    from repro.async_comm.fifo import MixedClockFifo
    producer = Clock(name="p", period=1.0)
    consumer = Clock(name="c", period=1.0)
    fifo = MixedClockFifo("f", 8, producer_clock=producer,
                          consumer_clock=consumer, consumer_sync=2)
    fifo.push("a", 0.25)                       # visible at edge 1.0 + 2 cycles
    assert fifo._entries[0][2] == 3.0
    # consumer clock retimed: anchor 10.0, period 2.0
    consumer.period = 2.0
    consumer.phase = 10.0
    fifo.retime()
    # in-flight entry keeps its previously computed visibility
    assert fifo._entries[0][2] == 3.0
    # new pushes synchronize against the retimed clock: a push before the
    # anchor is captured by the anchor edge, then 2 consumer cycles
    fifo.push("b", 5.0)
    assert fifo._entries[1][2] == 10.0 + 2 * 2.0
    fifo.push("c", 11.0)                       # next edge after 11.0 is 12.0
    assert fifo._entries[2][2] == 12.0 + 2 * 2.0


def test_fifo_retime_keeps_pending_space_sorted_on_producer_speedup():
    """Speeding a producer back up must not break the sorted-ascending
    invariant of the freed-slot visibility deque (can_push relies on it)."""
    from repro.async_comm.fifo import MixedClockFifo
    producer = Clock(name="p", period=2.0)     # slowed producer
    consumer = Clock(name="c", period=1.0)
    fifo = MixedClockFifo("f", 4, producer_clock=producer,
                          consumer_clock=consumer, producer_sync=2)
    for item in "abcd":
        fifo.push(item, 0.1)                   # fill to capacity
    assert fifo.pop(2.5) == "a"                # slot frees at edge 4.0 + 2*2
    assert fifo._pending_space[0] == 8.0
    # producer snaps back to nominal speed; anchor = pending edge at 4.0
    producer.period = 1.0
    producer.phase = 4.0
    fifo.retime()
    # the in-flight flag is capped at one new-clock sync after the anchor...
    assert list(fifo._pending_space) == [4.0 + 2 * 1.0]
    # ...so slots freed under the new clock keep the deque ascending
    assert fifo.pop(4.5) == "b"                # edge 5.0 + 2 new cycles
    assert list(fifo._pending_space) == [6.0, 7.0]
    # and the producer can push again once the first slot is visible
    assert not fifo.can_push(5.9)
    assert fifo.can_push(6.0)


# -------------------------------------------------- bit-identity + determinism
def test_static_controller_bit_identical_to_policy_path():
    plain = run_scenario("gals5-perl-fp3", num_instructions=SMALL)
    static = run_scenario("gals5-perl-fp3", num_instructions=SMALL,
                          controller="static")
    expected = asdict(plain.result)
    actual = asdict(static.result)
    # the only permitted difference: the controller run records its trace
    assert expected.pop("dvfs_trace") is None
    trace = actual.pop("dvfs_trace")
    assert expected == actual
    assert trace and all(entry["retimed"] is False for entry in trace)


def test_static_controller_matches_pinned_goldens():
    """The 300-instruction golden values hold under controller="static"."""
    from test_golden_regression import GOLDEN
    expected = GOLDEN[("gals", "perl", 300)]
    outcome = run_scenario(Scenario(
        name="golden-static", topology="gals5", workload="perl",
        num_instructions=300, controller="static"))
    result = outcome.result
    assert result.elapsed_ns == expected["elapsed_ns"]
    assert result.ipc == expected["ipc"]
    assert result.mean_slip_ns == expected["mean_slip_ns"]
    assert result.total_energy_nj == expected["total_energy_nj"]
    assert result.domain_cycles == expected["domain_cycles"]


def test_controller_runs_are_deterministic():
    first = run_scenario("gals5-perl-occupancy", num_instructions=SMALL)
    second = run_scenario("gals5-perl-occupancy", num_instructions=SMALL)
    assert first.to_json() == second.to_json()


def test_controller_equivalent_on_wheel_and_heap_schedulers():
    scenario = Scenario(name="eq", topology="gals5", workload="tomcatv",
                        controller="occupancy", num_instructions=SMALL)

    def run(use_wheel):
        topology = scenario.build_topology()
        config = scenario.build_config()
        plan = scenario.build_plan(topology, config.technology)
        trace, workload = scenario.build_trace()
        machine = Processor(trace, config=config, plan=plan,
                            workload=workload, topology=topology,
                            controller=scenario.build_controller(),
                            controller_epoch=scenario.controller_epoch,
                            engine=SimulationEngine(use_wheel=use_wheel))
        return machine.run()

    assert asdict(run(True)) == asdict(run(False))


def test_controller_scenarios_survive_the_process_pool():
    names = ["gals5-perl-occupancy", "gals5-perl-pid"]
    pooled = sweep_scenarios(names, jobs=2, num_instructions=SMALL)
    serial = [run_scenario(name, num_instructions=SMALL) for name in names]
    assert [r.to_json() for r in pooled] == [r.to_json() for r in serial]


def test_controller_results_round_trip_through_the_store(tmp_path):
    store = ResultsStore(root=tmp_path)
    fresh = run_scenario("gals5-perl-occupancy", num_instructions=SMALL)
    stored = run_scenario("gals5-perl-occupancy", num_instructions=SMALL,
                          store=store)
    loaded = run_scenario("gals5-perl-occupancy", num_instructions=SMALL,
                          store=store)
    assert store.hits == 1
    assert fresh.to_json() == stored.to_json() == loaded.to_json()


def test_controller_fields_change_the_cache_key(tmp_path):
    store = ResultsStore(root=tmp_path)
    base = Scenario(name="k", topology="gals5", workload="perl",
                    controller="occupancy", num_instructions=SMALL)
    key = store.key_for(base)
    assert store.key_for(replace(base, controller="pid")) != key
    assert store.key_for(replace(base, controller_epoch=25.0)) != key
    assert store.key_for(replace(base,
                                 controller_args={"step": 1.0})) != key
    # names remain pure metadata
    assert store.key_for(replace(base, name="renamed")) == key


# --------------------------------------------------------- scenario plumbing
def test_scenario_with_controller_round_trips_through_json():
    scenario = Scenario(name="rt", topology="gals5", workload="tomcatv",
                        controller="pid",
                        controller_args={"setpoint": 1.5, "blocks": ["fp"]},
                        controller_epoch=25.0)
    clone = Scenario.from_json(scenario.to_json())
    assert clone == scenario
    assert clone.build_controller().setpoint == 1.5


def test_scenario_controller_validation():
    with pytest.raises(ValueError, match="controller_epoch"):
        Scenario(name="bad", controller="static", controller_epoch=0.0)
    with pytest.raises(ValueError, match="controller_args"):
        Scenario(name="bad", controller_args={"step": 1.0})


def test_trace_records_and_table_render():
    outcome = run_scenario("gals5", num_instructions=SMALL,
                           workload="tomcatv", controller="occupancy")
    records = dvfs_trace_records(outcome)
    assert records, "controller run must produce a per-epoch trace"
    first = records[0]
    assert set(first) >= {"epoch", "time_ns", "ipc", "energy_nj",
                          "frequency_ghz", "slowdowns", "voltages"}
    assert set(first["frequency_ghz"]) == set(outcome.result.domain_cycles)
    table = dvfs_trace_table(outcome)
    assert "epoch" in table and "fetch" in table
    # a run without a controller renders the explanatory placeholder
    plain = run_scenario("gals5", num_instructions=200)
    assert "no DVFS trace" in dvfs_trace_table(plain)


def test_trace_is_json_serializable():
    outcome = run_scenario("gals5-perl-pid", num_instructions=SMALL)
    payload = json.loads(outcome.to_json())
    assert isinstance(payload["result"]["dvfs_trace"], list)


# --------------------------------------------------------------- acceptance
def test_occupancy_controller_beats_best_static_policy_on_ed2():
    """The ISSUE's acceptance criterion, on the FP-bound tomcatv workload.

    Every registered static policy either leaves energy on the table (uniform
    clocks) or slows the FP bottleneck (all registered policies slow fp);
    the occupancy controller instead discovers at run time that fetch,
    integer and memory have slack while fp is saturated.
    """
    instructions = 1000
    outcomes = [run_scenario("gals5", num_instructions=instructions,
                             workload="tomcatv", policy=policy)
                for policy in (None, *POLICIES)]
    adaptive = run_scenario("gals5", num_instructions=instructions,
                            workload="tomcatv", controller="occupancy")
    records = design_space_records(outcomes + [adaptive])
    static_ed2 = [record["ed2p_nj_ns2"] for record in records
                  if record["controller"] is None]
    adaptive_ed2 = [record["ed2p_nj_ns2"] for record in records
                    if record["controller"] == "occupancy"]
    assert len(adaptive_ed2) == 1
    best_static = min(static_ed2)
    # beat the best static policy with a real margin, not float noise
    assert adaptive_ed2[0] < 0.9 * best_static
    # the rendered compare table carries the controller column
    table = design_space_table(outcomes + [adaptive])
    assert "controller" in table.splitlines()[0]
    assert "occupancy" in table


# ------------------------------------------- phased-workload regression pins
PHASED_OSC = dict(workload="phased:intfp-osc", num_instructions=1200)
#: The adaptive configuration the phased-oscillation pin certifies: a short
#: epoch (so the controller sees each 400-instruction regime several times)
#: with full-step retiming up to 2x.
PHASED_ADAPTIVE = dict(controller="occupancy", controller_epoch=10.0,
                       controller_args={"step": 1.0, "max_slowdown": 2.0})


def test_adaptive_beats_every_static_policy_on_oscillating_phases():
    """No static policy can fit BOTH regimes of an oscillating mix.

    phased:intfp-osc alternates gcc (no FP work -- fp should sleep) with
    swim (streaming FP -- fp must run flat out) every 400 instructions.
    Each registered static policy commits to one answer for the whole run;
    the occupancy controller retimes at the regime changes and wins on ED2.
    """
    statics = [run_scenario("gals5", policy=policy, **PHASED_OSC)
               for policy in (None, *POLICIES)]
    others = [run_scenario("gals5", controller=name, **PHASED_OSC)
              for name in ("interval", "pid")]
    adaptive = run_scenario("gals5", **PHASED_OSC, **PHASED_ADAPTIVE)
    records = design_space_records(statics + others + [adaptive])
    static_ed2 = [record["ed2p_nj_ns2"] for record in records
                  if record["controller"] is None]
    assert len(static_ed2) == 1 + len(POLICIES)
    adaptive_ed2 = [record["ed2p_nj_ns2"] for record in records
                    if record["controller"] == "occupancy"]
    assert len(adaptive_ed2) == 1
    # beat the best static policy with margin (observed ratio ~0.89)
    assert adaptive_ed2[0] < 0.95 * min(static_ed2)


def test_controller_retimes_at_phase_boundaries():
    """The dvfs trace must show the controller reacting to regime changes."""
    adaptive = run_scenario("gals5", **PHASED_OSC, **PHASED_ADAPTIVE)
    records = phase_trace_records(adaptive)
    phases = sorted({record["phase"] for record in records})
    assert phases == [0, 1, 2]  # gcc, swim, gcc
    first_epoch = {}
    for position, record in enumerate(records):
        first_epoch.setdefault(record["phase"], position)
    for phase in phases[1:]:
        start = first_epoch[phase]
        # a retime lands within the first two epochs of each new regime
        assert any(record["retimed"] for record in records[start:start + 2])
    # steady state: fp is slowed while gcc runs, released while swim runs
    end_of = {record["phase"]: record for record in records}
    assert end_of[0]["slowdowns"]["fp"] > 1.0
    assert end_of[2]["slowdowns"]["fp"] > 1.0
    assert end_of[1]["slowdowns"]["fp"] == 1.0


def test_phase_resolved_table_shows_the_regimes():
    adaptive = run_scenario("gals5", **PHASED_OSC, **PHASED_ADAPTIVE)
    table = phase_resolved_table(adaptive)
    lines = table.splitlines()
    assert "segment" in lines[0] and "nJ/instr" in lines[0]
    assert len(lines) == 4  # header + one row per phase
    assert lines[1].split()[1] == "gcc"
    assert lines[2].split()[1] == "swim"
    assert lines[3].split()[1] == "gcc"


def test_phase_trace_requires_a_phased_workload():
    stationary = run_scenario("gals5-perl-occupancy", num_instructions=300)
    with pytest.raises(ValueError, match="not a phased: workload"):
        phase_trace_records(stationary)
