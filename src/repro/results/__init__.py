"""Persistent, content-addressed store of scenario results.

The package memoizes the single scenario run path on disk: results are keyed
by a canonical hash of the scenario JSON plus a fingerprint of the
simulation-relevant source tree, so identical runs are served from cache
bit-identically and any code or override change invalidates cleanly.  See
:mod:`repro.results.store` for the store, :mod:`repro.results.fingerprint`
for the invalidation scheme and :mod:`repro.results.runner` for resumable
cache-aware sweeps.

The stable public surface of the execution subsystem is re-exported here as
well: :class:`~repro.exec.ExecutionConfig` (the unified execution knobs),
the :class:`~repro.exec.JobBackend` protocol, and the job-backend registry
(:func:`~repro.exec.register_job_backend` /
:func:`~repro.exec.available_job_backends` /
:func:`~repro.exec.make_job_backend`).
"""

from ..exec import (JOB_BACKENDS, ExecutionConfig, JobBackend, JobBackendInfo,
                    JobHandle, available_job_backends, make_job_backend,
                    register_job_backend, resolve_execution)
from .fingerprint import (SIMULATION_PACKAGES, code_fingerprint,
                          fingerprint_details, source_tree_digest)
from .runner import (SweepRun, hit_rate, resume_sweep, run_cached,
                     timed_run_scenario)
from .store import (CACHE_DIR_ENV_VAR, CacheEntry, GcStats, ResultsStore,
                    cache_key, canonical_scenario_dict, default_cache_dir,
                    resolve_store)

__all__ = [
    "CACHE_DIR_ENV_VAR",
    "CacheEntry",
    "ExecutionConfig",
    "GcStats",
    "JOB_BACKENDS",
    "JobBackend",
    "JobBackendInfo",
    "JobHandle",
    "ResultsStore",
    "SIMULATION_PACKAGES",
    "SweepRun",
    "available_job_backends",
    "cache_key",
    "canonical_scenario_dict",
    "code_fingerprint",
    "default_cache_dir",
    "fingerprint_details",
    "hit_rate",
    "make_job_backend",
    "register_job_backend",
    "resolve_execution",
    "resolve_store",
    "resume_sweep",
    "run_cached",
    "source_tree_digest",
    "timed_run_scenario",
]
