"""Smoke tests running every script in examples/ with capped problem sizes.

Each example is executed as a real subprocess (the way a user runs it) so the
examples cannot silently rot as the library evolves.  Instruction counts and
kernel sizes are capped to keep the whole module fast.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

#: script name -> small-but-representative argv
EXAMPLE_ARGS = {
    "quickstart.py": ["perl", "250"],
    "dvfs_exploration.py": ["gcc", "200"],
    "kernel_on_gals.py": ["dot_product", "16"],
    "clock_distribution_study.py": [],
}


def run_example(script: str, args) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    env["REPRO_JOBS"] = "1"   # keep smoke runs serial and cheap
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True, text=True, timeout=120, env=env,
        cwd=str(REPO_ROOT))


def test_every_example_is_covered():
    """A new example script must be added to EXAMPLE_ARGS (or get skipped)."""
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXAMPLE_ARGS), (
        "examples/ and EXAMPLE_ARGS disagree; add the new script with "
        "capped arguments")


@pytest.mark.parametrize("script", sorted(EXAMPLE_ARGS))
def test_example_runs_cleanly(script):
    completed = run_example(script, EXAMPLE_ARGS[script])
    assert completed.returncode == 0, (
        f"{script} failed\nstdout:\n{completed.stdout}\n"
        f"stderr:\n{completed.stderr}")
    assert completed.stdout.strip(), f"{script} printed nothing"


def test_quickstart_reports_headline_metrics():
    completed = run_example("quickstart.py", ["perl", "250"])
    assert completed.returncode == 0
    assert "performance drop" in completed.stdout
    assert "power saving" in completed.stdout


def test_kernel_example_reports_comparison():
    completed = run_example("kernel_on_gals.py", ["vector_sum", "12"])
    assert completed.returncode == 0
    assert "GALS relative performance" in completed.stdout
