"""Decode, rename and dispatch (clock domain 2, pipeline stages 2-4).

Instructions arriving from the fetch channel are decoded, spend
``decode_stages`` cycles in the decode/rename pipeline (Table 2 lists decode,
rename/regfile-read and dispatch as separate stages), are renamed in program
order, allocated a ROB entry, and dispatched into the issue channel of the
cluster that will execute them (integer, floating point, or memory).

Instructions from a stale epoch -- wrong-path instructions that the fetch unit
kept producing while the redirect message was still in flight -- are dropped
here; they have already consumed fetch bandwidth and FIFO slots, which is
exactly the wasted speculative work the paper attributes to the GALS design.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from ..isa.instructions import InstructionClass
from ..sim.channel import Channel
from .instruction import DynamicInstruction
from .rename import RegisterAliasTable
from .regfile import PhysicalRegisterFile
from .rob import ReorderBuffer


#: opclass -> execution cluster; derived from the authoritative ``cluster``
#: attribute stamped on the enum members (repro.isa.instructions)
_CLUSTER_CACHE: Dict[InstructionClass, str] = {
    opclass: opclass.cluster for opclass in InstructionClass
}


def cluster_for(opclass: InstructionClass) -> str:
    """Which execution cluster ('int', 'fp', 'mem') runs this class."""
    return opclass.cluster


class DecodeRenameUnit:
    """Decode + rename + dispatch stage group."""

    def __init__(
        self,
        input_channel: Channel,
        issue_channels: Dict[str, Channel],
        rob: ReorderBuffer,
        rat: RegisterAliasTable,
        regfile: PhysicalRegisterFile,
        clock_period: Callable[[], float],
        current_epoch: Callable[[], int],
        activity,
        decode_width: int = 4,
        dispatch_width: int = 4,
        decode_stages: int = 2,
        cluster_domains: Optional[Dict[str, str]] = None,
        cluster_instances: Optional[Dict[str, Tuple[str, ...]]] = None,
        clock=None,
    ) -> None:
        self.input_channel = input_channel
        self._input_is_fifo = input_channel.counts_as_fifo
        self.issue_channels = issue_channels
        #: cluster instance ('int'/'fp'/'mem', plus 'int2'/... on replicated
        #: topologies) -> clock-domain name executing it
        self.cluster_domains = cluster_domains or {"int": "int", "fp": "fp",
                                                   "mem": "mem"}
        #: cluster kind -> the instances that can execute it, in dispatch
        #: preference order (the primary instance first).  The default is the
        #: identity map of the paper's single-cluster machine; replicated
        #: topologies list the replicas after the primary.
        self.cluster_instances: Dict[str, Tuple[str, ...]] = (
            cluster_instances
            or {kind: (kind,) for kind in ("int", "fp", "mem")})
        #: True when any kind has more than one instance: enables the
        #: replica-routing dispatch path (the single-instance path is the
        #: exact historical behaviour)
        self._replicated = any(len(instances) > 1
                               for instances in self.cluster_instances.values())
        #: per-kind round-robin cursor for non-control instructions on
        #: replicated topologies (advanced only on successful dispatch, so a
        #: stalled instruction retries the same instance)
        self._round_robin: Dict[str, int] = {
            kind: 0 for kind in self.cluster_instances}
        self.rob = rob
        self.rat = rat
        self.regfile = regfile
        self.clock_period = clock_period
        #: clock-object view of the decode domain (see ExecutionUnit._clock)
        from ..sim.clock import CallablePeriod
        self._clock = clock if clock is not None else CallablePeriod(clock_period)
        self.current_epoch = current_epoch
        self.activity = activity
        #: direct handles on the per-cycle activity counter cells:
        #: decode/dispatch record a couple of accesses per instruction, so
        #: they increment the cells inline instead of going through
        #: ``activity.record``
        self._decode_cell = activity.cell("decode")
        self._rename_cell = activity.cell("rename")
        self._regread_cell = activity.cell("regfile_read")
        self.decode_width = decode_width
        self.dispatch_width = dispatch_width
        self.decode_stages = decode_stages
        #: instructions inside the decode/rename pipeline, oldest first; each
        #: carries its pipe-exit time in ``instr.pipe_ready``.  Bounded like
        #: a real pipe: one decode group per decode stage.
        self.pipeline_capacity = decode_stages * decode_width
        self._pipeline: Deque[DynamicInstruction] = deque()
        # statistics
        self.decoded = 0
        self.dispatched = 0
        self.stale_dropped = 0
        self.rename_stalls = 0
        self.rob_stalls = 0
        self.channel_stalls = 0
        #: run-length-deferred fetch-queue occupancy sampling (see FetchUnit)
        self._sample_len = -1
        self._sample_run = 0

    # --------------------------------------------------------------- clocking
    def clock_edge(self, cycle: int, time: float) -> None:
        # Each helper no-ops on an empty pipeline / input, so idle edges cost
        # two attribute checks plus the occupancy sample.
        """One decode-domain cycle: advance the decode pipeline, rename, and dispatch to the clusters."""
        if self._pipeline:
            self._dispatch(time)
        channel = self.input_channel
        entries = channel._entries
        # head-visibility precheck: skip the bulk drain while the FIFO head
        # is still synchronizing into this domain
        if entries and (not self._input_is_fifo or entries[0][2] <= time):
            self._decode(time)
        entries_len = len(channel._entries)
        if entries_len == self._sample_len:
            self._sample_run += 1
        else:
            run = self._sample_run
            if run:
                self._sample_run = 0
                channel.occupancy_samples += run
                channel.occupancy_accum += self._sample_len * run
            channel.occupancy_samples += 1
            channel.occupancy_accum += entries_len
            self._sample_len = entries_len

    def flush_samples(self) -> None:
        """Fold the deferred fetch-queue occupancy run into the counters."""
        run = self._sample_run
        if run:
            self._sample_run = 0
            channel = self.input_channel
            channel.occupancy_samples += run
            channel.occupancy_accum += self._sample_len * run

    # ----------------------------------------------------------------- decode
    def _decode(self, now: float) -> None:
        # Commit-domain intake: drain the fetch channel in bulk.  Each batch
        # is bounded by both the decode width and the pipe's free slots;
        # stale (squashed / old-epoch) items consume neither, so the loop
        # re-probes until a bound is hit or nothing more is visible.
        taken = 0
        channel = self.input_channel
        pop_bulk = channel.pop_bulk
        pipeline = self._pipeline
        capacity = self.pipeline_capacity
        is_fifo = channel.counts_as_fifo
        width = self.decode_width
        # epoch and clock period cannot change while decode drains its input
        # (recoveries happen on execution-domain edges), so hoist them
        epoch = self.current_epoch()
        pipe_delay = self.decode_stages * self._clock.period
        append = pipeline.append
        while True:
            limit = width - taken
            space = capacity - len(pipeline)
            if space < limit:
                limit = space
            if limit <= 0:
                break
            batch = pop_bulk(now, limit)
            if not batch:
                break
            for instr, wait in batch:
                if is_fifo and wait > 0:
                    instr.fifo_time += wait
                if instr.squashed or instr.epoch < epoch:
                    self.stale_dropped += 1
                    continue
                instr.decode_time = now
                instr.pipe_ready = now + pipe_delay
                append(instr)
                self.decoded += 1
                taken += 1
            if len(batch) < limit:
                break                     # channel exhausted: skip the re-probe
        if taken:
            self._decode_cell[0] += taken

    # --------------------------------------------------------------- dispatch
    def _dispatch(self, now: float) -> None:
        dispatched = 0
        current_epoch = self.current_epoch()
        pipeline = self._pipeline
        rob = self.rob
        rob_entries = rob._entries
        rob_capacity = rob.capacity
        rat = self.rat
        rename = rat.rename
        issue_channels = self.issue_channels
        cluster_domains = self.cluster_domains
        width = self.dispatch_width
        regfile_reads = 0
        #: lazily computed per-cluster grant counts (producer-side space is
        #: stable within the cycle minus this loop's own pushes)
        free_slots: Dict[str, int] = {}
        while dispatched < width and pipeline:
            instr = pipeline[0]
            if instr.pipe_ready > now:
                break
            if instr.squashed or instr.epoch < current_epoch:
                pipeline.popleft()
                self.stale_dropped += 1
                continue
            cluster = instr.opclass.cluster
            if self._replicated:
                # Replica routing: control instructions always run on the
                # primary instance (the only cluster with a branch unit and
                # redirect link); everything else round-robins across the
                # kind's instances, deterministically.
                instances = self.cluster_instances[cluster]
                if len(instances) == 1 or instr.opclass.is_control:
                    cluster = instances[0]
                else:
                    cluster = instances[self._round_robin[cluster]
                                        % len(instances)]
            channel = issue_channels[cluster]
            if len(rob_entries) >= rob_capacity:
                self.rob_stalls += 1
                break
            free = free_slots.get(cluster)
            if free is None:
                free = channel.free_slots(now)
            if free <= 0:
                channel.record_full_stall()
                self.channel_stalls += 1
                break
            if not rename(instr):
                self.rename_stalls += 1
                break
            if instr.is_branch:
                instr.rename_checkpoint = rat.take_checkpoint(instr.seq)
            # inline rob.allocate (fullness was checked above)
            rob_entries.append(instr)
            instr.rob_index = rob.allocations
            rob.allocations += 1
            instr.rename_time = now
            instr.dispatch_time = now
            instr.exec_domain = cluster_domains[cluster]
            channel.push_granted(instr, now)
            free_slots[cluster] = free - 1
            if self._replicated:
                self._round_robin[instr.opclass.cluster] += 1
            pipeline.popleft()
            dispatched += 1
            self.dispatched += 1
            num_reads = len(instr.phys_sources)
            regfile_reads += num_reads if num_reads > 1 else 1
        if dispatched:
            self._rename_cell[0] += dispatched
            self._regread_cell[0] += regfile_reads

    # ----------------------------------------------------------------- squash
    def squash_younger_than(self, branch_seq: int) -> int:
        """Drop wrong-path instructions from the decode pipeline and input."""
        before = len(self._pipeline)
        self._pipeline = deque(i for i in self._pipeline
                               if i.seq <= branch_seq)
        dropped_pipeline = before - len(self._pipeline)
        dropped_channel = self.input_channel.flush(
            lambda i: getattr(i, "seq", -1) > branch_seq)
        return dropped_pipeline + dropped_channel

    # ------------------------------------------------------------------ state
    def pending_work(self) -> int:
        """Instructions inside the decode pipeline or waiting in the fetch queue."""
        return len(self._pipeline) + self.input_channel.occupancy
