"""Tests for the CI perf-regression gate (benchmarks/check_bench_regression.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = (Path(__file__).resolve().parent.parent
           / "benchmarks" / "check_bench_regression.py")
_spec = importlib.util.spec_from_file_location("check_bench_regression",
                                               _SCRIPT)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def make_record(machine="box-a", python="3.12.0", scale=1.0, gals_scale=1.0):
    """A synthetic benchmark record; ``scale`` models host speed."""
    seed_live = 600_000.0 * scale
    return {
        "timestamp": "2026-07-28T00:00:00",
        "machine": machine,
        "python": python,
        "engine_events_per_sec": {
            "mixed": {"wheel": 2_000_000.0 * scale,
                      "seed_engine_live": seed_live},
            "uniform": {"wheel": 3_600_000.0 * scale,
                        "seed_engine_live": seed_live},
        },
        "full_run": {
            "gals": {"instr_per_sec": 29_000.0 * scale * gals_scale},
            "base": {"instr_per_sec": 43_000.0 * scale},
        },
    }


def test_single_record_passes_trivially():
    lines, regressed = gate.check([make_record()], 0.25)
    assert not regressed
    assert "nothing to compare" in lines[0]


def test_same_host_uses_raw_throughput():
    lines, regressed = gate.check(
        [make_record(), make_record(gals_scale=0.5)], 0.25)
    assert regressed
    assert "same host" in lines[0]
    assert any("REGRESSION" in line and "gals" in line for line in lines)


def test_same_host_within_threshold_passes():
    lines, regressed = gate.check(
        [make_record(), make_record(gals_scale=0.9)], 0.25)
    assert not regressed


def test_different_host_normalises_out_machine_speed():
    # a CI runner half as fast across the board is NOT a regression
    lines, regressed = gate.check(
        [make_record(machine="dev-box"),
         make_record(machine="ci-runner", scale=0.5)], 0.25)
    assert not regressed
    assert "different host" in lines[0]


def test_different_host_still_catches_real_regression():
    # slower host AND a genuine 2x gals-path slowdown relative to it
    lines, regressed = gate.check(
        [make_record(machine="dev-box"),
         make_record(machine="ci-runner", scale=0.5, gals_scale=0.5)], 0.25)
    assert regressed
    assert any("REGRESSION" in line and "gals" in line for line in lines)


def test_main_exit_codes(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps([make_record(), make_record()]))
    assert gate.main(["--bench-file", str(path)]) == 0
    path.write_text(json.dumps([make_record(),
                                make_record(gals_scale=0.5)]))
    assert gate.main(["--bench-file", str(path), "--threshold", "0.25"]) == 1
    assert gate.main(["--bench-file", str(tmp_path / "missing.json")]) == 2
