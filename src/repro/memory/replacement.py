"""Cache replacement policies.

The paper's processor (Table 3) uses conventional set-associative caches; the
replacement policy is not specified, so LRU is the default (SimpleScalar's
default).  FIFO and random policies are provided for ablation studies.
"""

from __future__ import annotations

import random
from typing import List, Optional


class ReplacementPolicy:
    """Chooses a victim way within one cache set."""

    name = "base"

    def __init__(self, associativity: int) -> None:
        if associativity <= 0:
            raise ValueError("associativity must be positive")
        self.associativity = associativity

    def on_access(self, way: int) -> None:  # pragma: no cover - overridden
        """Called on every hit or fill of ``way``."""

    def on_fill(self, way: int) -> None:
        """Called when ``way`` receives a new line; defaults to on_access."""
        self.on_access(way)

    def victim(self, valid: List[bool]) -> int:  # pragma: no cover - overridden
        """Return the way to evict given the per-way valid bits."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used replacement."""

    name = "lru"

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        # recency[i] is the way id; index 0 = most recently used.
        self._recency: List[int] = list(range(associativity))

    def on_access(self, way: int) -> None:
        """Move the touched way to the most-recently-used position."""
        self._recency.remove(way)
        self._recency.insert(0, way)

    def victim(self, valid: List[bool]) -> int:
        """The least-recently-used way."""
        for way, is_valid in enumerate(valid):
            if not is_valid:
                return way
        return self._recency[-1]


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out replacement (round-robin fill order)."""

    name = "fifo"

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        self._next = 0

    def on_access(self, way: int) -> None:
        """No-op: FIFO ignores access recency."""
        pass  # hits do not change FIFO order

    def on_fill(self, way: int) -> None:
        """Record the filled way at the back of the eviction queue."""
        self._next = (way + 1) % self.associativity

    def victim(self, valid: List[bool]) -> int:
        """The oldest-filled way."""
        for way, is_valid in enumerate(valid):
            if not is_valid:
                return way
        return self._next


class RandomPolicy(ReplacementPolicy):
    """Random replacement with a deterministic per-set RNG."""

    name = "random"

    def __init__(self, associativity: int, seed: int = 0) -> None:
        super().__init__(associativity)
        self._rng = random.Random(seed)

    def on_access(self, way: int) -> None:
        """No-op: random replacement keeps no access state."""
        pass

    def victim(self, valid: List[bool]) -> int:
        """A uniformly random way from the set's private RNG."""
        for way, is_valid in enumerate(valid):
            if not is_valid:
                return way
        return self._rng.randrange(self.associativity)


_POLICIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, associativity: int, seed: int = 0) -> ReplacementPolicy:
    """Factory for replacement policies by name ('lru', 'fifo', 'random')."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError as exc:
        raise ValueError(f"unknown replacement policy {name!r}") from exc
    if cls is RandomPolicy:
        return cls(associativity, seed=seed)
    return cls(associativity)
