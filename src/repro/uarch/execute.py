"""Issue/execute units: functional-unit pools and per-domain execution engines.

The GALS processor has three execution clock domains (Figure 3b): integer
issue queue + integer ALUs, floating-point issue queue + FP ALUs, and the
memory issue queue + data cache + L2.  Keeping the queue and its functional
units in the same clock domain is a deliberate choice the paper explains:
dependent instructions inside one queue can still issue back-to-back.

Each :class:`ExecutionUnit` is one such block.  Per clock edge it

1. retires finished operations (marking results ready and resolving branches,
   which may trigger misprediction recovery),
2. drains newly dispatched instructions from its input channel into the
   issue queue,
3. wakes up and selects ready instructions and starts them on free functional
   units, adding data-cache latency for loads.

The same class, instantiated three times and placed in a single clock domain,
forms the execution core of the synchronous baseline.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..isa.instructions import DEFAULT_LATENCIES, InstructionClass, latency_of
from ..memory.hierarchy import MemoryHierarchy
from ..sim.channel import Channel
from .branch_predictor import BranchUnit
from .instruction import DynamicInstruction
from .issue_queue import ForwardingLatency, IssueQueue
from .regfile import PhysicalRegisterFile

#: Classes that occupy their functional unit for the full latency
#: (unpipelined), rather than a single initiation cycle.
_UNPIPELINED = {InstructionClass.INT_DIV, InstructionClass.FP_DIV}


class FunctionalUnitPool:
    """A pool of identical functional units with per-unit busy tracking."""

    def __init__(self, name: str, count: int) -> None:
        if count <= 0:
            raise ValueError("functional unit count must be positive")
        self.name = name
        self.count = count
        self._busy_until: List[float] = [float("-inf")] * count
        self.operations = 0
        self.structural_stalls = 0

    def available(self, now: float) -> int:
        """Number of units free at ``now``."""
        return sum(1 for t in self._busy_until if t <= now)

    def try_claim(self, now: float, busy_for: float) -> bool:
        """Claim a free unit for ``busy_for`` ns; False if none is free."""
        for index, busy_until in enumerate(self._busy_until):
            if busy_until <= now:
                self._busy_until[index] = now + busy_for
                self.operations += 1
                return True
        self.structural_stalls += 1
        return False

    @property
    def utilization_count(self) -> int:
        return self.operations


class ExecutionUnit:
    """Issue queue + functional units for one execution cluster."""

    def __init__(
        self,
        name: str,
        domain_name: str,
        issue_queue: IssueQueue,
        input_channel: Channel,
        regfile: PhysicalRegisterFile,
        forwarding_latency: ForwardingLatency,
        clock_period: Callable[[], float],
        functional_units: FunctionalUnitPool,
        issue_width: int,
        activity,
        alu_block: str,
        queue_block: str,
        branch_unit: Optional[BranchUnit] = None,
        recovery_callback: Optional[Callable[[DynamicInstruction, float], None]] = None,
        memory: Optional[MemoryHierarchy] = None,
        latencies: Optional[Dict[InstructionClass, int]] = None,
    ) -> None:
        self.name = name
        self.domain_name = domain_name
        self.issue_queue = issue_queue
        self.input_channel = input_channel
        self.regfile = regfile
        self.forwarding_latency = forwarding_latency
        self.clock_period = clock_period
        self.functional_units = functional_units
        self.issue_width = issue_width
        self.activity = activity
        self.alu_block = alu_block
        self.queue_block = queue_block
        self.branch_unit = branch_unit
        self.recovery_callback = recovery_callback
        self.memory = memory
        self.latencies = latencies or dict(DEFAULT_LATENCIES)
        #: operations in execution: list of (completion_time, instruction)
        self._in_flight: List[DynamicInstruction] = []
        self._completion_times: Dict[int, float] = {}
        # statistics
        self.completed_ops = 0
        self.issued_ops = 0
        self.dropped_squashed = 0

    # --------------------------------------------------------------- clocking
    def clock_edge(self, cycle: int, time: float) -> None:
        self._complete_finished(time)
        self._drain_input(time)
        self._issue_ready(time)
        self.issue_queue.sample_occupancy()
        self.input_channel.sample_occupancy()

    # ------------------------------------------------------------ completion
    def _complete_finished(self, now: float) -> None:
        finished = [instr for instr in self._in_flight
                    if self._completion_times.get(instr.seq, float("inf")) <= now]
        if not finished:
            return
        # Remove the finished operations from the in-flight set *before*
        # processing them: branch resolution below may trigger misprediction
        # recovery, which squashes younger work in this very unit.
        for instr in finished:
            self._in_flight.remove(instr)
            self._completion_times.pop(instr.seq, None)
        for instr in sorted(finished, key=lambda i: i.seq):
            if instr.squashed:
                continue
            instr.completed = True
            instr.complete_time = now
            self.completed_ops += 1
            if instr.phys_dest is not None:
                self.regfile.mark_ready(instr.phys_dest, now, self.domain_name)
                self.activity.record("regfile_write", 1)
                self.activity.record("resultbus", 1)
            if instr.is_branch and self.branch_unit is not None:
                self.branch_unit.resolve(instr.pc, instr.trace.taken,
                                         instr.predicted_taken
                                         if instr.predicted_taken is not None
                                         else False,
                                         instr.trace.target_pc)
                if instr.mispredicted and self.recovery_callback is not None:
                    self.recovery_callback(instr, now)

    # ----------------------------------------------------------------- input
    def _drain_input(self, now: float) -> None:
        channel = self.input_channel
        while channel.can_pop(now) and not self.issue_queue.is_full:
            instr: DynamicInstruction = channel.pop(now)
            if channel.counts_as_fifo:
                instr.record_fifo_wait(channel.last_pop_wait)
            if instr.squashed:
                self.dropped_squashed += 1
                continue
            self.issue_queue.dispatch(instr)
            self.activity.record(self.queue_block, 1)

    # ----------------------------------------------------------------- issue
    def _issue_ready(self, now: float) -> None:
        limit = min(self.issue_width, self.functional_units.available(now))
        if limit <= 0:
            return
        ready = self.issue_queue.ready_instructions(
            now, self.regfile, self.forwarding_latency, limit)
        period = self.clock_period()
        for instr in ready:
            latency_cycles = latency_of(instr.opclass, self.latencies)
            if instr.is_load and self.memory is not None:
                latency_cycles += self.memory.load_access(instr.trace.mem_address or 0)
                self.activity.record("dcache", 1)
            busy_cycles = latency_cycles if instr.opclass in _UNPIPELINED else 1
            if not self.functional_units.try_claim(now, busy_cycles * period):
                break
            self.issue_queue.remove(instr)
            instr.issued = True
            instr.issue_time = now
            self._completion_times[instr.seq] = now + latency_cycles * period
            self._in_flight.append(instr)
            self.issued_ops += 1
            self.activity.record(self.alu_block, 1)
            self.activity.record(self.queue_block, 1)

    # ----------------------------------------------------------------- squash
    def squash_younger_than(self, branch_seq: int) -> int:
        """Remove wrong-path work after a misprediction; returns count removed."""
        squashed_queue = self.issue_queue.squash_younger_than(branch_seq)
        squashed_flight = [i for i in self._in_flight if i.seq > branch_seq]
        for instr in squashed_flight:
            instr.squashed = True
            self._completion_times.pop(instr.seq, None)
        self._in_flight = [i for i in self._in_flight if i.seq <= branch_seq]
        dropped_channel = self.input_channel.flush(
            lambda i: getattr(i, "seq", -1) > branch_seq)
        return len(squashed_queue) + len(squashed_flight) + dropped_channel

    # ------------------------------------------------------------------ state
    @property
    def in_flight_count(self) -> int:
        return len(self._in_flight)

    def pending_work(self) -> int:
        """Instructions waiting or executing in this cluster (drain check)."""
        return (self.issue_queue.occupancy + len(self._in_flight)
                + self.input_channel.occupancy)
