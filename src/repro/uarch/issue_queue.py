"""Out-of-order issue queues (instruction windows).

The processor has three issue queues (Table 3): integer (20 entries), floating
point (16) and memory (16).  Each queue holds renamed instructions until their
source operands are ready *and visible in the queue's clock domain*, then
issues the oldest ready instructions to the functional units, up to the issue
width and functional-unit availability.

Queue occupancy is one of the statistics the paper highlights (occupancies go
up in the GALS machine because instructions wait longer for cross-domain
operands); :meth:`IssueQueue.sample_occupancy` feeds those numbers.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from .instruction import DynamicInstruction
from .regfile import PhysicalRegisterFile

#: forwarding_latency(producer_domain, consumer_domain) -> extra ns
ForwardingLatency = Callable[[str, str], float]

_INF = float("inf")

#: event-driven wakeup (per-register waiter lists + a per-queue ready list)
SCHEME_EVENT = "event"
#: legacy poll-based wakeup (full CAM scan per cycle, covered-prefix gate)
SCHEME_SCAN = "scan"

WAKEUP_SCHEMES = (SCHEME_EVENT, SCHEME_SCAN)


class IssueQueue:
    """One instruction window feeding one set of functional units.

    ``scheme`` selects the wakeup implementation: ``"event"`` keeps a
    per-physical-register waiter list (entries blocked on that value) and an
    age-ordered per-queue ready list fed by writebacks, so the per-cycle
    wakeup pass touches only awake entries; ``"scan"`` is the legacy
    poll-based CAM scan over the whole window.  Both produce bit-identical
    issue decisions (the differential wakeup tests pin this).
    """

    def __init__(self, name: str, capacity: int, domain_name: str = "",
                 scheme: str = SCHEME_SCAN) -> None:
        if capacity <= 0:
            raise ValueError("issue queue capacity must be positive")
        if scheme not in WAKEUP_SCHEMES:
            raise ValueError(f"unknown wakeup scheme {scheme!r}; "
                             f"known: {WAKEUP_SCHEMES}")
        self.name = name
        self.capacity = capacity
        self.domain_name = domain_name
        self.scheme = scheme
        self._entries: List[DynamicInstruction] = []
        #: event scheme: entries whose source operands have all been
        #: *produced* (writeback happened; cross-domain visibility may still
        #: be in the future), kept in age (seq) order.  Always a subset of
        #: ``_entries``.
        self._ready: List[DynamicInstruction] = []
        # Entries arrive in program (seq) order from the in-order front end,
        # so the list is kept age-sorted without re-sorting every wakeup; the
        # flag flips if an out-of-order dispatch is ever observed.
        self._needs_sort = False
        # Queue-level wakeup gate: after a complete scan that issued every
        # ready entry, nothing can issue before ``gate_time`` unless a new
        # result completes (``regfile.writes`` moves past ``gate_stamp``) or
        # the queue contents change.  ``gate_time`` < 0 means invalid.
        # ``gate_len`` is the length of the age-ordered prefix the gate
        # covers: entries dispatched after the scan sit beyond it and are
        # the only ones a gated wakeup pass still needs to examine.
        self.gate_time = -1.0
        self.gate_stamp = -1
        self.gate_len = 0
        # Event-scheme issue gate: after a complete pass over the ready list
        # that issued everything visible, no remaining entry becomes visible
        # before ``ready_gate``.  Only a new push can add an earlier
        # candidate (it resets the gate); entries leaving the list can never
        # lower the minimum, so squash/remove keep the gate valid.
        self.ready_gate = -1.0
        # producer-domain -> forwarding latency into this queue's domain.
        # Clock periods are immutable once domains are bound (see
        # Processor._forwarding_cache), so the callback result is cached to
        # skip the call on the wakeup hot path.
        self._fwd_cache: dict = {}
        # statistics
        self.dispatches = 0
        self.issues = 0
        self.wakeup_searches = 0
        self.occupancy_accum = 0
        self.occupancy_samples = 0
        self.full_stalls = 0

    # ----------------------------------------------------------------- state
    @property
    def occupancy(self) -> int:
        """Number of instructions waiting in the window."""
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        """True when the window has no free entry."""
        return len(self._entries) >= self.capacity

    @property
    def mean_occupancy(self) -> float:
        """Average occupancy over the sampled cycles."""
        if self.occupancy_samples == 0:
            return 0.0
        return self.occupancy_accum / self.occupancy_samples

    def sample_occupancy(self) -> None:
        """Record the current occupancy (one sample per cluster cycle)."""
        self.occupancy_samples += 1
        self.occupancy_accum += len(self._entries)

    def __iter__(self) -> Iterable[DynamicInstruction]:
        return iter(self._entries)

    # ------------------------------------------------------------ operations
    def dispatch(self, instr: DynamicInstruction,
                 regfile: Optional[PhysicalRegisterFile] = None) -> None:
        """Insert a renamed instruction into the window.

        Under the event wakeup scheme, ``regfile`` is required: the entry is
        linked onto the waiter list of every not-yet-produced source operand
        (or straight onto the ready list when none is pending).
        """
        entries = self._entries
        if len(entries) >= self.capacity:
            self.full_stalls += 1
            raise OverflowError(f"issue queue {self.name!r} is full")
        if entries and instr.seq < entries[-1].seq:
            # an out-of-order arrival scrambles the gate's covered prefix
            self._needs_sort = True
            self.gate_time = -1.0
        entries.append(instr)
        self.dispatches += 1
        if self.scheme == SCHEME_EVENT:
            if regfile is None:
                raise ValueError("event-scheme dispatch needs the regfile "
                                 "to link waiters")
            self.link_waiters(instr, regfile)

    def link_waiters(self, instr: DynamicInstruction,
                     regfile: PhysicalRegisterFile) -> None:
        """Register the entry on the waiter list of each pending operand.

        A source operand is *pending* while its producer has not written
        back (``ready_time`` is +inf); produced-but-not-yet-visible operands
        (cross-domain forwarding still in flight) do not count -- the ready
        list tracks production, the issue pass prices visibility.  Entries
        with no pending operand join the ready list immediately.
        """
        pending = 0
        registers = regfile._registers
        for phys in instr.phys_sources:
            reg = registers[phys]
            if reg.ready_time == _INF:
                reg.waiters.append(instr)
                pending += 1
        instr.pending_ops = pending
        instr.wakeup_queue = self
        if pending == 0:
            self.push_ready(instr)

    def push_ready(self, instr: DynamicInstruction) -> None:
        """Insert a fully produced entry into the age-ordered ready list.

        Entries arrive in writeback order, not age order, so the insert
        walks from the tail to the entry's seq slot (the list is short and
        mostly-ordered, so the walk is usually zero or one step).  Age order
        is the bit-identity rule: the issue pass must attempt ready entries
        oldest first, exactly as the legacy whole-window scan did.
        """
        ready = self._ready
        seq = instr.seq
        if ready and seq < ready[-1].seq:
            index = len(ready) - 1
            while index > 0 and ready[index - 1].seq > seq:
                index -= 1
            ready.insert(index, instr)
        else:
            ready.append(instr)
        instr.wakeup_after = -1.0
        self.ready_gate = -1.0

    def ready_instructions(
        self,
        now: float,
        regfile: PhysicalRegisterFile,
        forwarding_latency: ForwardingLatency,
        limit: int,
    ) -> List[DynamicInstruction]:
        """Oldest-first list of instructions whose operands are all visible.

        Under the legacy scan scheme this models the wakeup/select CAM
        search: every entry is examined (counted as wakeup activity), and up
        to ``limit`` ready entries are returned in age order.  Under the
        event scheme only the ready list (entries already woken by their
        producers' writebacks) is examined; the selection is bit-identical.
        """
        if limit <= 0:
            return []
        if self.scheme == SCHEME_EVENT:
            return self._ready_event(now, regfile, forwarding_latency, limit)
        if self._needs_sort:
            self._entries.sort(key=lambda i: i.seq)
            self._needs_sort = False
        ready: List[DynamicInstruction] = []
        searched = 0
        domain_name = self.domain_name
        registers = regfile._registers
        fwd_cache = self._fwd_cache
        # Result visibility is monotonic: once a register value is visible in
        # this domain it stays visible, and a register waiting on an
        # incomplete producer cannot become visible before some
        # ``mark_ready`` bumps ``regfile.writes``.  Each entry therefore
        # caches the time its operands become visible (``wakeup_after``) --
        # or, while a producer is still in flight, the write-counter value it
        # last checked against (``wakeup_stamp``) -- and the wakeup search
        # skips it with one comparison instead of re-probing every operand
        # every cycle.
        write_stamp = regfile.writes
        scan_complete = True
        min_future = _INF
        for instr in self._entries:
            searched += 1
            wakeup_after = instr.wakeup_after
            if wakeup_after > now:
                if wakeup_after < _INF:
                    if wakeup_after < min_future:
                        min_future = wakeup_after
                    continue              # visibility time known, still ahead
                if instr.wakeup_stamp == write_stamp:
                    continue              # still blocked: no new completions
            elif wakeup_after >= 0.0:
                # known ready: operands were visible at an earlier check
                ready.append(instr)
                if len(ready) >= limit:
                    scan_complete = False
                    break
                continue
            # blocked entry with fresh completions, or never-checked entry
            # (wakeup_after < 0): probe every operand and refresh the cache
            visible_at = 0.0
            for phys in instr.phys_sources:
                reg = registers[phys]
                source_visible = reg.ready_time
                if source_visible == _INF:
                    visible_at = _INF
                    break
                producer_domain = reg.producer_domain
                if producer_domain and producer_domain != domain_name:
                    extra = fwd_cache.get(producer_domain)
                    if extra is None:
                        extra = forwarding_latency(producer_domain,
                                                   domain_name)
                        fwd_cache[producer_domain] = extra
                    source_visible += extra
                if source_visible > visible_at:
                    visible_at = source_visible
            instr.wakeup_after = visible_at
            if visible_at > now:
                if visible_at == _INF:
                    instr.wakeup_stamp = write_stamp
                elif visible_at < min_future:
                    min_future = visible_at
                continue
            ready.append(instr)
            if len(ready) >= limit:
                scan_complete = False     # tail not examined this cycle
                break
        self.wakeup_searches += searched
        if scan_complete:
            self.gate_time = min_future
            self.gate_stamp = write_stamp
            self.gate_len = len(self._entries)
        else:
            self.gate_time = -1.0
        return ready

    def _ready_event(
        self,
        now: float,
        regfile: PhysicalRegisterFile,
        forwarding_latency: ForwardingLatency,
        limit: int,
    ) -> List[DynamicInstruction]:
        """Event-scheme wakeup: pick visible entries off the ready list.

        Entries on the ready list have every operand produced; the pass
        prices cross-domain visibility lazily with the same per-entry
        ``wakeup_after`` cache the scan scheme uses (including its
        stale-across-retime semantics), which is what keeps the two schemes
        bit-identical.
        """
        if now < self.ready_gate:
            return []                     # nothing becomes visible before then
        ready: List[DynamicInstruction] = []
        searched = 0
        domain_name = self.domain_name
        registers = regfile._registers
        fwd_cache = self._fwd_cache
        pass_complete = True
        min_future = _INF
        for instr in self._ready:
            searched += 1
            wakeup_after = instr.wakeup_after
            if wakeup_after > now:
                if wakeup_after < min_future:
                    min_future = wakeup_after
                continue                  # visibility time known, still ahead
            if wakeup_after < 0.0:
                # first examination since the last producer wrote back:
                # price the cross-domain visibility of every operand
                visible_at = 0.0
                for phys in instr.phys_sources:
                    reg = registers[phys]
                    source_visible = reg.ready_time
                    producer_domain = reg.producer_domain
                    if producer_domain and producer_domain != domain_name:
                        extra = fwd_cache.get(producer_domain)
                        if extra is None:
                            extra = forwarding_latency(producer_domain,
                                                       domain_name)
                            fwd_cache[producer_domain] = extra
                        source_visible += extra
                    if source_visible > visible_at:
                        visible_at = source_visible
                instr.wakeup_after = visible_at
                if visible_at > now:
                    if visible_at < min_future:
                        min_future = visible_at
                    continue
            ready.append(instr)
            if len(ready) >= limit:
                pass_complete = False     # tail not examined this pass
                break
        self.wakeup_searches += searched
        # The contract mirrors the scan gate: returned entries are expected
        # to issue (the caller removes them), so on a complete pass nothing
        # left can become visible before ``min_future``.
        self.ready_gate = min_future if pass_complete else -1.0
        return ready

    def remove(self, instr: DynamicInstruction) -> None:
        """Remove an instruction that has been issued."""
        self._entries.remove(instr)
        ready = self._ready
        if ready:
            try:
                ready.remove(instr)
            except ValueError:
                pass
        self.issues += 1
        self.gate_time = -1.0
        # clamp the covered-prefix length: it must never exceed the window
        if self.gate_len > len(self._entries):
            self.gate_len = len(self._entries)

    def squash_younger_than(self, branch_seq: int) -> List[DynamicInstruction]:
        """Drop wrong-path instructions after a misprediction.

        Under the event scheme the squashed entries also leave the ready
        list; waiter-list links are unlinked lazily (the producer's
        writeback skips squashed entries), which the recovery tests pin.
        """
        squashed = [i for i in self._entries if i.seq > branch_seq]
        if squashed:
            self._entries = [i for i in self._entries if i.seq <= branch_seq]
            if self._ready:
                self._ready = [i for i in self._ready
                               if i.seq <= branch_seq]
            for instr in squashed:
                instr.squashed = True
            self.gate_time = -1.0
            # clamp the covered prefix so a stale length can never outrun
            # the shrunken window (the gate itself is invalid already)
            if self.gate_len > len(self._entries):
                self.gate_len = len(self._entries)
        return squashed
