"""Tests for the clock-wheel fast path of the simulation engine.

The engine keeps periodic events on a clock wheel and one-shots on a heap;
``use_wheel=False`` forces everything through the generic heap (the seed
engine's behaviour).  These tests pin the contract between the two paths:
identical event order, identical timestamps, and correct handling of
cancellation, compaction and mixed periodic/one-shot schedules.
"""

import pytest

from repro.sim.engine import _COMPACT_THRESHOLD, SimulationEngine
from repro.sim.event import Event, SimulationError


def _record_script(engine):
    """Run a representative mixed schedule and return the observed log."""
    log = []

    def tick(name):
        return lambda _: log.append((name, round(engine.now, 9)))

    engine.schedule_periodic(0.13, 1.0, tick("a"))
    engine.schedule_periodic(0.77, 1.0, tick("b"))
    engine.schedule_periodic(0.40, 1.1, tick("c"))
    engine.schedule_periodic(0.91, 1.5, tick("d"))

    def one_shot(_):
        log.append(("one", round(engine.now, 9)))
        # schedule another one-shot from inside a callback
        engine.schedule(engine.now + 0.35, lambda _: log.append(("two", round(engine.now, 9))))

    engine.schedule(5.05, one_shot)
    engine.schedule(8.0, lambda _: engine.cancel_chain("no-such-chain"),
                    name="noop")
    engine.run(until=25.0)
    return log


def test_wheel_and_generic_paths_fire_identically():
    wheel_log = _record_script(SimulationEngine(use_wheel=True))
    generic_log = _record_script(SimulationEngine(use_wheel=False))
    assert wheel_log == generic_log
    assert len(wheel_log) > 60


def test_wheel_equal_period_rotation_matches_generic():
    """Five equal-period clocks (the GALS uniform plan shape)."""
    def script(engine):
        log = []
        for index, phase in enumerate((0.13, 0.77, 0.40, 0.91, 0.05)):
            engine.schedule_periodic(
                phase, 1.0, lambda _, i=index: log.append((i, engine.now)))
        engine.run(until=50.0)
        return log

    assert script(SimulationEngine(True)) == script(SimulationEngine(False))


def test_one_shot_interleaves_with_wheel():
    engine = SimulationEngine()
    log = []
    engine.schedule_periodic(0.5, 1.0, lambda _: log.append(("clk", engine.now)))
    engine.schedule(2.25, lambda _: log.append(("shot", engine.now)))
    engine.run(until=4.0)
    assert log == [("clk", 0.5), ("clk", 1.5), ("shot", 2.25),
                   ("clk", 2.5), ("clk", 3.5)]


def test_schedule_requires_callback():
    engine = SimulationEngine()
    with pytest.raises(SimulationError):
        engine.schedule(1.0, None)
    with pytest.raises(SimulationError):
        engine.schedule_periodic(0.0, 1.0, None)


def test_fire_without_callback_raises():
    event = Event(time=1.0)
    with pytest.raises(SimulationError):
        event.fire()


def test_pending_events_excludes_cancelled():
    engine = SimulationEngine()
    events = [engine.schedule(float(t + 1), lambda _: None) for t in range(10)]
    chain = engine.schedule_periodic(100.0, 1.0, lambda _: None)
    assert engine.pending_events == 11
    for event in events[:4]:
        event.cancel()
    assert engine.pending_events == 7
    chain.cancel()
    assert engine.pending_events == 6


def test_cancelled_heap_events_are_compacted():
    engine = SimulationEngine()
    events = [engine.schedule(float(t + 1), lambda _: None)
              for t in range(2 * _COMPACT_THRESHOLD)]
    queue_before = len(engine._queue)
    for event in events[: _COMPACT_THRESHOLD + 5]:
        event.cancel()
    # the compaction threshold was crossed: cancelled events were dropped
    assert len(engine._queue) < queue_before - _COMPACT_THRESHOLD
    assert engine.pending_events == _COMPACT_THRESHOLD - 5
    engine.run()
    assert engine.events_processed == _COMPACT_THRESHOLD - 5


def test_cancel_chain_from_wheel_and_heap():
    engine = SimulationEngine()
    count = []
    engine.schedule_periodic(0.0, 1.0, lambda _: count.append(1), name="clock:x")
    engine.schedule(5.5, lambda _: engine.cancel_chain("clock:x"))
    engine.run(until=20.0)
    assert len(count) == 6  # t = 0..5, as with the generic path


def test_cancelling_periodic_handle_stops_chain():
    engine = SimulationEngine()
    count = []
    handle = engine.schedule_periodic(0.0, 1.0, lambda _: count.append(1))

    def stopper(_):
        handle.cancel()

    engine.schedule(3.5, stopper)
    engine.run(until=10.0)
    assert len(count) == 4  # t = 0, 1, 2, 3


def test_drain_returns_wheel_and_heap_events_in_order():
    engine = SimulationEngine()
    engine.schedule_periodic(0.5, 1.0, lambda _: None, name="p")
    engine.schedule(0.25, lambda _: None, name="s")
    drained = list(engine.drain())
    assert [e.name for e in drained] == ["s", "p"]
    assert engine.pending_events == 0


def test_wide_phase_spread_keeps_event_order():
    """Equal periods but starts more than one period apart: the rotation
    fast path must not apply (it would fire events out of time order)."""
    def script(engine):
        log = []
        engine.schedule_periodic(0.0, 1.0, lambda _: log.append(("a", engine.now)))
        engine.schedule_periodic(5.0, 1.0, lambda _: log.append(("b", engine.now)))
        engine.run(until=7.0)
        return log

    wheel_log = script(SimulationEngine(True))
    assert wheel_log == script(SimulationEngine(False))
    times = [t for _, t in wheel_log]
    assert times == sorted(times)
    assert ("a", 4.0) in wheel_log and ("b", 7.0) in wheel_log


def test_cancel_plus_reschedule_from_callback():
    """cancel_chain + schedule_periodic inside a callback leaves the wheel
    size unchanged; the engine must still notice the membership change."""
    def script(engine):
        log = []

        def swap(_):
            if not any(name == "swap" for name, _ in log):
                engine.cancel_chain("victim")
                engine.schedule_periodic(engine.now + 0.25, 1.0,
                                         lambda _: log.append(("new", engine.now)))
                log.append(("swap", engine.now))

        engine.schedule_periodic(0.0, 1.0, lambda _: log.append(("keep", engine.now)))
        engine.schedule_periodic(0.5, 1.0, lambda _: log.append(("victim", engine.now)),
                                 name="victim")
        engine.schedule_periodic(0.75, 1.0, swap)
        engine.run(until=6.0)
        return log

    assert script(SimulationEngine(True)) == script(SimulationEngine(False))


def test_handle_cancel_after_first_fire_stops_chain_on_both_paths():
    def script(engine):
        count = []
        handle = engine.schedule_periodic(0.0, 1.0, lambda _: count.append(1))
        engine.run(until=3.5)       # fires t = 0..3
        handle.cancel()
        engine.run(until=10.0)
        return len(count)

    assert script(SimulationEngine(True)) == script(SimulationEngine(False)) == 4


def test_cancel_after_one_shot_fired_keeps_pending_count_accurate():
    engine = SimulationEngine()
    fired = engine.schedule(1.0, lambda _: None)
    engine.schedule(5.0, lambda _: None)
    engine.run(until=2.0)
    fired.cancel()                 # already fired: must not skew bookkeeping
    assert engine.pending_events == 1


def test_periodic_scheduled_mid_run_joins_wheel():
    engine = SimulationEngine()
    log = []

    def spawn(_):
        engine.schedule_periodic(engine.now + 0.25, 1.0,
                                 lambda _: log.append(("late", engine.now)))

    engine.schedule_periodic(0.0, 1.0, lambda _: log.append(("base", engine.now)))
    engine.schedule(2.1, spawn)
    engine.run(until=5.0)
    assert ("late", 2.35) in log
    assert log.count(("late", 4.35)) == 1
