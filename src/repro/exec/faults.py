"""Deterministic fault injection for the sweep fabric.

A :class:`FaultPlan` is a seeded, JSON-round-trippable description of
failures to inject at **named sites** instrumented throughout the
exec/store/serve stack.  Each :class:`FaultRule` names a site, an action
and the exact *hit indices* (per-process occurrence counts of that site) at
which it fires, so a chaos run misbehaves identically every time -- the
substrate of ``tools/chaos_smoke.py`` and ``tests/test_fault_injection.py``,
whose acceptance bar is that a sweep full of injected kills and torn writes
still produces byte-identical results.

Plans activate through the environment so *real worker subprocesses*
inherit them:

* ``REPRO_FAULT_PLAN`` -- the plan as inline JSON, or a path to a JSON file;
* ``REPRO_FAULT_ROLE`` -- this process's role (``main`` unless set;
  ``python -m repro.exec.worker`` declares itself ``worker``), matched
  against each rule's ``role`` filter so a plan can kill workers without
  touching the submitting parent;
* ``REPRO_FAULT_LOG`` -- optional append-only log file recording every
  fired fault (one JSON line each), uploadable as a CI artifact.

Instrumented sites (grep for ``inject(``):

========================  =====================================================
site                      fired
========================  =====================================================
``store.put``             before an entry write (``raise``/``torn``/``sleep``)
``store.get``             before an entry read (``sleep`` = slow filesystem)
``worker.enqueue``        before a job-file write (``torn`` = torn job file)
``worker.claimed``        right after a worker wins a claim (``exit`` = death
                          mid-claim, the SIGKILL shape)
``worker.heartbeat``      each heartbeat tick (``stall`` = skip the beat)
========================  =====================================================

Actions: ``raise`` raises :class:`OSError` (an infrastructure failure,
retried by the fabric), ``exit`` calls ``os._exit(137)`` (uncatchable,
leaves claims and queue files behind exactly like a powered-off host),
``sleep`` delays ``seconds``, and ``torn``/``stall`` are returned to the
instrumented caller, which implements the corruption/skip itself.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: Environment variable carrying the active plan (inline JSON or a path).
FAULT_PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

#: Environment variable naming this process's role (default ``main``).
FAULT_ROLE_ENV_VAR = "REPRO_FAULT_ROLE"

#: Environment variable naming the append-only fired-fault log file.
FAULT_LOG_ENV_VAR = "REPRO_FAULT_LOG"

#: The actions a rule may request.
ACTIONS = ("raise", "exit", "sleep", "torn", "stall")

#: Exit status used by the ``exit`` action (the SIGKILL convention).
EXIT_STATUS = 137


@dataclass(frozen=True)
class FaultRule:
    """One injection: fire ``action`` at ``site`` on the given hit indices.

    ``hits`` are 0-based per-process occurrence counts of the site (hit 0 is
    the first time this process reaches the site); ``role`` restricts the
    rule to processes whose :data:`FAULT_ROLE_ENV_VAR` matches (``None`` =
    any process); ``seconds`` parameterises ``sleep``; ``message`` becomes
    the raised error's text.
    """

    site: str
    action: str
    hits: Tuple[int, ...] = (0,)
    role: Optional[str] = None
    seconds: float = 0.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; "
                             f"known: {', '.join(ACTIONS)}")
        object.__setattr__(self, "hits", tuple(int(hit) for hit in self.hits))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (round-trips via :meth:`from_dict`)."""
        payload: Dict[str, Any] = {"site": self.site, "action": self.action,
                                   "hits": list(self.hits)}
        if self.role is not None:
            payload["role"] = self.role
        if self.seconds:
            payload["seconds"] = self.seconds
        if self.message != "injected fault":
            payload["message"] = self.message
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultRule":
        """Rebuild one rule from its :meth:`to_dict` payload."""
        return cls(site=payload["site"], action=payload["action"],
                   hits=tuple(payload.get("hits", (0,))),
                   role=payload.get("role"),
                   seconds=float(payload.get("seconds", 0.0)),
                   message=payload.get("message", "injected fault"))


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of :class:`FaultRule` injections (JSON-round-trippable).

    The ``seed`` identifies the storm (generators deriving random hit
    schedules hash it in) and rides along in the serialized plan so a chaos
    run's artifacts say exactly which storm produced them.
    """

    seed: int = 0
    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(
            rule if isinstance(rule, FaultRule) else FaultRule.from_dict(rule)
            for rule in self.rules))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation of the whole plan."""
        return {"seed": self.seed,
                "rules": [rule.to_dict() for rule in self.rules]}

    def to_json(self) -> str:
        """The plan as compact JSON (what :data:`FAULT_PLAN_ENV_VAR` holds)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan from its :meth:`to_dict` payload."""
        return cls(seed=int(payload.get("seed", 0)),
                   rules=tuple(FaultRule.from_dict(rule)
                               for rule in payload.get("rules", ())))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from JSON text."""
        return cls.from_dict(json.loads(text))


class _ActiveFaults:
    """One process's live injection state: plan + per-site hit counters."""

    def __init__(self, plan: FaultPlan, role: str) -> None:
        self.plan = plan
        self.role = role
        self._counters: Dict[str, int] = {}
        self._lock = threading.Lock()

    def fire(self, site: str) -> Optional[FaultRule]:
        """Advance ``site``'s hit counter; the matching rule (or None)."""
        with self._lock:
            hit = self._counters.get(site, 0)
            self._counters[site] = hit + 1
        for rule in self.plan.rules:
            if rule.site != site or hit not in rule.hits:
                continue
            if rule.role is not None and rule.role != self.role:
                continue
            return rule
        return None


#: (raw env value, parsed state) -- reparsed whenever the env text changes,
#: so tests can monkeypatch the variable without an explicit reload call.
_loaded: Tuple[Optional[str], Optional[_ActiveFaults]] = (None, None)
_load_lock = threading.Lock()


def _parse_env_value(raw: str) -> FaultPlan:
    """Parse the env payload: inline JSON first, else a path to a file."""
    text = raw.strip()
    if not text.startswith("{"):
        text = open(text).read()
    return FaultPlan.from_json(text)


def current_role() -> str:
    """This process's fault role (:data:`FAULT_ROLE_ENV_VAR`, or ``main``)."""
    return os.environ.get(FAULT_ROLE_ENV_VAR, "main")


def set_role(role: str) -> None:
    """Declare this process's role (also exported to child processes)."""
    global _loaded
    os.environ[FAULT_ROLE_ENV_VAR] = role
    with _load_lock:
        _loaded = (None, None)  # force role re-resolution on the next fire


def active_plan() -> Optional[_ActiveFaults]:
    """The process's live injection state, or None when no plan is set.

    The state (and its hit counters) persists while the environment value is
    unchanged; editing/unsetting :data:`FAULT_PLAN_ENV_VAR` resets it.
    """
    global _loaded
    raw = os.environ.get(FAULT_PLAN_ENV_VAR)
    with _load_lock:
        cached_raw, cached_state = _loaded
        if raw == cached_raw:
            return cached_state
        if raw is None:
            state = None
        else:
            try:
                state = _ActiveFaults(_parse_env_value(raw), current_role())
            except (OSError, ValueError, KeyError, TypeError):
                state = None  # unreadable plan: inject nothing
        _loaded = (raw, state)
        return state


def _log_fired(site: str, rule: FaultRule) -> None:
    """Append one fired-fault record to the log file (when configured)."""
    path = os.environ.get(FAULT_LOG_ENV_VAR)
    if not path:
        return
    record = {"time": time.strftime("%Y-%m-%dT%H:%M:%S"), "pid": os.getpid(),
              "role": current_role(), "site": site, "action": rule.action}
    try:
        with open(path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    except OSError:  # pragma: no cover - logging must never mask the fault
        pass


def inject(site: str) -> Optional[FaultRule]:
    """Fire the active plan at ``site``; the instrumented-code entry point.

    Performs ``raise``/``exit``/``sleep`` itself; ``torn``/``stall`` rules
    are *returned* for the caller to implement (corrupt its write, skip its
    heartbeat).  Returns None when no rule fires -- the overwhelmingly
    common case costs one ``os.environ`` probe.
    """
    state = active_plan()
    if state is None:
        return None
    rule = state.fire(site)
    if rule is None:
        return None
    _log_fired(site, rule)
    if rule.action == "raise":
        raise OSError(f"{rule.message} [site {site}]")
    if rule.action == "exit":
        os._exit(EXIT_STATUS)
    if rule.action == "sleep":
        time.sleep(rule.seconds)
        return None
    return rule  # torn / stall: caller-implemented
