#!/usr/bin/env python3
"""Multiple-clock / multiple-voltage exploration (paper Section 5.2).

For a chosen benchmark this example:

1. runs the paper's named DVFS policies (generic, perl/gcc cases) as
   declarative scenarios,
2. derives an *application-driven* policy from the benchmark's profile using
   :func:`repro.core.recommend_policy` (the paper's "study the application's
   characteristics" guidance), registers it, and runs it the same way, and
3. compares everything against the voltage-scaled synchronous "ideal".

Usage::

    python examples/dvfs_exploration.py [benchmark] [instructions]

The registered policies are visible from the command line::

    python -m repro list policies
    python -m repro run gals5 --workload gcc --policy generic
"""

import sys

from repro.analysis import dvfs_table
from repro.core import (POLICIES, get_policy, recommend_policy,
                        register_policy, selective_slowdown)
from repro.workloads import get_profile


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 1500

    profile = get_profile(benchmark)
    print(f"Benchmark '{benchmark}': {profile.description}")
    print(f"  branches: {profile.branches_per_instruction:.1%} of instructions, "
          f"FP: {profile.fp_fraction:.1%}, "
          f"memory: {profile.load_fraction + profile.store_fraction:.1%}")
    print()

    # Derive an application-driven policy and add it to the registry so it is
    # addressable by name, exactly like the paper's built-in policies.
    recommended = recommend_policy(profile)
    if recommended.name not in POLICIES:
        register_policy(recommended)

    policy_names = ["generic", "perl-fp3", "gals-1", recommended.name]
    results = []
    for name in policy_names:
        policy = get_policy(name)
        print(f"running policy '{policy.name}': {policy.description}")
        voltages = policy.voltages()
        for domain, vdd in sorted(voltages.items()):
            print(f"    {domain:8s} slowdown {policy.slowdowns[domain]:.2f} "
                  f"-> Vdd {vdd:.3f} V")
        results.append(selective_slowdown(benchmark, policy,
                                          num_instructions=instructions))
    print()
    print("=== normalised to the fully synchronous base processor ===")
    print(dvfs_table(results))
    print()
    best = min(results, key=lambda r: r.relative_energy)
    print(f"lowest-energy policy for {benchmark}: '{best.policy}' "
          f"(energy {best.relative_energy:.3f} at performance "
          f"{best.relative_performance:.3f}; ideal synchronous reference "
          f"{best.ideal_energy:.3f})")


if __name__ == "__main__":
    main()
