"""Phase-structured trace generation: workloads that change regime mid-run.

The paper's evaluation (and this repo's golden scenarios) use *stationary*
workload mixes -- one behaviour profile per run.  Online DVFS controllers,
however, only earn their keep when the workload changes regime while the
machine is running.  :class:`PhasedWorkload` composes the existing
profile-driven synthetic generators (:mod:`repro.workloads.synthetic`) and
assembled kernels (:mod:`repro.workloads.kernels`) into multi-phase traces
under three schedule kinds, named by a :class:`~repro.workloads.profiles.PhasedMix`:

* ``static`` -- each segment runs once, in order, splitting the instruction
  budget by the mix's weights;
* ``oscillating`` -- segments alternate every ``period`` instructions;
* ``hotset`` -- one base segment whose data working set is rescaled every
  ``period`` instructions, so the hot set drifts while the instruction mix
  stays put.

Everything is deterministic per ``(mix, seed, kernel_size)``: the phase plan
is pure arithmetic over the instruction budget, and each phase's instructions
come from a *fresh* per-phase generator seeded by :meth:`PhasedWorkload.phase_seed`,
so a phase's records equal exactly what its segment generator would produce
standalone (the composition property the test suite pins).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from ..isa.trace import ListTraceSource, TraceInstruction
from .kernels import KERNELS
from .profiles import (PHASE_HOTSET, PHASE_OSCILLATING, PHASE_STATIC,
                       PhasedMix, get_profile)
from .synthetic import SyntheticWorkload


@dataclass(frozen=True)
class PhasePlacement:
    """One phase of a planned phased trace: which segment runs where."""

    #: position of this phase in the schedule (0-based)
    index: int
    #: base workload supplying the phase ("gcc", "kernel:dot_product", ...)
    segment: str
    #: global index of the phase's first instruction
    start: int
    #: number of instructions in the phase
    length: int
    #: working-set multiplier applied to the segment profile (hotset mixes)
    working_set_scale: float = 1.0

    @property
    def end(self) -> int:
        """Global index one past the phase's last instruction."""
        return self.start + self.length


class PhasedWorkload:
    """Deterministic multi-phase workload assembled from a named mix."""

    def __init__(self, mix: PhasedMix, seed: int = 1,
                 kernel_size: int = 64) -> None:
        self.mix = mix
        self.seed = seed
        self.kernel_size = kernel_size
        self.name = f"phased:{mix.name}"
        self._wrong_path_delegate: Optional[SyntheticWorkload] = None

    # ------------------------------------------------------------- schedule
    def phase_seed(self, index: int) -> int:
        """Seed for phase ``index``'s segment generator.

        A pure function of ``(self.seed, index)`` so that every rebuild --
        serial, spawn-pool worker, or store round-trip -- draws identical
        per-phase instruction streams, and so tests can reproduce one phase
        standalone through its segment generator.
        """
        return self.seed * 1_000_003 + index * 8191

    def plan(self, num_instructions: int) -> Tuple[PhasePlacement, ...]:
        """The phase schedule for a run of ``num_instructions``.

        Pure arithmetic over the budget: static mixes split it by weight,
        oscillating and hotset mixes cut it into ``period``-long phases (the
        last phase absorbs any remainder).  Zero-length phases are dropped.
        """
        if num_instructions <= 0:
            raise ValueError("num_instructions must be positive")
        mix = self.mix
        placements: List[PhasePlacement] = []
        if mix.kind == PHASE_STATIC:
            weights = mix.weights or (1.0,) * len(mix.segments)
            total_weight = sum(weights)
            start = 0
            running = 0.0
            for i, (segment, weight) in enumerate(zip(mix.segments, weights)):
                running += weight
                end = round(num_instructions * running / total_weight)
                if end > start:
                    placements.append(PhasePlacement(
                        index=len(placements), segment=segment,
                        start=start, length=end - start))
                start = end
            return tuple(placements)
        # oscillating / hotset: fixed-cadence phases
        start = 0
        while start < num_instructions:
            length = min(mix.period, num_instructions - start)
            i = len(placements)
            if mix.kind == PHASE_OSCILLATING:
                segment = mix.segments[i % len(mix.segments)]
                scale = 1.0
            else:  # PHASE_HOTSET
                segment = mix.segments[i % len(mix.segments)]
                scale = mix.hot_scales[i % len(mix.hot_scales)]
            placements.append(PhasePlacement(
                index=i, segment=segment, start=start, length=length,
                working_set_scale=scale))
            start += length
        return tuple(placements)

    # ----------------------------------------------------------- generation
    def segment_workload(self, placement: PhasePlacement
                         ) -> Optional[SyntheticWorkload]:
        """The synthetic generator for one phase (None for kernel phases)."""
        if placement.segment.startswith("kernel:"):
            return None
        profile = get_profile(placement.segment)
        if placement.working_set_scale != 1.0:
            scaled = max(1, round(profile.working_set_kb
                                  * placement.working_set_scale))
            profile = replace(profile, working_set_kb=scaled)
        return SyntheticWorkload(profile, seed=self.phase_seed(placement.index))

    def _segment_records(self, placement: PhasePlacement
                         ) -> List[TraceInstruction]:
        workload = self.segment_workload(placement)
        if workload is not None:
            if self._wrong_path_delegate is None:
                self._wrong_path_delegate = workload
            return list(workload.trace(placement.length))
        # Kernel phase: the assembled program is deterministic and typically
        # shorter than the phase, so tile copies of its dynamic trace until
        # the phase budget is filled (copies, because concatenation re-indexes
        # the records in place).
        kernel = KERNELS[placement.segment[len("kernel:"):]]
        base = list(kernel.trace(self.kernel_size))
        records: List[TraceInstruction] = []
        while len(records) < placement.length:
            for instr in base:
                if len(records) >= placement.length:
                    break
                records.append(replace(instr))
        return records

    def trace(self, num_instructions: int) -> ListTraceSource:
        """Generate the phased correct-path trace.

        Unlike :meth:`SyntheticWorkload.trace` this is a *pure* function of
        ``(mix, seed, kernel_size, num_instructions)``: repeated calls return
        identical records because every phase rebuilds its segment generator
        from :meth:`phase_seed` rather than advancing shared RNG state.
        """
        instructions: List[TraceInstruction] = []
        for placement in self.plan(num_instructions):
            instructions.extend(self._segment_records(placement))
        for index, instr in enumerate(instructions):
            instr.index = index
        return ListTraceSource(instructions, name=self.name)

    def wrong_path_source(self) -> Optional[SyntheticWorkload]:
        """The generator whose wrong-path model the fetch unit should use.

        The first profile-driven phase's generator (wrong-path synthesis is a
        pure function of the fetch pc, so one delegate serves the whole run);
        None when every phase is a kernel, matching plain kernel workloads.
        """
        if self._wrong_path_delegate is None:
            for placement in self.plan(max(1, self.mix.period)):
                workload = self.segment_workload(placement)
                if workload is not None:
                    self._wrong_path_delegate = workload
                    break
        return self._wrong_path_delegate

    # -------------------------------------------------------------- display
    def describe_schedule(self, num_instructions: int) -> str:
        """Human-readable phase schedule (used by ``repro show``)."""
        lines = [f"phased workload {self.mix.name!r} ({self.mix.kind}), "
                 f"{num_instructions} instructions:"]
        for p in self.plan(num_instructions):
            scale = ("" if p.working_set_scale == 1.0
                     else f"  ws x{p.working_set_scale:g}")
            lines.append(f"  phase {p.index:>2}  [{p.start:>6}, {p.end:>6})  "
                         f"{p.segment}{scale}")
        return "\n".join(lines)
