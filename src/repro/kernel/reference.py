"""Pure-Python reference implementation of the engine hot-core kernel.

This module is the single source of truth for the simulation hot core: the
clock-wheel run loop (extracted from :meth:`SimulationEngine.run`), the
specialised clock-edge ticks (extracted from :meth:`ClockDomain.bind`), the
mixed-clock FIFO synchronizer edge mapping, and the event-wakeup waiter walk
(extracted from the execution unit's inlined writeback).  It is written in a
deliberately compile-friendly subset of Python -- explicit state objects with
``__slots__`` instead of closures, flat locals, typed attribute access, no
dynamic dispatch -- so the very same file can be ahead-of-time compiled (via
mypyc or Cython, see ``tools/build_kernel.py``) into the optional
``repro.kernel._ckernel`` extension; a hand-written C translation of this
module ships alongside as the fallback when neither compiler is installed.

Behavioural contract: every function here is **bit-identical** to the inline
code it replaced, and the compiled backend is bit-identical to this module
(the differential suite in ``tests/test_kernel_backends.py`` pins both).

The module intentionally imports nothing from the rest of the package: it is
a leaf, importable from ``sim.clock`` / ``async_comm.fifo`` without cycles,
and self-contained for standalone compilation.  Chain records are the
9-element lists documented in :mod:`repro.sim.event` (indices used literally
here for speed: 0=time, 1=priority, 2=seq, 3=callback, 4=param, 5=period,
8=cancelled).
"""

#: Kernel ABI version.  A compiled ``_ckernel`` artifact is only used when it
#: exports the same number, so a stale build from an older checkout degrades
#: gracefully to this reference instead of silently diverging.
KERNEL_API_VERSION = 1


# --------------------------------------------------------------- run loop
def run_wheel(engine, horizon, until, stop_condition, max_events, processed):
    """Run one clock-wheel segment: periodic chains only, no pending one-shots.

    Extracted verbatim (in behaviour) from the wheel fast path of
    :meth:`repro.sim.engine.SimulationEngine.run`.  The caller guarantees the
    wheel is non-empty and the generic heap is empty on entry.  The segment
    ends when a one-shot is scheduled, the wheel membership changes, a
    cancelled chain is discarded, a stop is requested, the horizon is passed,
    the stop condition fires, or the event budget is exhausted.

    Returns ``(finished, processed)``: ``finished`` is True when ``run()``
    should return immediately (horizon / stop condition / event budget), False
    when the outer loop should re-examine the queues; ``processed`` is the
    updated per-call event count (only meaningful under ``max_events`` /
    ``stop_condition``).

    Engine state is exchanged through the mutable cells the engine exposes for
    exactly this purpose (``_stop``, ``_events``, ``_current``,
    ``_wheel_state``) so a compiled implementation needs no Python attribute
    writes on the per-event path except the ``_now`` timestamp, which stays a
    plain attribute because pipeline closures read ``engine._now`` directly.
    """
    queue = engine._queue
    wheel = engine._wheel
    stop = engine._stop
    events_cell = engine._events
    current_cell = engine._current
    version_cell = engine._wheel_state
    next_seq = engine._sequence.__next__
    discard_chain = engine._discard_chain
    events_done = events_cell[0]
    event_limit = float("inf") if max_events is None else max_events

    # Equal-period wheels (the uniform GALS plan and the synchronous machine)
    # fire in a fixed rotation: float rounding is monotonic, so per-chain
    # `time += period` never reorders chains, and exact-tie breaking by seq
    # agrees with the rotation because the chain that fired first also drew
    # its fresh seq first.  One hyperperiod is simply one pass over the
    # sorted chains, so the merged edge schedule needs no priority queue at
    # all.  The rotation is only valid while the next-edge times span less
    # than one period (guaranteed to persist once true); chains started more
    # than a period apart, and unequal periods, fall back to a min() over
    # the handful of chains.
    rotation = None
    period = wheel[0][5]
    priority = wheel[0][1]
    for chain in wheel:
        if chain[5] != period or chain[1] != priority:
            break
    else:
        rotation = sorted(wheel)
        if rotation[-1][0] - rotation[0][0] >= period:
            rotation = None
    index = 0
    wheel_size = len(wheel)
    wheel_version = version_cell[0]

    if stop_condition is None and max_events is None:
        # Leanest variant (every full processor run): no per-edge
        # stop-condition or event-budget checks -- the pipeline stops the
        # engine via stop().
        while not stop[0]:
            if rotation is not None:
                chain = rotation[index]
                index += 1
                if index == wheel_size:
                    index = 0
            else:
                chain = min(wheel)
            if chain[8]:            # CHAIN_CANCELLED
                discard_chain(chain)
                break
            time = chain[0]         # CHAIN_TIME
            if time > horizon:
                engine._now = until
                if events_done > events_cell[0]:
                    events_cell[0] = events_done
                return True, processed
            engine._now = time
            current_cell[0] = chain
            # callbacks observe the pre-event count, exactly as on the
            # generic path
            events_cell[0] = events_done
            chain[3](chain[4])      # CHAIN_CALLBACK(CHAIN_PARAM)
            current_cell[0] = None
            events_done += 1
            if chain[8]:
                discard_chain(chain)
                break
            chain[2] = next_seq()       # CHAIN_SEQ
            chain[0] = time + chain[5]  # CHAIN_TIME += CHAIN_PERIOD
            if queue or version_cell[0] != wheel_version:
                break   # one-shots scheduled / chains changed
        events_cell[0] = events_done
        return False, processed

    while not stop[0]:
        if rotation is not None:
            chain = rotation[index]
            index += 1
            if index == wheel_size:
                index = 0
        else:
            chain = min(wheel)
        if chain[8]:                # CHAIN_CANCELLED
            discard_chain(chain)
            break
        time = chain[0]             # CHAIN_TIME
        if time > horizon:
            engine._now = until
            if events_done > events_cell[0]:
                events_cell[0] = events_done
            return True, processed
        engine._now = time
        current_cell[0] = chain
        # callbacks observe the pre-event count, exactly as on the generic
        # path (step() increments after fire)
        events_cell[0] = events_done
        chain[3](chain[4])          # CHAIN_CALLBACK(CHAIN_PARAM)
        current_cell[0] = None
        events_done += 1
        if chain[8]:
            discard_chain(chain)
            break
        chain[2] = next_seq()       # CHAIN_SEQ
        chain[0] = time + chain[5]  # CHAIN_TIME += CHAIN_PERIOD
        processed += 1
        if stop_condition is not None:
            events_cell[0] = events_done
            if stop_condition():
                return True, processed
        if processed >= event_limit:
            if events_done > events_cell[0]:
                events_cell[0] = events_done
            return True, processed
        if queue or version_cell[0] != wheel_version:
            break   # one-shots scheduled / chains changed
    events_cell[0] = events_done
    return False, processed


# ------------------------------------------------------------ event wakeup
def wake_waiters(waiters):
    """Writeback waiter walk for the event wakeup scheme.

    ``waiters`` is a physical register's waiter list: every issue-queue entry
    blocked on that value.  Each live waiter's pending-operand count drops by
    one; entries whose last pending producer this was join their queue's
    age-ordered ready list.  Squashed waiters are dropped lazily.  The list
    is cleared afterwards (the register's value is now produced).
    """
    for waiter in waiters:
        if not waiter.squashed and waiter.pending_ops:
            pending = waiter.pending_ops - 1
            waiter.pending_ops = pending
            if pending == 0:
                queue = waiter.wakeup_queue
                if queue is not None:
                    queue.push_ready(waiter)
    waiters.clear()


# ---------------------------------------------------- synchronizer mapping
def sync_visible_at(time, phase, period, latency):
    """Visibility time of a flag raised at ``time`` under a capturing clock.

    This is the mixed-clock FIFO synchronizer edge mapping (inlined on the
    FIFO fast paths, shared here so the compiled backend and the differential
    tests pin the exact arithmetic): the flag is captured by the first rising
    edge of the ``(phase, period)`` clock *strictly after* ``time`` and
    becomes observable ``latency`` (= sync depth x period) later.  Times
    before ``phase`` -- a clock that has not started, or a retimed clock's
    anchor in the future -- are captured by the first edge at ``phase``.
    """
    if time < phase:
        first_edge = phase
    else:
        first_edge = phase + (int((time - phase) / period) + 1) * period
    return first_edge + latency


# -------------------------------------------------------------- edge ticks
class SingleEdgeTick:
    """Rising-edge tick for a domain with one callback and no power probe.

    The explicit-state-object form of the closure previously built inline by
    :meth:`ClockDomain.bind`: per edge it reads the engine clock, ticks the
    single component, and advances the domain's cycle counter.
    """

    __slots__ = ("domain", "engine", "callback")

    def __init__(self, domain, engine, callback):
        self.domain = domain
        self.engine = engine
        self.callback = callback

    def __call__(self, _param):
        """One rising edge: tick the single component, count the cycle."""
        domain = self.domain
        time = self.engine._now
        cycle = domain.cycle
        self.callback(cycle, time)
        domain.cycle = cycle + 1


class MultiEdgeTick:
    """Rising-edge tick for a multi-callback (or empty) domain, no probe.

    ``callbacks`` is the domain's in-place-mutable callback list, so
    post-bind component registration keeps working exactly as it did with the
    closure form.
    """

    __slots__ = ("domain", "engine", "callbacks")

    def __init__(self, domain, engine, callbacks):
        self.domain = domain
        self.engine = engine
        self.callbacks = callbacks

    def __call__(self, _param):
        """One rising edge: tick every component and hook, count the cycle."""
        domain = self.domain
        time = self.engine._now
        cycle = domain.cycle
        for callback in self.callbacks:
            callback(cycle, time)
        domain.cycle = cycle + 1


class ProbedSingleEdgeTick:
    """Single-callback edge tick with the deferred power probe fused in.

    A quiescent edge (no gated cell has pending activity and the voltage
    matches the open accounting run) is a single run-counter increment with
    no Python call -- the same fast path the closure form had.
    """

    __slots__ = ("domain", "engine", "callback", "gated_cells", "state",
                 "active_edge")

    def __init__(self, domain, engine, callback, probe):
        self.domain = domain
        self.engine = engine
        self.callback = callback
        self.gated_cells, self.state, self.active_edge = probe

    def __call__(self, _param):
        """One rising edge: tick the component, account the edge, count the cycle."""
        domain = self.domain
        time = self.engine._now
        cycle = domain.cycle
        self.callback(cycle, time)
        domain.last_edge_time = time
        state = self.state
        if domain.voltage == state[0]:
            for cell in self.gated_cells:
                if cell[0]:
                    self.active_edge()
                    break
            else:
                state[1] += 1
        else:
            self.active_edge()
        domain.cycle = cycle + 1


class ProbedMultiEdgeTick:
    """Multi-callback edge tick with the deferred power probe fused in."""

    __slots__ = ("domain", "engine", "callbacks", "gated_cells", "state",
                 "active_edge")

    def __init__(self, domain, engine, callbacks, probe):
        self.domain = domain
        self.engine = engine
        self.callbacks = callbacks
        self.gated_cells, self.state, self.active_edge = probe

    def __call__(self, _param):
        """One rising edge: tick every component, account the edge, count the cycle."""
        domain = self.domain
        time = self.engine._now
        cycle = domain.cycle
        for callback in self.callbacks:
            callback(cycle, time)
        domain.last_edge_time = time
        state = self.state
        if domain.voltage == state[0]:
            for cell in self.gated_cells:
                if cell[0]:
                    self.active_edge()
                    break
            else:
                state[1] += 1
        else:
            self.active_edge()
        domain.cycle = cycle + 1
