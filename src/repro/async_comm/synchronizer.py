"""Synchronizer latency model.

Signals crossing between two unrelated clock domains must pass through a
brute-force synchronizer (a chain of flip-flops clocked by the receiving
domain) to keep the probability of metastability-induced failure negligible
(paper Section 3, referencing Rabaey).  The architectural consequence the
paper models is *latency*: a flag or data word produced in one domain becomes
observable in the other domain only a couple of receiving-domain cycles later.

:class:`Synchronizer` converts a production time in the sending domain into
the earliest observation time in the receiving domain.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.clock import Clock


@dataclass
class Synchronizer:
    """A ``depth``-stage flip-flop synchronizer into ``receiving_clock``.

    ``depth`` = 2 is the customary two-flop synchronizer; the Chelcea/Nowick
    FIFO effectively hides part of this latency in the steady state, which can
    be modelled by reducing ``depth`` to 1 for the data path.
    """

    receiving_clock: Clock
    depth: int = 2

    def __post_init__(self) -> None:
        if self.depth < 0:
            raise ValueError("synchronizer depth must be non-negative")

    def latency(self) -> float:
        """Worst-case latency added by the synchronizer, in nanoseconds."""
        return self.depth * self.receiving_clock.period

    def observable_at(self, produced_at: float) -> float:
        """Earliest time the receiving domain can act on a signal.

        The signal is captured by the first receiving-domain edge strictly
        after ``produced_at`` and must then ride through ``depth`` flops, so it
        is usable ``depth`` receiving cycles after that capturing edge.
        """
        clock = self.receiving_clock
        if produced_at < clock.phase:
            first_edge = clock.phase
        else:
            elapsed = produced_at - clock.phase
            cycles = int(elapsed / clock.period)
            first_edge = clock.phase + (cycles + 1) * clock.period
            # A signal arriving exactly on an edge misses it (setup time).
        return first_edge + self.depth * clock.period


def synchronization_failure_probability(
    clock_frequency_ghz: float,
    data_rate_ghz: float,
    resolution_time_ns: float,
    time_constant_ns: float = 0.010,
) -> float:
    """Mean-time-between-failures style metastability estimate.

    The paper explicitly does *not* model synchronization failures because
    their probability is "minuscule (but non-zero)"; this helper exists so the
    claim can be checked quantitatively.  It returns the probability that any
    given synchronization attempt fails to resolve within
    ``resolution_time_ns`` using the standard exponential model
    ``P = f_clk * f_data * T_w * exp(-t_r / tau)`` normalised per attempt.
    """
    import math

    if resolution_time_ns < 0:
        raise ValueError("resolution time must be non-negative")
    window_ns = 0.001  # aperture window, ~1 ps for a modern flop
    per_second_rate = (clock_frequency_ghz * 1e9) * (data_rate_ghz * 1e9) * (window_ns * 1e-9)
    failures_per_second = per_second_rate * math.exp(-resolution_time_ns / time_constant_ns)
    attempts_per_second = data_rate_ghz * 1e9
    if attempts_per_second == 0:
        return 0.0
    return min(1.0, failures_per_second / attempts_per_second)
