"""Store-coordinated sweep worker: ``python -m repro.exec.worker``.

One worker process drains the job queue of a results store: it scans
``<store root>/queue/`` for job files (one canonical scenario JSON each,
written by :class:`~repro.exec.backends.SubprocessBackend` or by hand),
claims individual jobs via the store's atomic claim files, runs the claimed
scenario through the single :func:`~repro.core.scenario.run_scenario` path
and publishes the result with the store's atomic ``put()``.  Because the
*only* coordination substrate is the store directory, any number of workers
-- on this machine or on other hosts sharing the filesystem -- can drain the
same queue without double-computing or torn writes.

A job that raises is recorded as a ``<key>.err`` marker (with the
traceback) instead of looping forever; the submitting parent falls back to
computing such jobs in-process, which re-raises the real exception with
full context.

Usage::

    python -m repro.exec.worker --store /path/to/store [--exit-when-idle]
"""

from __future__ import annotations

import argparse
import json
import os
import time
import traceback
from pathlib import Path
from typing import List, Optional

from ..core.scenario import Scenario
from ..results.store import ResultsStore

#: Queue directory name under the store root.
QUEUE_DIR = "queue"

#: Consecutive empty queue scans before an ``--exit-when-idle`` worker exits.
IDLE_SCANS = 3


def queue_dir(store: ResultsStore) -> Path:
    """The store's job-queue directory."""
    return store.root / QUEUE_DIR


def job_path(store: ResultsStore, key: str) -> Path:
    """Queue-file path of one job (keyed like the result it will produce)."""
    return queue_dir(store) / f"{key}.json"


def error_path(store: ResultsStore, key: str) -> Path:
    """Failure-marker path of one job (holds the worker's traceback)."""
    return queue_dir(store) / f"{key}.err"


def enqueue_job(store: ResultsStore, scenario: Scenario,
                key: Optional[str] = None) -> str:
    """Write one job file atomically (idempotent per key); returns the key."""
    if key is None:
        key = store.key_for(scenario)
    path = job_path(store, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    temporary = path.with_suffix(f".tmp.{os.getpid()}")
    temporary.write_text(json.dumps(
        {"key": key, "scenario": scenario.to_dict()}, indent=1))
    os.replace(temporary, path)
    # a fresh submission supersedes any stale failure marker for the key
    withdraw_error(store, key)
    return key


def withdraw_job(store: ResultsStore, key: str) -> None:
    """Remove one job file (no-op when a worker already consumed it)."""
    try:
        job_path(store, key).unlink()
    except FileNotFoundError:
        pass


def withdraw_error(store: ResultsStore, key: str) -> None:
    """Remove one failure marker (no-op when absent)."""
    try:
        error_path(store, key).unlink()
    except FileNotFoundError:
        pass


def pending_jobs(store: ResultsStore) -> List[Path]:
    """Job files currently queued, oldest key first (stable across workers)."""
    directory = queue_dir(store)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))


def _load_job(path: Path) -> Optional[Scenario]:
    """Parse one job file; None when it is torn/foreign (skip it)."""
    try:
        payload = json.loads(path.read_text())
        return Scenario.from_dict(payload["scenario"])
    except (OSError, ValueError, KeyError, TypeError):
        return None


def run_one(store: ResultsStore, owner: str = "") -> bool:
    """Claim and run at most one queued job; True when one was processed.

    Processing means: the job was claimed, computed (or found already
    published) and its queue file removed -- or it failed and a ``.err``
    marker was written.  False means nothing was claimable this scan (queue
    empty, or every remaining job is claimed by another worker).
    """
    from .backends import timed_run_scenario
    for path in pending_jobs(store):
        key = path.stem
        if store.entry_path(key).exists():
            # someone already published this job's result
            withdraw_job(store, key)
            continue
        if not store.try_claim(key, owner=owner):
            continue
        try:
            if store.entry_path(key).exists():
                # published between the scan and the claim
                withdraw_job(store, key)
                return True
            scenario = _load_job(path)
            if scenario is None:
                withdraw_job(store, key)
                return True
            try:
                outcome, seconds = timed_run_scenario(scenario)
            except Exception:
                error_path(store, key).write_text(traceback.format_exc())
                withdraw_job(store, key)
                return True
            store.put(outcome, wall_seconds=seconds)
            withdraw_job(store, key)
            return True
        finally:
            store.release_claim(key)
    return False


def drain(store: ResultsStore, poll_interval: float = 0.05,
          exit_when_idle: bool = False, owner: str = "") -> int:
    """Worker main loop; returns the number of jobs this worker processed.

    With ``exit_when_idle`` the loop ends after :data:`IDLE_SCANS`
    consecutive scans that found nothing claimable (the parent-driven
    sweep shape); without it the worker serves the queue indefinitely (the
    standing multi-host worker shape).
    """
    processed = 0
    idle_scans = 0
    while True:
        if run_one(store, owner=owner):
            processed += 1
            idle_scans = 0
            continue
        idle_scans += 1
        if exit_when_idle and idle_scans >= IDLE_SCANS:
            return processed
        time.sleep(poll_interval)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point of one worker process."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec.worker",
        description="Drain a results store's sweep-job queue (claim jobs "
                    "via atomic claim files, publish results atomically).")
    parser.add_argument("--store", required=True, metavar="PATH",
                        help="results-store root shared with the submitter")
    parser.add_argument("--poll-interval", type=float, default=0.05,
                        metavar="SECONDS",
                        help="sleep between empty queue scans (default 0.05)")
    parser.add_argument("--exit-when-idle", action="store_true",
                        help="exit after the queue stays empty for a few "
                             "scans instead of serving forever")
    args = parser.parse_args(argv)
    store = ResultsStore(root=args.store)
    owner = f"{os.uname().nodename}:{os.getpid()}" if hasattr(os, "uname") \
        else str(os.getpid())
    processed = drain(store, poll_interval=args.poll_interval,
                      exit_when_idle=args.exit_when_idle, owner=owner)
    return 0 if processed >= 0 else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
