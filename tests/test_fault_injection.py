"""Tests for the fault-tolerant sweep fabric (:mod:`repro.exec.faults`).

Covers the deterministic fault-injection harness itself (plan round-trips,
exact hit schedules, role filtering), every failure mode it drives --
injected ``OSError`` retries, torn entry writes caught by the store
checksum, poison-job quarantine, claim-lease expiry -- and the headline
crash-recovery contract: a real worker subprocess killed mid-claim (via the
plan's ``exit`` action) never wedges the sweep, because the next worker
breaks the expired lease and recomputes bit-identically.
"""

import json
import os
import subprocess
import sys
import time
from dataclasses import replace

import pytest

from repro.cli import main as cli_main
from repro.core.scenario import get_scenario
from repro.exec import faults, worker
from repro.exec.backends import _worker_environment, is_infrastructure_error
from repro.exec.faults import (FAULT_PLAN_ENV_VAR, FAULT_ROLE_ENV_VAR,
                               FaultPlan, FaultRule, inject)
from repro.results import ResultsStore, resume_sweep, run_cached
from repro.results.store import CLAIM_TTL_ENV_VAR, payload_checksum
from repro.serve import ResultsService, request_json, scenario_query_url
from repro.workloads.registry import (WORKLOAD_SYNTHETIC, WORKLOADS,
                                      WorkloadEntry)

SMALL = 150


@pytest.fixture
def store(tmp_path):
    return ResultsStore(root=tmp_path / "cache")


@pytest.fixture
def scenario():
    return replace(get_scenario("base"), num_instructions=SMALL)


def _activate(monkeypatch, plan: FaultPlan) -> None:
    """Activate ``plan`` in this process for the duration of one test."""
    monkeypatch.setenv(FAULT_PLAN_ENV_VAR, plan.to_json())


def _raising_factory(num_instructions, seed, kernel_size):
    raise ValueError("synthetic workload failure")


# ------------------------------------------------------------------- the plan
def test_fault_rule_rejects_unknown_action():
    with pytest.raises(ValueError, match="unknown fault action"):
        FaultRule(site="store.put", action="explode")


def test_fault_plan_json_round_trip():
    plan = FaultPlan(seed=42, rules=(
        FaultRule(site="store.put", action="raise", hits=(0, 2)),
        FaultRule(site="worker.claimed", action="exit", hits=(1,),
                  role="worker", message="die"),
        FaultRule(site="store.get", action="sleep", seconds=0.5),
    ))
    clone = FaultPlan.from_json(plan.to_json())
    assert clone == plan
    assert clone.seed == 42
    assert clone.rules[1].role == "worker"


def test_plan_fires_at_exact_hit_indices(monkeypatch):
    _activate(monkeypatch, FaultPlan(rules=(
        FaultRule(site="unit.site", action="torn", hits=(1, 3)),)))
    fired = [inject("unit.site") is not None for _ in range(5)]
    assert fired == [False, True, False, True, False]
    # other sites share the plan but keep independent counters
    assert inject("unit.other") is None


def test_role_filter_targets_workers_only(monkeypatch):
    plan = FaultPlan(rules=(FaultRule(site="unit.role", action="torn",
                                      hits=tuple(range(8)), role="worker"),))
    _activate(monkeypatch, plan)
    assert inject("unit.role") is None  # this process is role "main"
    monkeypatch.setenv(FAULT_ROLE_ENV_VAR, "worker")
    monkeypatch.setenv(FAULT_PLAN_ENV_VAR, plan.to_json() + " ")  # reparse
    assert inject("unit.role") is not None


def test_unreadable_plan_injects_nothing(monkeypatch):
    monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "{not json")
    assert inject("unit.site") is None
    monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "/no/such/plan.json")
    assert inject("unit.site") is None


def test_infrastructure_error_classification():
    assert is_infrastructure_error(OSError("disk on fire"))
    assert not is_infrastructure_error(ValueError("deterministic"))
    assert not is_infrastructure_error(KeyError("missing"))


# -------------------------------------------------------- store-level faults
def test_injected_raise_surfaces_as_oserror(monkeypatch, store, scenario):
    _activate(monkeypatch, FaultPlan(rules=(
        FaultRule(site="store.put", action="raise", hits=(0,)),)))
    run = resume_sweep([scenario], store=None, execution="serial")[0]
    with pytest.raises(OSError, match="injected fault"):
        store.put(run.outcome)
    # the very next attempt (hit 1) succeeds: the failure was transient
    store.put(run.outcome)
    assert store.get(scenario) is not None


def test_torn_put_is_quarantined_and_recomputed(monkeypatch, store, scenario):
    _activate(monkeypatch, FaultPlan(rules=(
        FaultRule(site="store.put", action="torn", hits=(0,)),)))
    first = run_cached(scenario, store=store)
    assert not first.cached
    # the stored bytes are torn: the next read quarantines and misses
    assert store.get(scenario) is None
    quarantined = store.quarantined()
    assert len(quarantined) == 1 and quarantined[0].kind == "entries"
    # recompute (put hit 1 is clean) and verify bit-identity end to end
    second = run_cached(scenario, store=store)
    assert not second.cached
    assert second.outcome.to_json() == first.outcome.to_json()
    assert store.get(scenario) is not None


def test_store_verify_checksums_every_entry(store, scenario):
    run_cached(scenario, store=store)
    other = replace(scenario, seed=1234)
    run_cached(other, store=store)
    victim = store.entry_path(store.key_for(other))
    payload = json.loads(victim.read_text())
    payload["result"]["total_cycles"] = 1  # silent bit-flip
    victim.write_text(json.dumps(payload))
    stats = store.verify()
    assert (stats.checked, stats.ok, stats.quarantined) == (2, 1, 1)
    assert store.get(other) is None  # quarantined, not served
    assert store.clear_quarantine() == 1
    assert store.quarantined() == []


def test_checksum_is_canonical_and_stable():
    payload = {"b": 2, "a": [1.5, "x"]}
    assert payload_checksum(payload) == payload_checksum(
        json.loads(json.dumps(payload)))
    assert payload_checksum(payload) != payload_checksum({"b": 2, "a": 1})


# ------------------------------------------------------------- leased claims
def test_claim_records_owner_pid_host(store):
    assert store.try_claim("k" * 16, owner="tester")
    info = store.claim_info("k" * 16)
    assert info is not None
    assert info.owner == "tester" and info.pid == os.getpid()
    assert info.host and not info.expired
    assert [claim.key for claim in store.list_claims()] == ["k" * 16]


def test_expired_lease_is_broken_by_the_next_claimer(tmp_path):
    store = ResultsStore(root=tmp_path / "cache", claim_ttl=0.2)
    assert store.try_claim("deadbeef", owner="the-dead")
    assert not store.try_claim("deadbeef", owner="too-early")
    time.sleep(0.3)
    assert store.claim_info("deadbeef").expired
    assert store.try_claim("deadbeef", owner="the-breaker")
    assert store.claim_info("deadbeef").owner == "the-breaker"


def test_heartbeat_keeps_the_lease_alive(tmp_path):
    store = ResultsStore(root=tmp_path / "cache", claim_ttl=0.4)
    assert store.try_claim("cafe", owner="beater")
    for _ in range(3):
        time.sleep(0.2)
        assert store.heartbeat_claim("cafe")
        assert not store.claim_info("cafe").expired
    assert not store.try_claim("cafe", owner="thief")
    store.release_claim("cafe")
    assert not store.heartbeat_claim("cafe")  # released: nothing to refresh


def test_claim_ttl_environment_default(monkeypatch, tmp_path):
    monkeypatch.setenv(CLAIM_TTL_ENV_VAR, "7.5")
    assert ResultsStore(root=tmp_path / "cache").claim_ttl == 7.5


# ------------------------------------------------------------ worker retries
def test_worker_retries_transient_oserror(monkeypatch, store, scenario):
    _activate(monkeypatch, FaultPlan(rules=(
        FaultRule(site="store.put", action="raise", hits=(0,)),)))
    key = worker.enqueue_job(store, scenario)
    assert worker.run_one(store, retry_backoff=0.01)
    # the retry succeeded: result published, no lasting failure marker
    assert store.get(scenario) is not None
    assert not worker.error_path(store, key).exists()


def test_worker_quarantines_poison_job(monkeypatch, store):
    monkeypatch.setitem(WORKLOADS, "raising", WorkloadEntry(
        name="raising", kind=WORKLOAD_SYNTHETIC, description="always raises",
        factory=_raising_factory))
    poison = replace(get_scenario("base"), workload="raising",
                     num_instructions=SMALL)
    key = worker.enqueue_job(store, poison)
    assert worker.run_one(store)
    marker = worker.read_error(store, key)
    assert marker["quarantined"] and not marker["infrastructure"]
    assert marker["attempts"] == 1  # deterministic failures fail fast
    assert "synthetic workload failure" in marker["error"]
    assert worker.pending_jobs(store) == []
    assert any(item.kind == "jobs" for item in store.quarantined())
    # the quarantined job is not picked up again
    assert not worker.run_one(store)


def test_worker_quarantines_torn_job_file(monkeypatch, store, scenario):
    _activate(monkeypatch, FaultPlan(rules=(
        FaultRule(site="worker.enqueue", action="torn", hits=(0,)),)))
    key = worker.enqueue_job(store, scenario)
    assert worker.run_one(store)
    assert worker.read_error(store, key)["quarantined"]
    assert worker.pending_jobs(store) == []
    assert any(item.kind == "jobs" for item in store.quarantined())


# -------------------------------------------------- crash recovery, for real
def test_worker_killed_mid_claim_then_lease_break_recovers(tmp_path):
    """The headline satellite: a real worker subprocess dies (``os._exit``,
    the SIGKILL shape) right after winning a claim; a second worker breaks
    the expired lease, recomputes, and the store's results are bit-identical
    to a fault-free run."""
    store = ResultsStore(root=tmp_path / "chaos", claim_ttl=0.5)
    scenarios = [replace(get_scenario(name), num_instructions=SMALL)
                 for name in ("base", "gals5")]
    for item in scenarios:
        worker.enqueue_job(store, item)
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(FaultPlan(seed=7, rules=(
        FaultRule(site="worker.claimed", action="exit", hits=(0,),
                  role="worker"),)).to_json())
    env = _worker_environment()
    env[FAULT_PLAN_ENV_VAR] = str(plan_path)  # ONLY the subprocess gets it
    env[CLAIM_TTL_ENV_VAR] = "0.5"
    victim = subprocess.Popen(
        [sys.executable, "-m", "repro.exec.worker", "--store",
         str(store.root), "--exit-when-idle", "--poll-interval", "0.02"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    assert victim.wait(timeout=120) == faults.EXIT_STATUS
    # the victim died holding its first claim; nothing was published
    assert len(store.list_claims()) == 1
    assert store.get(scenarios[0]) is None and store.get(scenarios[1]) is None
    # the second worker busy-waits on the lease, breaks it once expired,
    # and drains the whole queue
    assert worker.drain(store, poll_interval=0.02, exit_when_idle=True) == 2
    assert store.list_claims() == []
    assert worker.pending_jobs(store) == []
    # resume_sweep now serves everything from the store, bit-identical to a
    # clean store that never saw a fault
    recovered = resume_sweep(scenarios, store=store, execution="serial")
    assert all(run.cached for run in recovered)
    clean = resume_sweep(scenarios, store=ResultsStore(root=tmp_path / "ok"),
                         execution="serial")
    assert ([run.outcome.to_json() for run in recovered]
            == [run.outcome.to_json() for run in clean])


# ------------------------------------------------------- service degradation
def test_service_saturation_answers_429_with_retry_after(tmp_path, scenario):
    service = ResultsService(store=ResultsStore(root=tmp_path / "cache"),
                             execution="serial", port=0, poll_interval=30.0,
                             max_pending=0).start()
    try:
        reply = request_json(scenario_query_url(service.url, scenario),
                             retries=0)
        assert reply.code == 429
        assert reply.status == "saturated"
        assert int(reply.headers["Retry-After"]) >= 1
        # the retrying client surfaces the final 429 instead of raising
        retried = request_json(scenario_query_url(service.url, scenario),
                               retries=1, backoff=0.01)
        assert retried.code == 429
        health = service.health()
        assert health["pending"] == 0 and health["max_pending"] == 0
        assert health["drain_alive"] and health["quarantined"] == 0
    finally:
        service.stop()


def test_service_lookup_saturates_beyond_max_pending(tmp_path, scenario):
    service = ResultsService(store=ResultsStore(root=tmp_path / "cache"),
                             execution="serial", max_pending=1,
                             poll_interval=30.0)
    first, _, _ = service.lookup(scenario)
    assert first == "pending"
    # the same key re-queues freely (idempotent), a new key saturates
    assert service.lookup(scenario)[0] == "pending"
    assert service.lookup(replace(scenario, seed=99))[0] == "saturated"


def test_client_surfaces_connection_error_after_retries():
    with pytest.raises(OSError):
        request_json("http://127.0.0.1:9/never", timeout=2,
                     retries=1, backoff=0.01)


# --------------------------------------------------------------- CLI surface
def test_cache_verify_claims_quarantine_cli(tmp_path, scenario, capsys):
    root = tmp_path / "cache"
    store = ResultsStore(root=root)
    run_cached(scenario, store=store)
    assert cli_main(["cache", "verify", "--cache-dir", str(root)]) == 0
    out = capsys.readouterr().out
    assert "1 ok" in out and "0 quarantined" in out
    store.entry_path(store.key_for(scenario)).write_text("{torn")
    assert cli_main(["cache", "verify", "--cache-dir", str(root)]) == 1
    assert "1 quarantined" in capsys.readouterr().out
    assert cli_main(["cache", "quarantine", "--cache-dir", str(root)]) == 0
    assert "entries" in capsys.readouterr().out
    assert cli_main(["cache", "quarantine", "--cache-dir", str(root),
                     "--clear"]) == 0
    assert "removed 1" in capsys.readouterr().out
    store.try_claim(store.key_for(scenario), owner="cli-test")
    assert cli_main(["cache", "claims", "--cache-dir", str(root)]) == 0
    out = capsys.readouterr().out
    assert "cli-test" in out and "live" in out
