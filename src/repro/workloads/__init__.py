"""Workloads: Spec95/Mediabench behaviour profiles, synthetic traces, kernels.

* :mod:`repro.workloads.profiles` -- per-benchmark behavioural parameters.
* :mod:`repro.workloads.synthetic` -- deterministic synthetic trace generation.
* :mod:`repro.workloads.kernels` -- hand-written assembly kernels executed
  functionally to produce real traces.
"""

from .kernels import KERNELS, Kernel, get_kernel, kernel_trace
from .profiles import (DEFAULT_BENCHMARKS, DVFS_CASE_STUDY_BENCHMARKS, PROFILES,
                       BenchmarkProfile, get_profile, profiles_in_suite)
from .synthetic import SyntheticWorkload, make_trace, make_workload

__all__ = [
    "BenchmarkProfile",
    "DEFAULT_BENCHMARKS",
    "DVFS_CASE_STUDY_BENCHMARKS",
    "KERNELS",
    "Kernel",
    "PROFILES",
    "SyntheticWorkload",
    "get_kernel",
    "get_profile",
    "kernel_trace",
    "make_trace",
    "make_workload",
    "profiles_in_suite",
]
