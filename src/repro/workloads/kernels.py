"""Hand-written kernels in the small RISC ISA.

These kernels complement the profile-driven synthetic workloads: they are
*real programs* (assembled and functionally executed) whose dynamic traces can
be fed to the same timing models.  They are used by the example applications
and by integration tests that want end-to-end behaviour from source code to
power/performance numbers, the way the paper's infrastructure runs real
binaries.

Each kernel is parameterised by a problem size and returns both the assembled
:class:`~repro.isa.program.Program` and initial memory contents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..isa.assembler import assemble
from ..isa.executor import execute_program
from ..isa.program import Program
from ..isa.trace import ListTraceSource

#: Base addresses for the kernels' data arrays.
ARRAY_A = 0x1000_0000
ARRAY_B = 0x1004_0000
ARRAY_C = 0x1008_0000
WORD = 8


@dataclass
class Kernel:
    """A named, parameterised kernel."""

    name: str
    description: str
    builder: Callable[[int], Tuple[Program, Dict[int, float]]]

    def build(self, size: int) -> Tuple[Program, Dict[int, float]]:
        """Assemble the kernel at ``size``; returns (program, preloaded memory)."""
        return self.builder(size)

    def trace(self, size: int, max_instructions: int = 2_000_000) -> ListTraceSource:
        """Assemble, functionally execute, and return the dynamic trace."""
        program, memory = self.build(size)
        return execute_program(program, max_instructions=max_instructions,
                               initial_memory=memory)


# --------------------------------------------------------------------- kernels
def _vector_sum(size: int) -> Tuple[Program, Dict[int, float]]:
    """sum += a[i] over an integer array (memory + integer ALU bound)."""
    source = f"""
    main:
        li   r1, 0              # accumulator
        li   r2, 0              # i
        li   r3, {size}         # n
        li   r4, {ARRAY_A}      # base of a[]
    loop:
        lw   r5, 0(r4)
        add  r1, r1, r5
        addi r4, r4, {WORD}
        addi r2, r2, 1
        blt  r2, r3, loop
        halt
    """
    memory = {ARRAY_A + i * WORD: (i * 3 + 1) % 251 for i in range(size)}
    return assemble(source, name=f"vector_sum_{size}"), memory


def _dot_product(size: int) -> Tuple[Program, Dict[int, float]]:
    """Floating-point dot product (FP multiply-add chain, two streams)."""
    source = f"""
    main:
        li   r2, 0              # i
        li   r3, {size}         # n
        li   r4, {ARRAY_A}
        li   r5, {ARRAY_B}
        li   r6, 0
        cvtif f1, r6            # accumulator = 0.0
    loop:
        flw  f2, 0(r4)
        flw  f3, 0(r5)
        fmul f4, f2, f3
        fadd f1, f1, f4
        addi r4, r4, {WORD}
        addi r5, r5, {WORD}
        addi r2, r2, 1
        blt  r2, r3, loop
        fsw  f1, 0(r4)
        halt
    """
    memory = {}
    for i in range(size):
        memory[ARRAY_A + i * WORD] = 0.5 + 0.25 * (i % 7)
        memory[ARRAY_B + i * WORD] = 1.0 + 0.125 * (i % 5)
    return assemble(source, name=f"dot_product_{size}"), memory


def _saxpy(size: int) -> Tuple[Program, Dict[int, float]]:
    """y[i] = a * x[i] + y[i] (streaming FP with stores)."""
    source = f"""
    main:
        li   r2, 0
        li   r3, {size}
        li   r4, {ARRAY_A}      # x
        li   r5, {ARRAY_B}      # y
        li   r6, 3
        cvtif f1, r6            # a = 3.0
    loop:
        flw  f2, 0(r4)
        flw  f3, 0(r5)
        fmul f4, f1, f2
        fadd f5, f4, f3
        fsw  f5, 0(r5)
        addi r4, r4, {WORD}
        addi r5, r5, {WORD}
        addi r2, r2, 1
        blt  r2, r3, loop
        halt
    """
    memory = {}
    for i in range(size):
        memory[ARRAY_A + i * WORD] = float(i % 13)
        memory[ARRAY_B + i * WORD] = float(i % 9)
    return assemble(source, name=f"saxpy_{size}"), memory


def _matmul(size: int) -> Tuple[Program, Dict[int, float]]:
    """Dense size x size FP matrix multiply (nested loops, mixed int/FP)."""
    n = size
    source = f"""
    main:
        li   r10, 0             # i
        li   r13, {n}           # n
    iloop:
        li   r11, 0             # j
    jloop:
        li   r12, 0             # k
        li   r20, 0
        cvtif f1, r20           # acc = 0.0
    kloop:
        # address of a[i][k] = A + (i*n + k)*WORD
        mul  r14, r10, r13
        add  r14, r14, r12
        li   r15, {WORD}
        mul  r14, r14, r15
        li   r16, {ARRAY_A}
        add  r14, r14, r16
        flw  f2, 0(r14)
        # address of b[k][j] = B + (k*n + j)*WORD
        mul  r17, r12, r13
        add  r17, r17, r11
        mul  r17, r17, r15
        li   r18, {ARRAY_B}
        add  r17, r17, r18
        flw  f3, 0(r17)
        fmul f4, f2, f3
        fadd f1, f1, f4
        addi r12, r12, 1
        blt  r12, r13, kloop
        # c[i][j] = acc
        mul  r19, r10, r13
        add  r19, r19, r11
        mul  r19, r19, r15
        li   r21, {ARRAY_C}
        add  r19, r19, r21
        fsw  f1, 0(r19)
        addi r11, r11, 1
        blt  r11, r13, jloop
        addi r10, r10, 1
        blt  r10, r13, iloop
        halt
    """
    memory = {}
    for i in range(n):
        for j in range(n):
            memory[ARRAY_A + (i * n + j) * WORD] = float((i + j) % 5) * 0.5
            memory[ARRAY_B + (i * n + j) * WORD] = float((i * j) % 7) * 0.25
    return assemble(source, name=f"matmul_{n}x{n}"), memory


def _fibonacci(size: int) -> Tuple[Program, Dict[int, float]]:
    """Iterative Fibonacci (pure integer, branch-light, serial dependences)."""
    source = f"""
    main:
        li   r1, 0              # fib(0)
        li   r2, 1              # fib(1)
        li   r3, 0              # i
        li   r4, {size}
    loop:
        add  r5, r1, r2
        mov  r1, r2
        mov  r2, r5
        addi r3, r3, 1
        blt  r3, r4, loop
        li   r6, {ARRAY_C}
        sw   r2, 0(r6)
        halt
    """
    return assemble(source, name=f"fibonacci_{size}"), {}


def _string_search(size: int) -> Tuple[Program, Dict[int, float]]:
    """Count occurrences of a byte value in an array (data-dependent branches)."""
    source = f"""
    main:
        li   r1, 0              # count
        li   r2, 0              # i
        li   r3, {size}
        li   r4, {ARRAY_A}
        li   r5, 7              # needle
    loop:
        lw   r6, 0(r4)
        bne  r6, r5, skip
        addi r1, r1, 1
    skip:
        addi r4, r4, {WORD}
        addi r2, r2, 1
        blt  r2, r3, loop
        li   r7, {ARRAY_C}
        sw   r1, 0(r7)
        halt
    """
    memory = {ARRAY_A + i * WORD: (i * 5 + 3) % 11 for i in range(size)}
    return assemble(source, name=f"string_search_{size}"), memory


KERNELS: Dict[str, Kernel] = {
    "vector_sum": Kernel("vector_sum", "integer array reduction", _vector_sum),
    "dot_product": Kernel("dot_product", "floating-point dot product", _dot_product),
    "saxpy": Kernel("saxpy", "streaming FP saxpy with stores", _saxpy),
    "matmul": Kernel("matmul", "dense FP matrix multiply", _matmul),
    "fibonacci": Kernel("fibonacci", "serial integer recurrence", _fibonacci),
    "string_search": Kernel("string_search", "data-dependent branch kernel",
                            _string_search),
}


def get_kernel(name: str) -> Kernel:
    """Look up a kernel by name."""
    try:
        return KERNELS[name]
    except KeyError as exc:
        raise KeyError(f"unknown kernel {name!r}; known: {', '.join(sorted(KERNELS))}"
                       ) from exc


def kernel_trace(name: str, size: int) -> ListTraceSource:
    """Assemble, execute and return the dynamic trace of a named kernel."""
    return get_kernel(name).trace(size)
