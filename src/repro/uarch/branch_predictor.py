"""Branch direction predictors and branch target buffer.

The paper's simulator inherits SimpleScalar's front end; the default
configuration of that era is a bimodal (2-bit counter) or gshare predictor
with a set-associative BTB.  Both direction predictors are provided; the
processor configuration selects one (gshare by default).  Prediction accuracy
is an emergent property of the workload's static branch biases, which is what
drives the 13.8 % / 16.7 % mis-speculation numbers of Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


def _saturate_up(counter: int, maximum: int = 3) -> int:
    return min(maximum, counter + 1)


def _saturate_down(counter: int, minimum: int = 0) -> int:
    return max(minimum, counter - 1)


@dataclass
class PredictorStats:
    """Accuracy counters for a direction predictor."""

    lookups: int = 0
    correct: int = 0
    mispredictions: int = 0

    @property
    def accuracy(self) -> float:
        """Correct predictions per prediction (1.0 before any)."""
        if self.lookups == 0:
            return 0.0
        return self.correct / self.lookups

    @property
    def misprediction_rate(self) -> float:
        """Mispredictions per prediction (0.0 before any)."""
        if self.lookups == 0:
            return 0.0
        return self.mispredictions / self.lookups


class DirectionPredictor:
    """Interface for branch direction predictors."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.stats = PredictorStats()

    def predict(self, pc: int) -> bool:  # pragma: no cover - overridden
        """Predicted direction (True = taken) for the branch at ``pc``."""
        raise NotImplementedError

    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        """Record the outcome and train the tables."""
        self.stats.lookups += 1
        if taken == predicted:
            self.stats.correct += 1
        else:
            self.stats.mispredictions += 1
        self._train(pc, taken)

    def _train(self, pc: int, taken: bool) -> None:  # pragma: no cover
        raise NotImplementedError


class BimodalPredictor(DirectionPredictor):
    """Per-pc 2-bit saturating counters."""

    def __init__(self, entries: int = 2048) -> None:
        super().__init__("bimodal")
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self._table: Dict[int, int] = {}

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        """Prediction from the 2-bit counter indexed by ``pc``."""
        counter = self._table.get(self._index(pc), 2)
        return counter >= 2

    def _train(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._table.get(index, 2)
        self._table[index] = _saturate_up(counter) if taken else _saturate_down(counter)


class GSharePredictor(DirectionPredictor):
    """Global-history predictor (pc XOR history indexes a counter table)."""

    def __init__(self, entries: int = 4096, history_bits: int = 10) -> None:
        super().__init__("gshare")
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self.entries = entries
        self.history_bits = history_bits
        self._history = 0
        self._table: Dict[int, int] = {}
        self._history_mask = (1 << history_bits) - 1
        self._index_mask = entries - 1

    def _index(self, pc: int) -> int:
        history = self._history & self._history_mask
        return ((pc >> 2) ^ history) & self._index_mask

    def predict(self, pc: int) -> bool:
        """Prediction from the counter indexed by pc XOR global history."""
        history = self._history & self._history_mask
        counter = self._table.get(((pc >> 2) ^ history) & self._index_mask, 2)
        return counter >= 2

    def _train(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._table.get(index, 2)
        self._table[index] = _saturate_up(counter) if taken else _saturate_down(counter)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask


class BranchTargetBuffer:
    """Small set-associative BTB holding branch targets."""

    def __init__(self, entries: int = 512, associativity: int = 4) -> None:
        if entries <= 0 or associativity <= 0 or entries % associativity:
            raise ValueError("entries must be a positive multiple of associativity")
        self.entries = entries
        self.associativity = associativity
        self.num_sets = entries // associativity
        # set index -> list of (tag, target), most recently used first
        self._sets: Dict[int, list] = {}
        self.hits = 0
        self.misses = 0

    def _locate(self, pc: int) -> Tuple[int, int]:
        index = (pc >> 2) % self.num_sets
        tag = pc >> 2
        return index, tag

    def lookup(self, pc: int) -> Optional[int]:
        """Predicted target for ``pc``, or None on a BTB miss."""
        index, tag = self._locate(pc)
        entries = self._sets.get(index, [])
        for position, (stored_tag, target) in enumerate(entries):
            if stored_tag == tag:
                entries.insert(0, entries.pop(position))
                self.hits += 1
                return target
        self.misses += 1
        return None

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the target of ``pc`` in its set."""
        index, tag = self._locate(pc)
        entries = self._sets.setdefault(index, [])
        for position, (stored_tag, _) in enumerate(entries):
            if stored_tag == tag:
                entries[position] = (tag, target)
                entries.insert(0, entries.pop(position))
                return
        entries.insert(0, (tag, target))
        del entries[self.associativity:]


class BranchUnit:
    """Direction predictor + BTB packaged for the fetch stage."""

    def __init__(self, predictor: Optional[DirectionPredictor] = None,
                 btb: Optional[BranchTargetBuffer] = None) -> None:
        self.predictor = predictor or GSharePredictor()
        self.btb = btb or BranchTargetBuffer()
        self.lookups = 0

    def predict(self, pc: int) -> Tuple[bool, Optional[int]]:
        """Predict (taken?, target) for a conditional branch at ``pc``."""
        self.lookups += 1
        taken = self.predictor.predict(pc)
        target = self.btb.lookup(pc) if taken else None
        return taken, target

    def resolve(self, pc: int, taken: bool, predicted: bool,
                target: Optional[int]) -> None:
        """Train both structures once the branch outcome is known."""
        self.predictor.update(pc, taken, predicted)
        if taken and target is not None:
            self.btb.update(pc, target)

    @property
    def misprediction_rate(self) -> float:
        """Direction-misprediction rate of the underlying predictor."""
        return self.predictor.stats.misprediction_rate


def make_direction_predictor(kind: str, entries: int = 4096,
                             history_bits: int = 10) -> DirectionPredictor:
    """Factory: 'gshare' or 'bimodal'."""
    kind = kind.lower()
    if kind == "gshare":
        return GSharePredictor(entries=entries, history_bits=history_bits)
    if kind == "bimodal":
        return BimodalPredictor(entries=entries)
    raise ValueError(f"unknown predictor kind {kind!r}")
