"""Figure 8: percentage of mis-speculated instructions, base vs GALS.

Paper result: the longer recovery pipeline of the GALS machine increases
wasted speculative work -- for the integer applications from 13.8 % of fetched
instructions to 16.7 %; the increase is smaller for benchmarks dominated by
long-latency (FP) instructions.
"""

from repro.analysis import misspeculation_table
from repro.core.experiments import run_pair
from repro.workloads.profiles import get_profile

from conftest import TIMED_INSTRUCTIONS

import pytest

#: figure-reproduction benchmarks are tier-2: heavy, skipped by tier-1
pytestmark = pytest.mark.slow


def test_fig08_misspeculated_instructions(benchmark, suite_rows):
    benchmark.pedantic(
        run_pair, args=("compress",), kwargs={"num_instructions": TIMED_INSTRUCTIONS},
        rounds=1, iterations=1)

    print("\n=== Figure 8: mis-speculated instructions (fraction of fetches) ===")
    print(misspeculation_table(suite_rows))

    int_rows = [row for row in suite_rows
                if get_profile(row.benchmark).is_integer_benchmark]
    fp_rows = [row for row in suite_rows
               if not get_profile(row.benchmark).is_integer_benchmark]
    base_int = sum(r.base_misspeculation for r in int_rows) / len(int_rows)
    gals_int = sum(r.gals_misspeculation for r in int_rows) / len(int_rows)
    print(f"\ninteger benchmarks: base {base_int:.1%} -> GALS {gals_int:.1%} "
          f"(paper: 13.8% -> 16.7%)")

    # Direction and rough magnitude: speculation increases for integer codes,
    # and integer codes speculate far more than FP codes.
    assert gals_int > base_int
    assert 0.05 < base_int < 0.35
    base_fp = sum(r.base_misspeculation for r in fp_rows) / len(fp_rows)
    assert base_fp < base_int
