"""Unit tests for the event-driven simulation engine (paper Section 4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimulationEngine
from repro.sim.event import Event, SimulationError


def test_events_fire_in_time_order():
    engine = SimulationEngine()
    order = []
    engine.schedule(3.0, lambda _: order.append("c"))
    engine.schedule(1.0, lambda _: order.append("a"))
    engine.schedule(2.0, lambda _: order.append("b"))
    engine.run()
    assert order == ["a", "b", "c"]
    assert engine.now == 3.0
    assert engine.events_processed == 3


def test_priority_breaks_ties_at_same_time():
    engine = SimulationEngine()
    order = []
    engine.schedule(1.0, lambda _: order.append("low"), priority=5)
    engine.schedule(1.0, lambda _: order.append("high"), priority=0)
    engine.run()
    assert order == ["high", "low"]


def test_equal_time_and_priority_preserves_insertion_order():
    engine = SimulationEngine()
    order = []
    for index in range(10):
        engine.schedule(1.0, lambda _, i=index: order.append(i))
    engine.run()
    assert order == list(range(10))


def test_periodic_event_models_a_clock():
    engine = SimulationEngine()
    ticks = []
    engine.schedule_periodic(start=0.5, period=2.0,
                             callback=lambda _: ticks.append(engine.now))
    engine.run(until=10.0)
    assert ticks == [0.5, 2.5, 4.5, 6.5, 8.5]


def test_figure4_three_clock_example():
    """The example of Figure 4: clocks of period 2, 3 and 2.5 ns."""
    engine = SimulationEngine()
    fires = {"clk1": 0, "clk2": 0, "clk3": 0}

    engine.schedule_periodic(0.5, 2.0, lambda _: fires.__setitem__("clk1", fires["clk1"] + 1))
    engine.schedule_periodic(1.0, 3.0, lambda _: fires.__setitem__("clk2", fires["clk2"] + 1))
    engine.schedule_periodic(0.0, 2.5, lambda _: fires.__setitem__("clk3", fires["clk3"] + 1))
    engine.run(until=30.0)
    # edges at start + k*period, k >= 0, up to and including t=30
    assert fires["clk1"] == len([t for t in range(100) if 0.5 + t * 2.0 <= 30.0])
    assert fires["clk2"] == len([t for t in range(100) if 1.0 + t * 3.0 <= 30.0])
    assert fires["clk3"] == len([t for t in range(100) if 0.0 + t * 2.5 <= 30.0])


def test_cancel_chain_stops_periodic_event():
    engine = SimulationEngine()
    count = []
    engine.schedule_periodic(0.0, 1.0, lambda _: count.append(1), name="clock:x")

    def stopper(_):
        engine.cancel_chain("clock:x")

    engine.schedule(5.5, stopper)
    engine.run(until=20.0)
    assert len(count) == 6  # t = 0..5


def test_stop_condition_halts_run():
    engine = SimulationEngine()
    count = []
    engine.schedule_periodic(0.0, 1.0, lambda _: count.append(1))
    engine.run(until=100.0, stop_condition=lambda: len(count) >= 7)
    assert len(count) == 7


def test_max_events_limits_run():
    engine = SimulationEngine()
    engine.schedule_periodic(0.0, 1.0, lambda _: None)
    engine.run(until=1000.0, max_events=13)
    assert engine.events_processed == 13


def test_schedule_in_the_past_raises():
    engine = SimulationEngine()
    engine.schedule(5.0, lambda _: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule(1.0, lambda _: None)


def test_negative_delay_and_bad_period_raise():
    engine = SimulationEngine()
    with pytest.raises(SimulationError):
        engine.schedule_after(-1.0, lambda _: None)
    with pytest.raises(SimulationError):
        engine.schedule_periodic(0.0, 0.0, lambda _: None)


def test_event_callback_receives_parameter():
    engine = SimulationEngine()
    received = []
    engine.schedule(1.0, received.append, param="payload")
    engine.run()
    assert received == ["payload"]


def test_reset_clears_engine():
    engine = SimulationEngine()
    engine.schedule(1.0, lambda _: None)
    engine.run()
    engine.reset()
    assert engine.now == 0.0
    assert engine.pending_events == 0


def test_periodic_event_requires_period_for_next_occurrence():
    event = Event(time=1.0, callback=lambda _: None)
    with pytest.raises(ValueError):
        event.next_occurrence()


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1000.0,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=40))
def test_property_events_always_processed_in_nondecreasing_time(times):
    engine = SimulationEngine()
    seen = []
    for t in times:
        engine.schedule(t, lambda _, when=t: seen.append(when))
    engine.run()
    assert seen == sorted(times)
    assert len(seen) == len(times)
