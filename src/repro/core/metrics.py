"""Simulation statistics and result records.

:class:`SimulationStats` is filled in while a processor runs (commits, slips,
occupancies); :class:`SimulationResult` is the frozen record a run returns,
combining performance metrics with the power breakdown.  The comparison
helpers compute the normalised quantities the paper's figures plot (relative
performance, energy and power of GALS vs base, slip ratios, mis-speculation
percentages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..isa.instructions import InstructionClass
from ..power.accounting import EnergyBreakdown

#: Enum-member -> value cache: ``Enum.value`` goes through a descriptor on
#: every read, and record_commit runs once per committed instruction.
_CLASS_VALUES = {opclass: opclass.value for opclass in InstructionClass}


class SimulationStats:
    """Mutable counters updated while the pipeline runs."""

    def __init__(self) -> None:
        self.committed = 0
        self.committed_by_class: Dict[str, int] = {}
        self.slip_sum = 0.0
        self.fifo_time_sum = 0.0
        self.branches_committed = 0
        self.last_commit_time = 0.0
        # occupancy sampling (one sample per commit-domain cycle)
        self.occupancy_samples = 0
        self.rob_occupancy_sum = 0
        self.int_regs_in_use_sum = 0
        self.fp_regs_in_use_sum = 0
        #: when set, ``on_target`` fires as the commit count reaches
        #: ``commit_target`` -- the processor uses it to stop the engine
        #: without paying a stop-condition callback after every event
        self.commit_target: Optional[int] = None
        self.on_target = None

    # ------------------------------------------------------------ recording
    def record_commit(self, instr, now: float) -> None:
        """Called by the commit unit for every retired instruction."""
        committed = self.committed + 1
        self.committed = committed
        key = _CLASS_VALUES[instr.opclass]
        self.committed_by_class[key] = self.committed_by_class.get(key, 0) + 1
        # inline instr.slip (property): slip is 0 unless both ends are stamped
        commit_time = instr.commit_time
        fetch_time = instr.fetch_time
        if commit_time >= 0 and fetch_time >= 0:
            self.slip_sum += commit_time - fetch_time
        self.fifo_time_sum += instr.fifo_time
        if instr.is_branch:
            self.branches_committed += 1
        self.last_commit_time = now
        if committed == self.commit_target and self.on_target is not None:
            self.on_target()

    def sample_occupancy(self, rob: int, int_regs_in_use: int,
                         fp_regs_in_use: int) -> None:
        """Record one commit-domain-cycle occupancy sample (ROB + register files)."""
        self.occupancy_samples += 1
        self.rob_occupancy_sum += rob
        self.int_regs_in_use_sum += int_regs_in_use
        self.fp_regs_in_use_sum += fp_regs_in_use

    # -------------------------------------------------------------- averages
    @property
    def mean_slip(self) -> float:
        """Average fetch-to-commit slip (ns) over committed instructions."""
        return self.slip_sum / self.committed if self.committed else 0.0

    @property
    def mean_fifo_time(self) -> float:
        """Average per-instruction residency (ns) in mixed-clock FIFOs."""
        return self.fifo_time_sum / self.committed if self.committed else 0.0

    @property
    def mean_rob_occupancy(self) -> float:
        """Average ROB occupancy over the sampled cycles."""
        if self.occupancy_samples == 0:
            return 0.0
        return self.rob_occupancy_sum / self.occupancy_samples

    @property
    def mean_int_regs_in_use(self) -> float:
        """Average number of live integer physical registers."""
        if self.occupancy_samples == 0:
            return 0.0
        return self.int_regs_in_use_sum / self.occupancy_samples

    @property
    def mean_fp_regs_in_use(self) -> float:
        """Average number of live FP physical registers."""
        if self.occupancy_samples == 0:
            return 0.0
        return self.fp_regs_in_use_sum / self.occupancy_samples


@dataclass
class SimulationResult:
    """Frozen outcome of one benchmark run on one processor configuration."""

    processor: str                  # 'base' or 'gals'
    benchmark: str
    committed_instructions: int
    elapsed_ns: float
    reference_cycles: float         # elapsed time in nominal clock periods
    ipc: float
    mean_slip_ns: float
    mean_fifo_time_ns: float
    misspeculated_fraction: float
    fetched_instructions: int
    wrong_path_fetched: int
    branch_misprediction_rate: float
    icache_miss_rate: float
    dcache_miss_rate: float
    l2_miss_rate: float
    mean_rob_occupancy: float
    mean_int_regs_in_use: float
    mean_fp_regs_in_use: float
    mean_iq_occupancy: Dict[str, float] = field(default_factory=dict)
    domain_cycles: Dict[str, int] = field(default_factory=dict)
    domain_voltages: Dict[str, float] = field(default_factory=dict)
    energy: Optional[EnergyBreakdown] = None
    recoveries: int = 0
    #: per-control-epoch telemetry/decision trace recorded when an online
    #: DVFS controller drives the run (None without a controller); each entry
    #: holds the epoch boundary time, epoch IPC and energy, and the
    #: per-domain slowdowns/voltages in force after the decision
    dvfs_trace: Optional[list] = None

    # ----------------------------------------------------------- derived
    @property
    def total_energy_nj(self) -> float:
        """Total energy of the run in nJ (0.0 when power was not accounted)."""
        return self.energy.total_energy_nj if self.energy else 0.0

    @property
    def average_power_w(self) -> float:
        """Average power of the run in watts."""
        return self.energy.average_power_w if self.energy else 0.0

    @property
    def fifo_slip_fraction(self) -> float:
        """Share of the slip spent in inter-domain FIFOs (Figure 7)."""
        if self.mean_slip_ns <= 0:
            return 0.0
        return min(1.0, self.mean_fifo_time_ns / self.mean_slip_ns)

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        lines = [
            f"{self.processor} / {self.benchmark}: "
            f"{self.committed_instructions} instructions in "
            f"{self.elapsed_ns:.1f} ns ({self.ipc:.2f} IPC)",
            f"  slip {self.mean_slip_ns:.2f} ns "
            f"({self.fifo_slip_fraction * 100:.1f}% in FIFOs), "
            f"mis-speculated {self.misspeculated_fraction * 100:.1f}% of fetches",
            f"  energy {self.total_energy_nj:.1f} nJ, "
            f"power {self.average_power_w:.2f} W",
        ]
        return "\n".join(lines)


@dataclass
class ComparisonRow:
    """GALS result normalised to the base result (one bar group of Figs 5-9)."""

    benchmark: str
    relative_performance: float     # base time / GALS time  (< 1: GALS slower)
    relative_energy: float          # GALS energy / base energy
    relative_power: float           # GALS power / base power
    slip_ratio: float               # GALS slip / base slip
    base_slip_ns: float
    gals_slip_ns: float
    gals_fifo_slip_fraction: float
    base_misspeculation: float
    gals_misspeculation: float
    base_result: Optional[SimulationResult] = None
    gals_result: Optional[SimulationResult] = None

    @property
    def performance_drop(self) -> float:
        """Fractional slowdown of the GALS machine (0.10 = 10 % slower)."""
        return 1.0 - self.relative_performance

    @property
    def power_saving(self) -> float:
        """Fractional GALS power saving vs base."""
        return 1.0 - self.relative_power

    @property
    def energy_increase(self) -> float:
        """Fractional GALS energy increase vs base."""
        return self.relative_energy - 1.0


def compare(base: SimulationResult, gals: SimulationResult) -> ComparisonRow:
    """Normalise a GALS run against its base run (same benchmark)."""
    if base.benchmark != gals.benchmark:
        raise ValueError(f"comparing different benchmarks: "
                         f"{base.benchmark!r} vs {gals.benchmark!r}")
    if base.elapsed_ns <= 0 or gals.elapsed_ns <= 0:
        raise ValueError("both runs must have positive elapsed time")
    relative_performance = base.elapsed_ns / gals.elapsed_ns
    relative_energy = (gals.total_energy_nj / base.total_energy_nj
                       if base.total_energy_nj > 0 else 0.0)
    relative_power = (gals.average_power_w / base.average_power_w
                      if base.average_power_w > 0 else 0.0)
    slip_ratio = (gals.mean_slip_ns / base.mean_slip_ns
                  if base.mean_slip_ns > 0 else 0.0)
    return ComparisonRow(
        benchmark=base.benchmark,
        relative_performance=relative_performance,
        relative_energy=relative_energy,
        relative_power=relative_power,
        slip_ratio=slip_ratio,
        base_slip_ns=base.mean_slip_ns,
        gals_slip_ns=gals.mean_slip_ns,
        gals_fifo_slip_fraction=gals.fifo_slip_fraction,
        base_misspeculation=base.misspeculated_fraction,
        gals_misspeculation=gals.misspeculated_fraction,
        base_result=base,
        gals_result=gals,
    )


def geometric_mean(values) -> float:
    """Geometric mean of positive values (used for suite-level summaries)."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def arithmetic_mean(values) -> float:
    """Arithmetic mean (the paper quotes arithmetic averages)."""
    values = list(values)
    if not values:
        raise ValueError("arithmetic_mean of an empty sequence")
    return sum(values) / len(values)
