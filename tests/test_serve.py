"""Tests for the ``repro serve`` results service (:mod:`repro.serve`).

One in-process :class:`ResultsService` per module (ephemeral port, serial
job backend, fast drain interval) exercises the whole API surface: health,
hit/miss/pending semantics, byte-identity of served bodies with
``ScenarioResult.to_json()``, the /compare design-space endpoint, error
mapping, failure reporting, the library client and the ``repro query``
subcommand.
"""

import json
from dataclasses import replace

import pytest

from repro.cli import main as cli_main
from repro.core.scenario import get_scenario
from repro.results import ResultsStore, run_cached
from repro.serve import (ResultsService, query_compare, query_health,
                         query_scenario, request_json)
from repro.serve.service import _scenario_from_query
from repro.workloads.registry import (WORKLOAD_SYNTHETIC, WORKLOADS,
                                      WorkloadEntry)

SMALL = 150

#: Generous wall-clock budget for one queued scenario to land (CI-safe).
WAIT = 60.0


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve") / "cache"
    instance = ResultsService(store=ResultsStore(root=root),
                              execution="serial", port=0,
                              poll_interval=0.02)
    instance.start()
    yield instance
    instance.stop()


@pytest.fixture
def scenario():
    return replace(get_scenario("base"), num_instructions=SMALL)


# ---------------------------------------------------------------------- health
def test_health_reports_store_and_backend(service):
    reply = query_health(service.url)
    assert reply.code == 200
    payload = reply.payload
    assert payload["status"] == "ok"
    assert payload["store"] == str(service.store.root)
    assert payload["backend"] == "serial"
    assert payload["fingerprint"] == service.store.fingerprint


# ------------------------------------------------------------ scenario queries
def test_miss_is_queued_then_served_bit_identically(service, scenario):
    first = query_scenario(service.url, scenario)
    assert first.code == 202
    assert first.status == "pending"
    key = first.key
    assert key == service.store.key_for(scenario)

    served = query_scenario(service.url, scenario, wait=WAIT, poll=0.05)
    assert served.code == 200
    assert served.status == "hit"
    assert served.headers["X-Repro-Key"] == key
    # acceptance: the served body is byte-identical to the stored result's
    # canonical JSON (what repro run --json writes)
    expected = run_cached(scenario, store=service.store)
    assert expected.cached
    assert served.body == expected.outcome.to_json()


def test_hit_without_recompute(service, scenario):
    """A stored scenario is answered 200 straight from the store."""
    before = service.store.hits
    reply = query_scenario(service.url, scenario)
    assert reply.code == 200 and reply.status == "hit"
    assert service.store.hits > before


def test_query_by_name_with_field_overrides(service, scenario):
    url = (f"{service.url}/scenario?name=base"
           f"&num_instructions={SMALL}")
    reply = request_json(url)
    assert reply.code == 200  # same key as the canonical-JSON spelling
    assert json.loads(reply.body)["scenario"]["num_instructions"] == SMALL


def test_unknown_endpoint_404(service):
    assert request_json(f"{service.url}/nope").code == 404


def test_unknown_scenario_name_404(service):
    reply = request_json(f"{service.url}/scenario?name=no-such-scenario")
    assert reply.code == 404
    assert "no-such-scenario" in reply.payload["error"]


def test_bad_field_and_missing_params_400(service):
    reply = request_json(f"{service.url}/scenario?name=base&bogus=1")
    assert reply.code == 400
    assert "bogus" in reply.payload["error"]
    assert request_json(f"{service.url}/scenario").code == 400


def test_failed_computation_reports_500_once(service, monkeypatch):
    def raising_factory(num_instructions, seed, kernel_size):
        raise ValueError("doomed workload")

    monkeypatch.setitem(WORKLOADS, "doomed", WorkloadEntry(
        name="doomed", kind=WORKLOAD_SYNTHETIC, description="",
        factory=raising_factory))
    bad = replace(get_scenario("base"), workload="doomed",
                  num_instructions=SMALL)
    reply = query_scenario(service.url, bad, wait=WAIT, poll=0.05)
    assert reply.code == 500
    assert reply.payload["status"] == "failed"
    assert "doomed" in reply.payload["error"]
    # the failure was consumed: the next query re-queues from scratch
    assert query_scenario(service.url, bad).code == 202
    service.drain_once()  # settle the re-queued job before teardown


# -------------------------------------------------------------------- /compare
def test_compare_cold_202_then_complete(service):
    params = {"topologies": "base,gals5", "workloads": "perl",
              "instructions": str(SMALL)}
    reply = query_compare(service.url, params, wait=WAIT, poll=0.05)
    assert reply.code == 200
    payload = reply.payload
    assert payload["status"] == "complete" and payload["total"] == 2
    assert len(payload["records"]) == 2
    assert "base" in payload["table"] and "gals5" in payload["table"]
    # warm repeat answers 200 immediately (no queue involved)
    assert query_compare(service.url, params).code == 200


# ------------------------------------------------------------- query URL parse
def test_scenario_from_query_requires_json_object():
    with pytest.raises(ValueError, match="JSON object"):
        _scenario_from_query({"scenario": ["[1, 2]"]})


# ------------------------------------------------------------- repro query CLI
def run_cli(capsys, *argv):
    code = cli_main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_cli_query_round_trip(service, scenario, capsys, tmp_path):
    out_path = tmp_path / "served.json"
    code, out, _ = run_cli(capsys, "query", "base",
                           "--instructions", str(SMALL),
                           "--url", service.url,
                           "--wait", str(WAIT),
                           "--json", str(out_path))
    assert code == 0
    assert "hit" in out
    expected = run_cached(scenario, store=service.store)
    assert out_path.read_text() == expected.outcome.to_json()


def test_cli_query_pending_exit_code(service, capsys):
    code, _, err = run_cli(capsys, "query", "base",
                           "--instructions", str(SMALL + 1),
                           "--seed", "9",
                           "--url", service.url)
    assert code == 3
    assert "pending" in err
    service.drain_once()  # settle the queued job before teardown


def test_cli_query_unreachable_service(capsys):
    code, _, err = run_cli(capsys, "query", "base",
                           "--url", "http://127.0.0.1:9")  # discard port
    assert code == 2
    assert "error" in err


def test_cli_query_prints_summary_without_json(service, scenario, capsys):
    code, out, _ = run_cli(capsys, "query", "base",
                           "--instructions", str(SMALL),
                           "--url", service.url, "--wait", str(WAIT))
    assert code == 0
    assert "instructions in" in out  # the ScenarioResult summary rendering
