"""Issue/execute units: functional-unit pools and per-domain execution engines.

The GALS processor has three execution clock domains (Figure 3b): integer
issue queue + integer ALUs, floating-point issue queue + FP ALUs, and the
memory issue queue + data cache + L2.  Keeping the queue and its functional
units in the same clock domain is a deliberate choice the paper explains:
dependent instructions inside one queue can still issue back-to-back.

Each :class:`ExecutionUnit` is one such block.  Per clock edge it

1. retires finished operations (marking results ready and resolving branches,
   which may trigger misprediction recovery),
2. drains newly dispatched instructions from its input channel into the
   issue queue,
3. wakes up and selects ready instructions and starts them on free functional
   units, adding data-cache latency for loads.

The same class, instantiated three times and placed in a single clock domain,
forms the execution core of the synchronous baseline.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..isa.instructions import DEFAULT_LATENCIES, InstructionClass, latency_of
from ..memory.hierarchy import MemoryHierarchy
from ..sim.channel import Channel
from .branch_predictor import BranchUnit
from .instruction import DynamicInstruction
from .issue_queue import ForwardingLatency, IssueQueue
from .regfile import PhysicalRegisterFile

#: Classes that occupy their functional unit for the full latency
#: (unpipelined), rather than a single initiation cycle.
_UNPIPELINED = {InstructionClass.INT_DIV, InstructionClass.FP_DIV}


class FunctionalUnitPool:
    """A pool of identical functional units with per-unit busy tracking."""

    def __init__(self, name: str, count: int) -> None:
        if count <= 0:
            raise ValueError("functional unit count must be positive")
        self.name = name
        self.count = count
        self._busy_until: List[float] = [float("-inf")] * count
        self.operations = 0
        self.structural_stalls = 0

    def available(self, now: float) -> int:
        """Number of units free at ``now``."""
        free = 0
        for busy_until in self._busy_until:
            if busy_until <= now:
                free += 1
        return free

    def try_claim(self, now: float, busy_for: float) -> bool:
        """Claim a free unit for ``busy_for`` ns; False if none is free."""
        busy = self._busy_until
        for index in range(len(busy)):
            if busy[index] <= now:
                busy[index] = now + busy_for
                self.operations += 1
                return True
        self.structural_stalls += 1
        return False

    @property
    def utilization_count(self) -> int:
        """Total operations issued to this pool."""
        return self.operations


class ExecutionUnit:
    """Issue queue + functional units for one execution cluster."""

    def __init__(
        self,
        name: str,
        domain_name: str,
        issue_queue: IssueQueue,
        input_channel: Channel,
        regfile: PhysicalRegisterFile,
        forwarding_latency: ForwardingLatency,
        clock_period: Callable[[], float],
        functional_units: FunctionalUnitPool,
        issue_width: int,
        activity,
        alu_block: str,
        queue_block: str,
        branch_unit: Optional[BranchUnit] = None,
        recovery_callback: Optional[Callable[[DynamicInstruction, float], None]] = None,
        memory: Optional[MemoryHierarchy] = None,
        latencies: Optional[Dict[InstructionClass, int]] = None,
    ) -> None:
        self.name = name
        self.domain_name = domain_name
        self.issue_queue = issue_queue
        self.input_channel = input_channel
        self.regfile = regfile
        self.forwarding_latency = forwarding_latency
        self.clock_period = clock_period
        self.functional_units = functional_units
        self.issue_width = issue_width
        self.activity = activity
        #: direct handle on the per-cycle counters (see DecodeRenameUnit)
        self._pending = activity._pending
        self.alu_block = alu_block
        self.queue_block = queue_block
        self.branch_unit = branch_unit
        self.recovery_callback = recovery_callback
        self.memory = memory
        self.latencies = latencies or dict(DEFAULT_LATENCIES)
        #: fully resolved per-class latency table (overrides + defaults)
        self._latency_map: Dict[InstructionClass, int] = {
            opclass: latency_of(opclass, self.latencies)
            for opclass in InstructionClass
        }
        #: operations in execution; each carries its completion time in
        #: ``instr.fu_done`` (set at issue)
        self._in_flight: List[DynamicInstruction] = []
        #: earliest pending completion; lets the per-edge completion scan bail
        #: out with one float compare on the (common) nothing-finished cycles
        self._next_completion: float = float("inf")
        # statistics
        self.completed_ops = 0
        self.issued_ops = 0
        self.dropped_squashed = 0

    # --------------------------------------------------------------- clocking
    def clock_edge(self, cycle: int, time: float) -> None:
        # Guards keep idle edges (no completions due, empty channel, empty
        # window) down to a few comparisons; each helper no-ops in exactly
        # the guarded situation, so skipping the call changes nothing.
        """One cluster cycle: writeback completions, wake up and issue ready instructions, accept dispatches."""
        if time >= self._next_completion:
            self._complete_finished(time)
        channel = self.input_channel
        if channel._entries:
            self._drain_input(time)
        issue_queue = self.issue_queue
        if issue_queue._entries:
            self._issue_ready(time)
        issue_queue.occupancy_samples += 1
        issue_queue.occupancy_accum += len(issue_queue._entries)
        channel.occupancy_samples += 1
        channel.occupancy_accum += len(channel._entries)

    # ------------------------------------------------------------ completion
    def _complete_finished(self, now: float) -> None:
        if now < self._next_completion:
            return
        in_flight = self._in_flight
        finished = [instr for instr in in_flight if instr.fu_done <= now]
        if not finished:
            self._refresh_next_completion()
            return
        # Remove the finished operations from the in-flight set *before*
        # processing them: branch resolution below may trigger misprediction
        # recovery, which squashes younger work in this very unit.
        for instr in finished:
            in_flight.remove(instr)
        pending = self._pending
        results = 0
        regfile = self.regfile
        registers = regfile._registers
        domain_name = self.domain_name
        for instr in sorted(finished, key=lambda i: i.seq):
            if instr.squashed:
                continue
            instr.completed = True
            instr.complete_time = now
            self.completed_ops += 1
            phys_dest = instr.phys_dest
            if phys_dest is not None:
                # inline regfile.mark_ready
                reg = registers[phys_dest]
                reg.ready_time = now
                reg.producer_domain = domain_name
                regfile.writes += 1
                results += 1
            if instr.is_branch and self.branch_unit is not None:
                self.branch_unit.resolve(instr.pc, instr.trace.taken,
                                         instr.predicted_taken
                                         if instr.predicted_taken is not None
                                         else False,
                                         instr.trace.target_pc)
                if instr.mispredicted and self.recovery_callback is not None:
                    self.recovery_callback(instr, now)
        if results:
            pending["regfile_write"] += results
            pending["resultbus"] += results
        self._refresh_next_completion()

    def _refresh_next_completion(self) -> None:
        next_completion = float("inf")
        for instr in self._in_flight:
            fu_done = instr.fu_done
            if fu_done < next_completion:
                next_completion = fu_done
        self._next_completion = next_completion

    # ----------------------------------------------------------------- input
    def _drain_input(self, now: float) -> None:
        # Writeback-side intake: drain the dispatch channel in bulk.  Each
        # batch is bounded by the issue queue's free space; squashed items do
        # not occupy a queue slot, so the loop re-probes until the queue is
        # full or the channel has nothing more visible.
        channel = self.input_channel
        pop_bulk = channel.pop_bulk
        is_fifo = channel.counts_as_fifo
        queue = self.issue_queue
        dispatch = queue.dispatch
        entries = queue._entries
        capacity = queue.capacity
        pending = self._pending
        queue_block = self.queue_block
        drained = 0
        while True:
            space = capacity - len(entries)
            if space <= 0:
                break
            batch = pop_bulk(now, space)
            if not batch:
                break
            for instr, wait in batch:
                if is_fifo and wait > 0:
                    instr.fifo_time += wait
                if instr.squashed:
                    self.dropped_squashed += 1
                    continue
                dispatch(instr)
                drained += 1
        if drained:
            pending[queue_block] += drained

    # ----------------------------------------------------------------- issue
    def _issue_ready(self, now: float) -> None:
        issue_queue = self.issue_queue
        if not issue_queue._entries:
            return
        # Queue-level wakeup gate: skip the whole wakeup/select scan when the
        # last complete scan proved nothing becomes visible before gate_time
        # and no result has completed since (regfile.writes unchanged).
        if (issue_queue.gate_stamp == self.regfile.writes
                and now < issue_queue.gate_time):
            return
        functional_units = self.functional_units
        limit = 0
        for busy_until in functional_units._busy_until:
            if busy_until <= now:
                limit += 1
        if limit <= 0:
            return
        if limit > self.issue_width:
            limit = self.issue_width
        ready = issue_queue.ready_instructions(
            now, self.regfile, self.forwarding_latency, limit)
        period = self.clock_period()
        latency_map = self._latency_map
        pending = self._pending
        alu_block = self.alu_block
        queue_block = self.queue_block
        in_flight = self._in_flight
        issued = 0
        loads = 0
        for instr in ready:
            opclass = instr.opclass
            latency_cycles = latency_map[opclass]
            if instr.is_load and self.memory is not None:
                latency_cycles += self.memory.load_access(instr.trace.mem_address or 0)
                loads += 1
            busy_cycles = latency_cycles if opclass in _UNPIPELINED else 1
            if not functional_units.try_claim(now, busy_cycles * period):
                # Ready work is left behind: the gate must not skip it.
                issue_queue.gate_time = -1.0
                break
            # inline issue_queue.remove
            issue_queue._entries.remove(instr)
            issue_queue.issues += 1
            instr.issued = True
            instr.issue_time = now
            completion_time = now + latency_cycles * period
            instr.fu_done = completion_time
            if completion_time < self._next_completion:
                self._next_completion = completion_time
            in_flight.append(instr)
            self.issued_ops += 1
            issued += 1
        if loads:
            pending["dcache"] += loads
        if issued:
            pending[alu_block] += issued
            pending[queue_block] += issued

    # ----------------------------------------------------------------- squash
    def squash_younger_than(self, branch_seq: int) -> int:
        """Remove wrong-path work after a misprediction; returns count removed."""
        squashed_queue = self.issue_queue.squash_younger_than(branch_seq)
        squashed_flight = [i for i in self._in_flight if i.seq > branch_seq]
        for instr in squashed_flight:
            instr.squashed = True
        self._in_flight = [i for i in self._in_flight if i.seq <= branch_seq]
        dropped_channel = self.input_channel.flush(
            lambda i: getattr(i, "seq", -1) > branch_seq)
        return len(squashed_queue) + len(squashed_flight) + dropped_channel

    # ------------------------------------------------------------------ state
    @property
    def in_flight_count(self) -> int:
        """Instructions currently executing in the functional units."""
        return len(self._in_flight)

    def pending_work(self) -> int:
        """Instructions waiting or executing in this cluster (drain check)."""
        return (self.issue_queue.occupancy + len(self._in_flight)
                + self.input_channel.occupancy)
