"""Unit tests for caches, replacement policies and the memory hierarchy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (Cache, CacheGeometry, FIFOPolicy, LRUPolicy, MainMemory,
                          MemoryHierarchy, MemoryHierarchyConfig, RandomPolicy,
                          make_policy)


# ------------------------------------------------------------------- geometry
def test_geometry_sets_and_validation():
    geometry = CacheGeometry(16 * 1024, 4, 32)
    assert geometry.num_sets == 128
    with pytest.raises(ValueError):
        CacheGeometry(0, 1, 32)
    with pytest.raises(ValueError):
        CacheGeometry(1000, 3, 32)  # not a multiple


# ------------------------------------------------------------------- policies
def test_lru_policy_evicts_least_recently_used():
    policy = LRUPolicy(2)
    policy.on_access(0)
    policy.on_access(1)
    policy.on_access(0)
    assert policy.victim([True, True]) == 1


def test_fifo_policy_round_robin():
    policy = FIFOPolicy(2)
    policy.on_fill(0)
    assert policy.victim([True, True]) == 1
    policy.on_fill(1)
    assert policy.victim([True, True]) == 0


def test_policies_prefer_invalid_ways():
    for policy in (LRUPolicy(4), FIFOPolicy(4), RandomPolicy(4)):
        assert policy.victim([True, False, True, True]) == 1


def test_make_policy_factory():
    assert isinstance(make_policy("lru", 2), LRUPolicy)
    assert isinstance(make_policy("fifo", 2), FIFOPolicy)
    assert isinstance(make_policy("random", 2), RandomPolicy)
    with pytest.raises(ValueError):
        make_policy("plru", 2)


# --------------------------------------------------------------------- caches
def test_cache_hit_after_miss():
    cache = Cache("l1", 1024, 2, 32, hit_latency=1,
                  next_level=MainMemory(latency=10))
    first = cache.access(0x100)
    second = cache.access(0x100)
    assert first == 11  # miss: hit latency + memory
    assert second == 1
    assert cache.stats.accesses == 2
    assert cache.stats.misses == 1
    assert cache.stats.hit_rate == pytest.approx(0.5)


def test_same_line_different_word_hits():
    cache = Cache("l1", 1024, 1, 32)
    cache.access(0x200)
    assert cache.access(0x21C) == cache.hit_latency
    assert cache.stats.hits == 1


def test_direct_mapped_conflict_eviction():
    cache = Cache("l1", 1024, 1, 32)
    conflicting = 0x100 + 1024  # same index, different tag
    cache.access(0x100)
    cache.access(conflicting)
    assert cache.stats.evictions == 1
    # original line is gone
    assert not cache.probe(0x100)
    assert cache.probe(conflicting)


def test_dirty_writeback_goes_to_next_level():
    memory = MainMemory(latency=5)
    cache = Cache("l1", 1024, 1, 32, next_level=memory)
    cache.access(0x100, is_write=True)
    cache.access(0x100 + 1024)  # evicts the dirty line
    assert cache.stats.writebacks == 1
    assert memory.writes == 1


def test_lru_within_set():
    cache = Cache("l1", 2 * 32, 2, 32)  # one set, two ways
    cache.access(0)       # way A
    cache.access(32)      # way B
    cache.access(0)       # touch A again
    cache.access(64)      # should evict B (LRU)
    assert cache.probe(0)
    assert not cache.probe(32)


def test_cache_flush_and_reset_stats():
    cache = Cache("l1", 1024, 1, 32)
    cache.access(0x40)
    cache.flush()
    cache.reset_stats()
    assert not cache.probe(0x40)
    assert cache.stats.accesses == 0


# ------------------------------------------------------------------ hierarchy
def test_hierarchy_matches_table3_defaults():
    hierarchy = MemoryHierarchy()
    assert hierarchy.icache.geometry.size_bytes == 16 * 1024
    assert hierarchy.icache.geometry.associativity == 1
    assert hierarchy.dcache.geometry.associativity == 4
    assert hierarchy.l2.geometry.size_bytes == 256 * 1024
    assert hierarchy.l2.hit_latency == 6


def test_hierarchy_miss_latency_composition():
    config = MemoryHierarchyConfig(memory_latency=50)
    hierarchy = MemoryHierarchy(config)
    cold = hierarchy.load_access(0x8000)
    warm = hierarchy.load_access(0x8000)
    assert cold == 1 + 6 + 50
    assert warm == 1
    # the line is now also resident in L2: an L1 conflict that maps elsewhere
    # in L2 would hit there, but the same line re-fetched after an L1 flush
    hierarchy.dcache.flush()
    assert hierarchy.load_access(0x8000) == 1 + 6


def test_hierarchy_config_validation():
    with pytest.raises(ValueError):
        MemoryHierarchyConfig(il1_size=0).validate()
    with pytest.raises(ValueError):
        MemoryHierarchyConfig(memory_latency=-1).validate()


def test_store_accesses_are_counted_separately():
    hierarchy = MemoryHierarchy()
    hierarchy.store_access(0x2000)
    assert hierarchy.dcache.stats.accesses == 1


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=200))
def test_property_cache_counters_consistent(addresses):
    cache = Cache("l1", 4 * 1024, 2, 32, next_level=MainMemory(latency=10))
    for address in addresses:
        cache.access(address)
    stats = cache.stats
    assert stats.hits + stats.misses == stats.accesses == len(addresses)
    assert 0.0 <= stats.miss_rate <= 1.0
    # re-accessing the most recent address must hit
    hits_before = stats.hits
    cache.access(addresses[-1])
    assert cache.stats.hits >= hits_before + 1
