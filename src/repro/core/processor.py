"""Assembly of processor models from declarative clock-domain topologies.

Every machine is built from the same microarchitecture components
(:mod:`repro.uarch`), the same memory hierarchy and the same power models;
what differs between machines -- exactly as in the paper -- is

* the clocking: how the five locally synchronous blocks are partitioned into
  clock domains (a :class:`~repro.core.domains.Topology`), and
* the inter-stage communication: plain pipeline queues inside a clock domain
  vs. mixed-clock FIFOs (with synchronization latency) between domains, plus
  the synchronization delay of results, completions and branch redirects that
  cross domains.

:class:`Processor` assembles one machine from composable per-block builders
driven by the topology: the synchronous baseline is the degenerate one-domain
topology, the paper's GALS machine is the registered five-domain topology,
and every other registered partitioning builds the same way.
:func:`build_processor` is the generic factory; :func:`build_base_processor`
and :func:`build_gals_processor` remain as the two paper-configured shortcuts.
"""

from __future__ import annotations

import dataclasses
import gc
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..isa.trace import ListTraceSource
from ..kernel import get_kernel
from ..memory.hierarchy import MemoryHierarchy
from ..power.accounting import PowerAccountant
from ..power.activity import ActivityCounters
from ..power.blocks import default_block_models, global_clock_block, local_clock_block
from ..sim.channel import Channel, SyncQueue
from ..sim.clock import ClockDomain
from ..sim.engine import SimulationEngine
from ..uarch.branch_predictor import (BranchTargetBuffer, BranchUnit,
                                      make_direction_predictor)
from ..uarch.commit import CommitUnit
from ..uarch.decode import DecodeRenameUnit
from ..uarch.execute import ExecutionUnit, FunctionalUnitPool
from ..uarch.fetch import FetchUnit, RedirectMessage
from ..uarch.instruction import DynamicInstruction
from ..uarch.issue_queue import IssueQueue
from ..uarch.regfile import PhysicalRegisterFile
from ..uarch.rename import RegisterAliasTable
from ..uarch.rob import ReorderBuffer
from ..power.voltage import voltage_for_slowdown
from .config import DEFAULT_CONFIG, ProcessorConfig
from .controllers import CONTROLLER_PRIORITY, DvfsController, EpochTelemetry
from .domains import (BLOCK_LINKS, BLOCKS, DOMAIN_DECODE, DOMAIN_FETCH,
                      DOMAIN_FP, DOMAIN_INTEGER, DOMAIN_MEMORY, GALS_DOMAINS,
                      SYNC_DOMAIN, ClockPlan, Topology, base_block,
                      get_topology, uniform_plan)
from .metrics import SimulationResult, SimulationStats

BASE_PROCESSOR = "base"
GALS_PROCESSOR = "gals"


class _FifoActivityProbe:
    """Per-cycle probe translating FIFO pushes/pops into power-model activity.

    The mixed-clock FIFOs increment one shared counter cell on every push and
    pop, so the probe reads a single integer per cycle instead of re-summing
    the push/pop statistics of every channel.
    """

    def __init__(self, channels: Iterable[Channel], activity: ActivityCounters) -> None:
        self._box = [0]
        for channel in channels:
            if channel.counts_as_fifo:
                channel.attach_transfer_counter(self._box)
        self._fifo_cell = activity.cell("fifo")
        self._last_transfer_count = 0

    def clock_edge(self, cycle: int, time: float) -> None:
        transfers = self._box[0]
        delta = transfers - self._last_transfer_count
        if delta > 0:
            self._last_transfer_count = transfers
            self._fifo_cell[0] += delta


class _DvfsControllerDriver:
    """The control-loop plumbing between a processor and a DvfsController.

    A periodic engine event (period = the control epoch, priority after every
    clock edge sharing its timestamp) samples per-epoch telemetry -- committed
    instructions, IPC in nominal reference cycles, energy, and each tracked
    queue's mean occupancy over the epoch -- hands it to the controller, and
    applies any returned per-block slowdown vector by retiming the affected
    clock domains through :meth:`Processor.retime_domain`.  Every epoch is
    appended to :attr:`trace`, which ends up as ``SimulationResult.dvfs_trace``.
    """

    def __init__(self, processor: "Processor", controller: DvfsController,
                 epoch_ns: float) -> None:
        if epoch_ns <= 0:
            raise ValueError("control epoch must be positive")
        self.processor = processor
        self.controller = controller
        self.epoch_ns = epoch_ns
        self.trace: List[dict] = []
        self._epoch = 0
        self._last_committed = 0
        self._last_energy = 0.0
        #: queues whose occupancy the controller observes; sampled once per
        #: consumer cycle by the pipeline itself, so the per-epoch mean is a
        #: difference of cumulative (accum, samples) counters
        self._queues = {
            "fetch_q": processor.fetch_channel,
            **{f"iq_{instance}": unit.issue_queue
               for instance, unit in processor.exec_units.items()},
        }
        self._last_queue_counters = {name: (0, 0) for name in self._queues}
        topology = processor.topology
        plan = processor.plan
        #: per-block slowdowns currently in force (blocks inherit their
        #: domain's plan slowdown at build time)
        self._block_slowdowns: Dict[str, float] = {
            block: plan.slowdown_of(topology.domain_of(block))
            for block in topology.blocks
        }
        controller.reset()

    # ------------------------------------------------------------- telemetry
    def _sample(self, now: float) -> EpochTelemetry:
        processor = self.processor
        # Epoch boundaries are observation points: replay the deferred energy
        # segments and occupancy runs so the deltas below are exact.
        processor.flush_telemetry()
        committed = processor.stats.committed
        committed_delta = committed - self._last_committed
        self._last_committed = committed
        energy = processor.power.total_energy()
        energy_delta = energy - self._last_energy
        self._last_energy = energy
        occupancy: Dict[str, float] = {}
        for name, queue in self._queues.items():
            accum, samples = queue.occupancy_accum, queue.occupancy_samples
            last_accum, last_samples = self._last_queue_counters[name]
            self._last_queue_counters[name] = (accum, samples)
            delta_samples = samples - last_samples
            occupancy[name] = ((accum - last_accum) / delta_samples
                               if delta_samples else 0.0)
        reference_cycles = self.epoch_ns / processor.plan.base_period
        return EpochTelemetry(
            epoch=self._epoch,
            time_ns=now,
            epoch_ns=self.epoch_ns,
            committed=committed,
            committed_delta=committed_delta,
            ipc=committed_delta / reference_cycles if reference_cycles else 0.0,
            energy_nj=energy,
            energy_delta_nj=energy_delta,
            queue_occupancy=occupancy,
            slowdowns=dict(self._block_slowdowns),
        )

    # -------------------------------------------------------------- decision
    def _apply(self, vector: Dict[str, float]) -> bool:
        """Project a per-block vector onto the topology and retime domains.

        Returns True when at least one domain's clock actually changed.
        """
        processor = self.processor
        topology = processor.topology
        base_period = processor.plan.base_period
        domain_slowdowns: Dict[str, float] = {}
        for block in topology.blocks:
            # Controllers reason in the canonical blocks; replica blocks
            # follow their base block's decision unless addressed directly.
            slowdown = vector.get(block, vector.get(base_block(block), 1.0))
            if slowdown < 1.0:
                raise ValueError(f"controller requested slowdown {slowdown} "
                                 f"< 1.0 for block {block!r}")
            domain = topology.domain_of(block)
            if slowdown > domain_slowdowns.get(domain, 1.0):
                domain_slowdowns[domain] = slowdown
        retimed = False
        for domain_name, domain in processor.domains.items():
            slowdown = domain_slowdowns.get(domain_name, 1.0)
            period = base_period * slowdown
            if period != domain.period:
                processor.retime_domain(domain_name, period, slowdown)
                retimed = True
        if retimed:
            for block in topology.blocks:
                self._block_slowdowns[block] = domain_slowdowns.get(
                    topology.domain_of(block), 1.0)
        return retimed

    def on_epoch(self, _param: object) -> None:
        processor = self.processor
        now = processor.engine.now
        telemetry = self._sample(now)
        vector = self.controller.observe(telemetry)
        retimed = self._apply(dict(vector)) if vector is not None else False
        domains = processor.domains
        base_period = processor.plan.base_period
        self.trace.append({
            "epoch": self._epoch,
            "time_ns": now,
            "committed": telemetry.committed,
            "ipc": telemetry.ipc,
            "energy_nj": telemetry.energy_nj,
            "energy_delta_nj": telemetry.energy_delta_nj,
            "queue_occupancy": dict(telemetry.queue_occupancy),
            "retimed": retimed,
            "slowdowns": {name: domain.period / base_period
                          for name, domain in domains.items()},
            "voltages": {name: domain.voltage
                         for name, domain in domains.items()},
        })
        self._epoch += 1


class Processor:
    """A fully assembled processor model ready to run one workload trace."""

    def __init__(
        self,
        trace: ListTraceSource,
        config: ProcessorConfig = DEFAULT_CONFIG,
        plan: Optional[ClockPlan] = None,
        gals: bool = True,
        workload=None,
        name: Optional[str] = None,
        engine: Optional[SimulationEngine] = None,
        topology: Optional[Union[Topology, str]] = None,
        controller: Optional[DvfsController] = None,
        controller_epoch: float = 0.0,
    ) -> None:
        if topology is None:
            topology = get_topology(GALS_PROCESSOR if gals else BASE_PROCESSOR)
        elif isinstance(topology, str):
            topology = get_topology(topology)
        self.trace = trace
        self.config = config
        self.plan = plan or uniform_plan()
        self.topology = topology
        #: legacy flag: True whenever any block pair is asynchronous
        self.gals = not topology.is_synchronous
        self.workload = workload
        self.kind = topology.kind
        self.name = name or f"{self.kind}-{trace.name}"

        #: engine hot-core kernel backend resolved from the config ("auto"
        #: honours REPRO_BACKEND; "compiled" degrades gracefully to "pure"
        #: when no artifact is importable).  Bit-identical by contract, so
        #: the backend never changes results or results-store cache keys.
        self.kernel = get_kernel(config.backend)
        self.backend = self.kernel.name
        #: injectable for A/B testing scheduler implementations (the
        #: wheel-vs-generic equivalence test and the perf benchmarks)
        self.engine = (engine if engine is not None
                       else SimulationEngine(kernel=self.kernel))
        #: forwarding latencies are pure functions of the clock plan, which
        #: only changes through retime_domain (the online DVFS path); that
        #: method clears this cache -- and the per-unit copies in
        #: CommitUnit/IssueQueue -- so the caches can never go stale within
        #: a run
        self._forwarding_cache: Dict[Tuple[str, str], float] = {}
        #: online DVFS control loop (None = static clocking, today's default)
        self.controller = controller
        self.controller_epoch = controller_epoch
        self._controller_driver: Optional[_DvfsControllerDriver] = None
        self.activity = ActivityCounters()
        self.stats = SimulationStats()
        self.epoch = 0
        self.recoveries = 0
        self._has_run = False

        self._build()

    # ----------------------------------------------------------------- build
    def _build(self) -> None:
        """Assemble the machine from composable per-block builders.

        Every step is driven by ``self.topology``; nothing below branches on
        which particular machine is being built.
        """
        self._build_domains()
        self._build_shared_structures()
        self._build_channels()
        self._build_fetch_block()
        self._build_decode_block()
        self._build_execute_blocks()
        self._register_components()
        self._build_power()
        for domain in self.domains.values():
            domain.bind(self.engine)
        if self.controller is not None:
            if self.controller_epoch <= 0:
                raise ValueError("a DVFS controller needs a positive "
                                 "controller_epoch (ns)")
            self._controller_driver = _DvfsControllerDriver(
                self, self.controller, self.controller_epoch)
            # Fires at the end of every control epoch, after all clock edges
            # sharing the boundary timestamp (CONTROLLER_PRIORITY > 0).
            self.engine.schedule_periodic(
                start=self.controller_epoch,
                period=self.controller_epoch,
                callback=self._controller_driver.on_epoch,
                priority=CONTROLLER_PRIORITY,
                name="dvfs-controller",
            )

    def _build_domains(self) -> None:
        """Instantiate the topology's clock domains and the block->domain map."""
        self.domains: Dict[str, ClockDomain] = self.plan.build_domains(
            self.topology)
        #: logical block name -> the ClockDomain clocking it
        self._block_domains: Dict[str, ClockDomain] = {
            block: self.domains[self.topology.domain_of(block)]
            for block in self.topology.blocks
        }
        #: execution-cluster instance -> the block hosting it, derived from
        #: the topology's dispatch links ("dispatch->int" feeds instance
        #: "int" in block "integer"; replicated topologies add "int2", ...)
        self._cluster_blocks: Dict[str, str] = {
            link_name[len("dispatch->"):]: consumer
            for link_name, _producer, consumer in self.topology.links
            if link_name.startswith("dispatch->")
        }
        #: execution cluster -> clock-domain *name* (decode stamps this on
        #: dispatched instructions so wakeup/commit can price the crossing)
        self._cluster_domains = {
            instance: self.topology.domain_of(block)
            for instance, block in self._cluster_blocks.items()
        }

    def _build_shared_structures(self) -> None:
        """Structures shared by all blocks: memory, registers, ROB, branches."""
        config = self.config
        self.memory = MemoryHierarchy(config.memory)
        self.regfile = PhysicalRegisterFile(config.int_registers, config.fp_registers)
        self.rat = RegisterAliasTable(self.regfile)
        self.rob = ReorderBuffer(config.rob_entries)
        predictor = make_direction_predictor(config.predictor_kind,
                                             config.predictor_entries,
                                             config.predictor_history_bits)
        btb = BranchTargetBuffer(config.btb_entries, config.btb_associativity)
        self.branch_unit = BranchUnit(predictor, btb)

    def _channel_spec(self, link_name: str) -> Tuple[int, Optional[int]]:
        """(capacity, sync_cycles override) for one structural link."""
        config = self.config
        if link_name == "fetch->decode":
            return config.fetch_queue_entries, None
        if link_name.startswith("dispatch->"):
            return config.dispatch_queue_entries, None
        if link_name == "redirect":
            return 4, config.redirect_sync_cycles
        raise KeyError(f"no channel spec for link {link_name!r}")

    def _build_channels(self) -> None:
        """Instantiate every structural link as a queue or mixed-clock FIFO.

        The links are the topology's structural ``links`` (the paper's
        :data:`BLOCK_LINKS` for the canonical machines); whether a link
        becomes a plain pipeline queue or a mixed-clock FIFO follows from
        the topology's assignment of its endpoint blocks.
        """
        block_domains = self._block_domains
        channels: Dict[str, Channel] = {}
        for link_name, producer_block, consumer_block in self.topology.links:
            capacity, sync_cycles = self._channel_spec(link_name)
            channels[link_name] = self._make_channel(
                link_name, capacity,
                block_domains[producer_block], block_domains[consumer_block],
                sync_cycles=sync_cycles)
        self.channels = channels
        self.fetch_channel = channels["fetch->decode"]
        self.redirect_channel = channels["redirect"]
        self.dispatch_channels: Dict[str, Channel] = {
            instance: channels["dispatch->" + instance]
            for instance in self._cluster_blocks
        }
        self.all_channels: List[Channel] = [self.fetch_channel,
                                            self.redirect_channel,
                                            *self.dispatch_channels.values()]

    def _build_fetch_block(self) -> None:
        """Block 1: L1 I-cache access and branch prediction."""
        config = self.config
        fetch_domain = self._block_domains[DOMAIN_FETCH]
        self.fetch_unit = FetchUnit(
            source=self.trace,
            output_channel=self.fetch_channel,
            redirect_channel=self.redirect_channel,
            branch_unit=self.branch_unit,
            memory=self.memory,
            clock_period=lambda: fetch_domain.period,
            activity=self.activity,
            fetch_width=config.fetch_width,
            wrong_path_generator=(self.workload.wrong_path_instruction
                                  if self.workload is not None else None),
        )

    def _build_decode_block(self) -> None:
        """Block 2: decode, rename, register files, dispatch and commit."""
        config = self.config
        decode_domain = self._block_domains[DOMAIN_DECODE]
        self.decode_unit = DecodeRenameUnit(
            input_channel=self.fetch_channel,
            issue_channels=self.dispatch_channels,
            rob=self.rob,
            rat=self.rat,
            regfile=self.regfile,
            clock_period=lambda: decode_domain.period,
            clock=decode_domain.clock,
            current_epoch=lambda: self.epoch,
            activity=self.activity,
            decode_width=config.decode_width,
            dispatch_width=config.dispatch_width,
            decode_stages=config.decode_stages,
            cluster_domains=self._cluster_domains,
            cluster_instances=self._cluster_instances(),
        )
        self.commit_unit = CommitUnit(
            rob=self.rob,
            rat=self.rat,
            regfile=self.regfile,
            memory=self.memory,
            domain_name=decode_domain.name,
            forwarding_latency=self.forwarding_latency,
            activity=self.activity,
            stats=self.stats,
            commit_width=config.commit_width,
        )

    def _cluster_instances(self) -> Dict[str, Tuple[str, ...]]:
        """Cluster kind -> execution-cluster instances, primary first.

        Instance keys are the dispatch-link suffixes ("int", "fp", "mem",
        plus "int2"/"fp2"/... on replicated topologies); the kind of each
        instance follows from its host block's canonical base block.
        """
        kinds = {DOMAIN_INTEGER: "int", DOMAIN_FP: "fp", DOMAIN_MEMORY: "mem"}
        instances: Dict[str, List[str]] = {kind: [] for kind in kinds.values()}
        for instance, block in self._cluster_blocks.items():
            instances[kinds[base_block(block)]].append(instance)
        return {kind: tuple(members) for kind, members in instances.items()}

    def _build_execute_blocks(self) -> None:
        """Blocks 3-5 (and their replicas): the execution clusters.

        One :class:`ExecutionUnit` per dispatch link, in link order, so the
        canonical machines build exactly the historical int/fp/mem trio and
        replicated-cluster topologies append their extra instances after it.
        Only the primary integer cluster carries the branch unit and the
        recovery callback: decode routes every control instruction there, so
        the single redirect link of the paper's machine is unchanged.
        """
        config = self.config
        #: per-kind ExecutionUnit parameterisation (issue queue sizing,
        #: functional units, issue width, power-model blocks)
        cluster_params = {
            "int": dict(entries=config.int_issue_entries,
                        units=("int_alu", config.num_int_alus),
                        issue_width=config.issue_width_int,
                        alu_block="alu_int", unit_name="integer-cluster"),
            "fp": dict(entries=config.fp_issue_entries,
                       units=("fp_alu", config.num_fp_alus),
                       issue_width=config.issue_width_fp,
                       alu_block="alu_fp", unit_name="fp-cluster"),
            "mem": dict(entries=config.mem_issue_entries,
                        units=("mem_port", config.num_mem_ports),
                        issue_width=config.issue_width_mem,
                        alu_block="alu_int", unit_name="memory-cluster"),
        }
        kinds = {DOMAIN_INTEGER: "int", DOMAIN_FP: "fp", DOMAIN_MEMORY: "mem"}
        self.exec_units: Dict[str, ExecutionUnit] = {}
        for instance, block in self._cluster_blocks.items():
            kind = kinds[base_block(block)]
            params = cluster_params[kind]
            domain = self._block_domains[block]
            primary = instance == kind
            queue_block = f"iq_{instance}"
            unit_name = (params["unit_name"] if primary
                         else f"{params['unit_name']}-{instance}")
            pool_name, pool_size = params["units"]
            self.exec_units[instance] = ExecutionUnit(
                name=unit_name,
                domain_name=domain.name,
                issue_queue=IssueQueue(queue_block, params["entries"],
                                       domain.name,
                                       scheme=config.wakeup_scheme),
                input_channel=self.dispatch_channels[instance],
                regfile=self.regfile,
                forwarding_latency=self.forwarding_latency,
                clock_period=lambda d=domain: d.period,
                clock=domain.clock,
                functional_units=FunctionalUnitPool(pool_name, pool_size),
                issue_width=params["issue_width"],
                activity=self.activity,
                alu_block=(params["alu_block"] if primary or kind == "mem"
                           else f"alu_{instance}"),
                queue_block=queue_block,
                branch_unit=self.branch_unit if instance == "int" else None,
                recovery_callback=self._recover if instance == "int" else None,
                memory=self.memory if kind == "mem" else None,
                kernel=self.kernel,
            )

    def _register_components(self) -> None:
        """Register each unit with its domain, in reverse pipeline order.

        Within any one domain, downstream stages must consume before upstream
        stages produce (the standard cycle-accurate simulation idiom), so
        units are registered in the canonical reverse pipeline order; the
        per-domain registration order follows from the topology's assignment.
        """
        block_domains = self._block_domains
        reverse_pipeline = (
            (self.commit_unit, DOMAIN_DECODE),
            *((unit, self._cluster_blocks[instance])
              for instance, unit in self.exec_units.items()),
            (self.decode_unit, DOMAIN_DECODE),
            (self.fetch_unit, DOMAIN_FETCH),
        )
        for unit, block in reverse_pipeline:
            block_domains[block].add_component(unit)
        # The FIFO power probe ticks with the commit/decode domain, after
        # every unit of that domain; a fully synchronous machine has no
        # mixed-clock FIFOs and therefore no probe.
        if any(channel.counts_as_fifo for channel in self.all_channels):
            block_domains[DOMAIN_DECODE].add_component(
                _FifoActivityProbe(self.all_channels, self.activity))

    def _make_channel(self, name: str, capacity: int,
                      producer: ClockDomain, consumer: ClockDomain,
                      sync_cycles: Optional[int] = None) -> Channel:
        """Pipeline queue inside a domain, mixed-clock FIFO across domains.

        Cross-domain channels use the configured FIFO capacity rather than the
        pipeline-queue depth: the mixed-clock FIFO needs enough slack to cover
        the round-trip synchronization latency of its full/empty flags or it
        caps the steady-state bandwidth below the machine width (Section 3.2
        stresses the FIFO's steady-state throughput).
        """
        if producer is consumer:
            return SyncQueue(name, capacity)
        if sync_cycles is None:
            sync_cycles = self.config.fifo_sync_cycles
        # the kernel backend picks the FIFO class: the compiled backend maps
        # synchronizer edges in C (bit-identical arithmetic)
        return self.kernel.fifo_class(
            name, max(capacity, self.config.fifo_capacity),
            producer_clock=producer.clock,
            consumer_clock=consumer.clock,
            consumer_sync=sync_cycles,
            producer_sync=sync_cycles,
        )

    #: power-model block name -> logical block whose clock domain charges it
    _POWER_PLACEMENT: Tuple[Tuple[str, str], ...] = (
        ("icache", DOMAIN_FETCH), ("bpred", DOMAIN_FETCH),
        ("decode", DOMAIN_DECODE), ("rename", DOMAIN_DECODE),
        ("regfile_read", DOMAIN_DECODE), ("regfile_write", DOMAIN_DECODE),
        ("resultbus", DOMAIN_DECODE),
        ("iq_int", DOMAIN_INTEGER), ("alu_int", DOMAIN_INTEGER),
        ("iq_fp", DOMAIN_FP), ("alu_fp", DOMAIN_FP),
        ("iq_mem", DOMAIN_MEMORY), ("dcache", DOMAIN_MEMORY),
        ("l2", DOMAIN_MEMORY),
    )

    def _build_power(self) -> None:
        config = self.config
        block_domains = self._block_domains
        self.power = PowerAccountant(self.activity, config.technology)
        models = default_block_models(
            int_issue_entries=config.int_issue_entries,
            fp_issue_entries=config.fp_issue_entries,
            mem_issue_entries=config.mem_issue_entries,
            int_registers=config.int_registers,
            fp_registers=config.fp_registers,
            il1_size=config.memory.il1_size,
            il1_assoc=config.memory.il1_assoc,
            dl1_size=config.memory.dl1_size,
            dl1_assoc=config.memory.dl1_assoc,
            l2_size=config.memory.l2_size,
            l2_assoc=config.memory.l2_assoc,
            num_int_alus=config.num_int_alus,
            num_fp_alus=config.num_fp_alus,
            machine_width=config.machine_width,
        )
        for name, block in self._POWER_PLACEMENT:
            self.power.register_block(models[name], block_domains[block])
        # Replicated execution clusters carry their own issue-queue and ALU
        # energy models (clones of the canonical ones under the replica's
        # activity-cell names), charged in the replica's clock domain.
        for instance, block in self._cluster_blocks.items():
            if instance in ("int", "fp", "mem"):
                continue
            kind = "fp" if base_block(block) == DOMAIN_FP else "int"
            for model_name in (f"iq_{kind}", f"alu_{kind}"):
                clone = dataclasses.replace(
                    models[model_name],
                    name=model_name.replace(kind, instance, 1))
                self.power.register_block(clone, block_domains[block])
        if self.gals:
            # Any machine with mixed-clock FIFOs pays their energy in the
            # commit/decode domain (where the probe ticks).  The stock model
            # is sized for the full 5-FIFO gals5 complex; a topology with a
            # different crossing count carries proportionally scaled FIFO
            # ports, so its idle cost and utilisation normalisation follow
            # the synchronizer count in both directions.
            fifo_model = models["fifo"]
            num_crossings = len(self.topology.edges())
            if num_crossings != len(BLOCK_LINKS):
                fifo_model = dataclasses.replace(
                    fifo_model,
                    ports=max(1, round(fifo_model.ports * num_crossings
                                       / len(BLOCK_LINKS))))
            self.power.register_block(fifo_model,
                                      block_domains[DOMAIN_DECODE])
        else:
            # The synchronous machine pays for the chip-wide global clock grid.
            self.power.register_block(global_clock_block(),
                                      block_domains[DOMAIN_FETCH])
        # Every machine has one local (major-clock) distribution grid per
        # block, each charged in whatever domain clocks it; replica blocks
        # reuse their canonical block's grid model under a distinct name.
        for block in self.topology.blocks:
            base = base_block(block)
            clock_model = local_clock_block(base)
            if block != base:
                clock_model = dataclasses.replace(clock_model,
                                                  name=f"clock_{block}")
            self.power.register_block(clock_model, block_domains[block])

    # ----------------------------------------------------------- cross-domain
    def forwarding_latency(self, producer_domain: str, consumer_domain: str) -> float:
        """Extra delay (ns) for a result produced in one domain to be usable
        in another.

        Inside a domain (and everywhere in the synchronous machine) this is
        zero -- normal same-cycle/next-cycle bypassing.  Across GALS domains a
        result rides a mixed-clock FIFO: it is captured by the consumer clock
        and synchronized, costing ``fifo_sync_cycles`` consumer cycles plus an
        average half-cycle of arrival misalignment.
        """
        cache = self._forwarding_cache
        key = (producer_domain, consumer_domain)
        latency = cache.get(key)
        if latency is None:
            if producer_domain == consumer_domain:
                latency = 0.0
            else:
                consumer = self.domains.get(consumer_domain)
                if consumer is None:
                    latency = 0.0
                else:
                    latency = self.config.forwarding_sync_cycles * consumer.period
            cache[key] = latency
        return latency

    # ----------------------------------------------------------------- DVFS
    def retime_domain(self, domain_name: str, period: float,
                      slowdown: Optional[float] = None) -> None:
        """Change one domain's clock period (and voltage) during a run.

        This is the machine side of online DVFS: the domain's periodic edge
        chain is re-anchored on its already-scheduled next edge
        (:meth:`~repro.sim.clock.ClockDomain.retime`), the mixed-clock FIFOs
        re-read the mutated clock constants, and every forwarding-latency
        cache derived from the old periods is dropped (this cache plus the
        per-unit copies in the commit unit and the issue queues).  The supply
        voltage follows Equation 1 when the run's plan scales voltages;
        ``slowdown`` defaults to ``period / base_period``.
        """
        domain = self.domains[domain_name]
        # A voltage change must close the deferred accounting run at the old
        # voltage: retiming is one of the accountant's flush points.
        self.power.flush()
        if slowdown is None:
            slowdown = period / self.plan.base_period
        voltage: Optional[float] = None
        if self.plan.scale_voltages:
            voltage = voltage_for_slowdown(slowdown, self.plan.technology)
        domain.retime(period, voltage)
        self._forwarding_cache.clear()
        self.commit_unit._fwd_cache.clear()
        for unit in self.exec_units.values():
            unit.issue_queue._fwd_cache.clear()
        for channel in self.all_channels:
            if channel.counts_as_fifo:
                channel.retime()

    # -------------------------------------------------------------- recovery
    def _recover(self, branch: DynamicInstruction, now: float) -> None:
        """Branch misprediction recovery, initiated at branch resolution."""
        if branch.squashed:
            return
        self.epoch += 1
        self.recoveries += 1
        seq = branch.seq
        squashed = self.rob.squash_younger_than(seq)
        for instr in squashed:
            if instr.phys_dest is not None:
                self.regfile.free(instr.phys_dest)
        if branch.rename_checkpoint is not None:
            self.rat.restore(branch.rename_checkpoint)
        self.decode_unit.squash_younger_than(seq)
        for unit in self.exec_units.values():
            unit.squash_younger_than(seq)
        message = RedirectMessage(epoch=self.epoch, branch_seq=seq,
                                  resume_pc=branch.trace.next_pc())
        if not self.redirect_channel.can_push(now):
            self.redirect_channel.flush()
        self.redirect_channel.push(message, now)

    # ------------------------------------------------------------------- run
    def run(self, max_time_ns: Optional[float] = None) -> SimulationResult:
        """Simulate until the whole trace has committed; return the result."""
        if self._has_run:
            raise RuntimeError("a Processor instance can only run once; "
                               "build a new one for another experiment")
        self._has_run = True
        if self.config.warm_caches:
            self._warm_caches()
        total_instructions = len(self.trace)
        if max_time_ns is None:
            max_time_ns = (total_instructions * 25 + 20_000) * self.plan.base_period

        # Stop exactly at the event during which the last instruction commits
        # -- equivalent to a per-event stop_condition, but paid once per
        # commit instead of once per event.
        self.stats.commit_target = total_instructions
        self.stats.on_target = self.engine.stop
        # The simulation allocates short-lived objects at a rate that makes
        # generational GC sweeps a measurable fraction of the run; disable
        # collection for the (bounded) run and restore afterwards.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self.engine.run(until=max_time_ns)
        finally:
            if gc_was_enabled:
                gc.enable()
        elapsed = (self.stats.last_commit_time if self.stats.committed
                   else self.engine.now)
        return self._collect_result(elapsed)

    def _warm_caches(self) -> None:
        """Pre-warm caches, the branch predictor and the BTB from the trace.

        The paper's experiments run full SPEC/Mediabench programs, so their
        caches and predictors operate in steady state; short synthetic traces
        would otherwise be dominated by cold misses and untrained counters.
        Warming touches each referenced line once, replays every branch
        outcome through the direction predictor and BTB once, and then clears
        the statistics; capacity/conflict misses and genuinely hard-to-predict
        branches still show up during the timed run.

        The warm accesses are a pure function of the trace and the cache line
        size, so they are derived once into an ordered replay plan (shared
        between copies of a memoized trace) and replayed per run without
        re-walking every instruction.
        """
        line = self.memory.config.line_size
        plans = getattr(self.trace, "_warm_plans", None)
        plan = plans.get(line) if plans is not None else None
        if plan is None:
            plan = []
            add_op = plan.append
            seen_code = set()
            seen_data = set()
            add_code = seen_code.add
            add_data = seen_data.add
            for instr in self.trace:
                pc = instr.pc
                code_line = pc // line
                if code_line not in seen_code:
                    add_code(code_line)
                    add_op((0, pc, False, None))
                mem_address = instr.mem_address
                if mem_address is not None:
                    data_line = mem_address // line
                    if data_line not in seen_data:
                        add_data(data_line)
                        add_op((1, mem_address, False, None))
                if instr.is_branch:
                    add_op((2, pc, instr.taken, instr.target_pc))
                elif instr.target_pc is not None and instr.is_control:
                    add_op((3, pc, False, instr.target_pc))
            if plans is not None:
                plans[line] = plan
        fetch_access = self.memory.fetch_access
        load_access = self.memory.load_access
        branch_unit = self.branch_unit
        predict = branch_unit.predict
        resolve = branch_unit.resolve
        btb_update = branch_unit.btb.update
        for kind, address, taken, target in plan:
            if kind == 2:
                predicted, _ = predict(address)
                resolve(address, taken, predicted, target)
            elif kind == 0:
                fetch_access(address)
            elif kind == 1:
                load_access(address)
            else:
                btb_update(address, target)
        self.memory.reset_stats()
        self.branch_unit.predictor.stats = type(self.branch_unit.predictor.stats)()

    def flush_telemetry(self) -> None:
        """Replay all deferred telemetry (energy segments, occupancy runs).

        Called at every observation point -- controller epoch sampling and
        end-of-run collection -- and safe to call at any time: flushing is
        value-preserving, so interleaved flushes never change final results.
        """
        self.power.flush()
        self.fetch_unit.flush_samples()
        self.decode_unit.flush_samples()
        self.commit_unit.flush_samples()
        for unit in self.exec_units.values():
            unit.flush_samples()

    def _collect_result(self, elapsed_ns: float) -> SimulationResult:
        self.flush_telemetry()
        committed = self.stats.committed
        base_period = self.plan.base_period
        reference_cycles = elapsed_ns / base_period if base_period > 0 else 0.0
        fetched = self.fetch_unit.fetched_total
        wrong_path = self.fetch_unit.fetched_wrong_path
        energy = self.power.breakdown(elapsed_ns=elapsed_ns)
        iq_occupancy = {name: unit.issue_queue.mean_occupancy
                        for name, unit in self.exec_units.items()}
        return SimulationResult(
            processor=self.kind,
            benchmark=self.trace.name,
            committed_instructions=committed,
            elapsed_ns=elapsed_ns,
            reference_cycles=reference_cycles,
            ipc=committed / reference_cycles if reference_cycles > 0 else 0.0,
            mean_slip_ns=self.stats.mean_slip,
            mean_fifo_time_ns=self.stats.mean_fifo_time,
            misspeculated_fraction=wrong_path / fetched if fetched else 0.0,
            fetched_instructions=fetched,
            wrong_path_fetched=wrong_path,
            branch_misprediction_rate=self.branch_unit.misprediction_rate,
            icache_miss_rate=self.memory.icache.stats.miss_rate,
            dcache_miss_rate=self.memory.dcache.stats.miss_rate,
            l2_miss_rate=self.memory.l2.stats.miss_rate,
            mean_rob_occupancy=self.stats.mean_rob_occupancy,
            mean_int_regs_in_use=self.stats.mean_int_regs_in_use,
            mean_fp_regs_in_use=self.stats.mean_fp_regs_in_use,
            mean_iq_occupancy=iq_occupancy,
            domain_cycles={name: domain.cycle
                           for name, domain in self.domains.items()},
            domain_voltages={name: domain.voltage
                             for name, domain in self.domains.items()},
            energy=energy,
            recoveries=self.recoveries,
            dvfs_trace=(self._controller_driver.trace
                        if self._controller_driver is not None else None),
        )


# ------------------------------------------------------------------ factories
def build_processor(trace: ListTraceSource,
                    topology: Union[Topology, str] = GALS_PROCESSOR,
                    config: ProcessorConfig = DEFAULT_CONFIG,
                    plan: Optional[ClockPlan] = None,
                    workload=None,
                    engine: Optional[SimulationEngine] = None) -> Processor:
    """Assemble a processor for any registered (or ad-hoc) topology."""
    return Processor(trace, config=config, plan=plan, workload=workload,
                     engine=engine, topology=topology)


def build_base_processor(trace: ListTraceSource,
                         config: ProcessorConfig = DEFAULT_CONFIG,
                         plan: Optional[ClockPlan] = None,
                         workload=None) -> Processor:
    """The fully synchronous baseline (Figure 3a)."""
    return Processor(trace, config=config, plan=plan, gals=False,
                     workload=workload)


def build_gals_processor(trace: ListTraceSource,
                         config: ProcessorConfig = DEFAULT_CONFIG,
                         plan: Optional[ClockPlan] = None,
                         workload=None) -> Processor:
    """The five-clock-domain GALS processor (Figure 3b)."""
    return Processor(trace, config=config, plan=plan, gals=True,
                     workload=workload)
