"""Workload registry: named trace factories for the Scenario subsystem.

Three families of workloads exist and all are addressable by name:

* synthetic profile-driven workloads (:mod:`repro.workloads.synthetic`),
  registered under their benchmark profile name ("perl", "gcc", ...),
* hand-written kernels (:mod:`repro.workloads.kernels`), assembled and
  functionally executed to a real dynamic trace, registered as
  ``kernel:<name>`` ("kernel:dot_product", ...), and
* phase-structured mixes (:mod:`repro.workloads.phased`) that change regime
  mid-run, registered as ``phased:<mix>`` ("phased:intfp-osc", ...).

The registry is what makes scenarios declarative: a scenario stores only the
workload *name* plus its sizing parameters, and :func:`build_workload` turns
that into a concrete trace (plus, for synthetic workloads, the workload
object whose wrong-path generator the fetch unit uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..isa.trace import ListTraceSource
from .kernels import KERNELS
from .phased import PhasedWorkload
from .profiles import PROFILES, WORKLOAD_MIXES
from .synthetic import SyntheticWorkload, make_workload

WORKLOAD_SYNTHETIC = "synthetic"
WORKLOAD_KERNEL = "kernel"
WORKLOAD_PHASED = "phased"

#: Prefix marking kernel workload names in the registry.
KERNEL_PREFIX = "kernel:"

#: Prefix marking phased-mix workload names in the registry.
PHASED_PREFIX = "phased:"


@dataclass(frozen=True)
class WorkloadEntry:
    """One named workload: how to build its trace."""

    name: str
    kind: str            # WORKLOAD_SYNTHETIC, WORKLOAD_KERNEL or WORKLOAD_PHASED
    description: str
    #: (num_instructions, seed, kernel_size) -> (trace, workload object or None)
    factory: Callable[[int, int, int],
                      Tuple[ListTraceSource, Optional[SyntheticWorkload]]]


def _synthetic_factory(name: str):
    def build(num_instructions: int, seed: int, kernel_size: int
              ) -> Tuple[ListTraceSource, Optional[SyntheticWorkload]]:
        workload = make_workload(name, seed=seed)
        return workload.trace(num_instructions), workload
    return build


def _kernel_factory(name: str):
    def build(num_instructions: int, seed: int, kernel_size: int
              ) -> Tuple[ListTraceSource, Optional[SyntheticWorkload]]:
        # Kernels are deterministic programs: the seed does not apply, the
        # problem size does, and num_instructions caps the dynamic trace.
        # The kernel runs to completion under its own (generous) functional
        # limit and the trace is truncated afterwards -- a cap shorter than
        # the program's natural length must shorten the run, not abort it.
        trace = KERNELS[name].trace(kernel_size)
        if len(trace) > num_instructions:
            trace = ListTraceSource(list(trace)[:num_instructions],
                                    name=trace.name)
        return trace, None
    return build


def _phased_factory(name: str):
    def build(num_instructions: int, seed: int, kernel_size: int
              ) -> Tuple[ListTraceSource, Optional[SyntheticWorkload]]:
        workload = PhasedWorkload(WORKLOAD_MIXES[name], seed=seed,
                                  kernel_size=kernel_size)
        trace = workload.trace(num_instructions)
        # The fetch unit only needs a wrong-path generator; hand it the
        # phased workload's (deterministic) delegate so phased runs squash
        # speculative work just like stationary synthetic runs.
        return trace, workload.wrong_path_source()
    return build


WORKLOADS: Dict[str, WorkloadEntry] = {}

for _name, _profile in PROFILES.items():
    WORKLOADS[_name] = WorkloadEntry(
        name=_name, kind=WORKLOAD_SYNTHETIC,
        description=_profile.description,
        factory=_synthetic_factory(_name))

for _name, _kernel in KERNELS.items():
    WORKLOADS[KERNEL_PREFIX + _name] = WorkloadEntry(
        name=KERNEL_PREFIX + _name, kind=WORKLOAD_KERNEL,
        description=_kernel.description,
        factory=_kernel_factory(_name))

# Registered at import time so spawn-pool sweep workers see the same names.
for _name, _mix in WORKLOAD_MIXES.items():
    WORKLOADS[PHASED_PREFIX + _name] = WorkloadEntry(
        name=PHASED_PREFIX + _name, kind=WORKLOAD_PHASED,
        description=_mix.description,
        factory=_phased_factory(_name))


#: Materialised-workload memo: (name, num_instructions, seed, kernel_size)
#: -> (instruction list, workload-or-None, shared warm-plan cache).  Trace
#: synthesis is deterministic and its records are immutable once built, so
#: repeated runs of the same workload (benchmark repeats, sweeps fanning one
#: workload over many topologies/policies) share one materialisation; every
#: hit still gets a *fresh* ListTraceSource, because the source carries the
#: fetch unit's consume position.
_MEMO: Dict[Tuple[str, int, int, int], tuple] = {}
_MEMO_LIMIT = 64


def get_workload_entry(name: str) -> WorkloadEntry:
    """Look up a registered workload by name."""
    try:
        return WORKLOADS[name]
    except KeyError as exc:
        raise KeyError(f"unknown workload {name!r}; known: "
                       f"{', '.join(sorted(WORKLOADS))}") from exc


def available_workloads() -> Tuple[str, ...]:
    """Registered workload names, sorted for stable CLI/doc output."""
    return tuple(sorted(WORKLOADS))


def build_workload(name: str, num_instructions: int, seed: int = 1,
                   kernel_size: int = 64
                   ) -> Tuple[ListTraceSource, Optional[SyntheticWorkload]]:
    """Materialize a registered workload into (trace, workload-or-None).

    Results are memoized per process: the (deterministic) synthesis runs once
    per distinct ``(name, num_instructions, seed, kernel_size)`` and later
    calls reuse the instruction records behind a fresh trace source.
    """
    key = (name, num_instructions, seed, kernel_size)
    memo = _MEMO.get(key)
    if memo is None:
        trace, workload = get_workload_entry(name).factory(
            num_instructions, seed, kernel_size)
        if len(_MEMO) >= _MEMO_LIMIT:
            _MEMO.clear()
        memo = (trace._instructions, trace.name, workload, trace._warm_plans)
        _MEMO[key] = memo
        return trace, workload
    instructions, trace_name, workload, warm_plans = memo
    trace = ListTraceSource(instructions, name=trace_name)
    # cache warming derives a replay plan from the instruction records;
    # share it across copies of the same materialised trace
    trace._warm_plans = warm_plans
    return trace, workload
