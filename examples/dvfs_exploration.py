#!/usr/bin/env python3
"""Multiple-clock / multiple-voltage exploration (paper Section 5.2).

For a chosen benchmark this example:

1. runs the paper's named DVFS policies (generic, perl/gcc cases) as
   declarative scenarios,
2. derives an *application-driven* policy from the benchmark's profile using
   :func:`repro.core.recommend_policy` (the paper's "study the application's
   characteristics" guidance), registers it, and runs it the same way,
3. compares everything against the voltage-scaled synchronous "ideal", and
4. runs the *online* occupancy controller -- the adaptive counterpart that
   discovers the per-domain slack at run time instead of offline -- and
   prints its per-epoch frequency trace and ED² against the static winner.

Usage::

    python examples/dvfs_exploration.py [benchmark] [instructions]

The registered policies are visible from the command line::

    python -m repro list policies
    python -m repro run gals5 --workload gcc --policy generic
"""

import sys

from repro.analysis import dvfs_table
from repro.analysis.report import dvfs_trace_table
from repro.core import (POLICIES, get_policy, recommend_policy,
                        register_policy, run_scenario, selective_slowdown)
from repro.workloads import get_profile


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 1500

    profile = get_profile(benchmark)
    print(f"Benchmark '{benchmark}': {profile.description}")
    print(f"  branches: {profile.branches_per_instruction:.1%} of instructions, "
          f"FP: {profile.fp_fraction:.1%}, "
          f"memory: {profile.load_fraction + profile.store_fraction:.1%}")
    print()

    # Derive an application-driven policy and add it to the registry so it is
    # addressable by name, exactly like the paper's built-in policies.
    recommended = recommend_policy(profile)
    if recommended.name not in POLICIES:
        register_policy(recommended)

    policy_names = ["generic", "perl-fp3", "gals-1", recommended.name]
    results = []
    for name in policy_names:
        policy = get_policy(name)
        print(f"running policy '{policy.name}': {policy.description}")
        voltages = policy.voltages()
        for domain, vdd in sorted(voltages.items()):
            print(f"    {domain:8s} slowdown {policy.slowdowns[domain]:.2f} "
                  f"-> Vdd {vdd:.3f} V")
        results.append(selective_slowdown(benchmark, policy,
                                          num_instructions=instructions))
    print()
    print("=== normalised to the fully synchronous base processor ===")
    print(dvfs_table(results))
    print()
    best = min(results, key=lambda r: r.relative_energy)
    print(f"lowest-energy policy for {benchmark}: '{best.policy}' "
          f"(energy {best.relative_energy:.3f} at performance "
          f"{best.relative_performance:.3f}; ideal synchronous reference "
          f"{best.ideal_energy:.3f})")
    print()

    # The adaptive counterpart: instead of picking slowdowns offline, let the
    # occupancy controller re-bind domain clocks online from queue telemetry.
    print("=== online occupancy controller (adaptive, mid-run DVFS) ===")
    adaptive = run_scenario("gals5", workload=benchmark,
                            num_instructions=instructions,
                            controller="occupancy")
    print(dvfs_trace_table(adaptive))
    def ed2(result):
        """Energy-delay² product (nJ·ns²), lower is better."""
        return result.total_energy_nj * result.elapsed_ns ** 2
    best_static = min((r.gals_result for r in results), key=ed2)
    print(f"ED² adaptive {ed2(adaptive.result):.3g} vs best static "
          f"{ed2(best_static):.3g} "
          f"({'adaptive wins' if ed2(adaptive.result) < ed2(best_static) else 'static wins'})")


if __name__ == "__main__":
    main()
