"""Simulation-core microbenchmark: events/sec and instructions/sec.

Measures, on the current machine:

* **engine alone** -- events/sec driving five periodic clocks with trivial
  callbacks, for the clock-wheel engine, the generic-heap path
  (``use_wheel=False``) and an embedded copy of the *seed* engine (heapq of
  ``dataclass(order=True)`` events), with equal-period (rotation fast path)
  and mixed-period wheels;
* **full runs** -- committed-instructions/sec and events/sec for a complete
  ``run_single`` of the GALS and base machines (workload synthesis, cache
  warming and simulation, exactly what the figure harness pays per run;
  workload synthesis is memoized per process, as it is for the harness),
  plus two fast-path coverage runs: the ``occupancy`` online DVFS controller
  on the paper's gals5 machine (mid-run retiming + epoch telemetry flushes)
  and the non-paper ``fem3`` topology.

Results are appended to ``BENCH_sim_core.json`` next to this file so the
performance trajectory is tracked from the fast-simulation-core PR onward.
Speedups are reported against the recorded seed-tree baseline (measured on
the machine that introduced this benchmark) and against the live embedded
seed engine, which is load-independent.

A third section, **sweep_warm**, times a small multi-scenario sweep through
:func:`repro.core.scenario.sweep_scenarios` with warm-started pool workers
(the parent pre-builds every workload before forking and each worker's
initializer re-warms the memo on spawn platforms) -- the figure-harness
shape, where per-run synthesis cost is amortised across the whole sweep.

Every record is tagged with the engine kernel ``backend`` that produced it
("pure" or "compiled", resolved through :func:`repro.kernel.resolve_backend`);
``check_bench_regression.py`` only baselines records against the same
backend, so compiled-backend CI numbers never gate (or hide regressions in)
the pure-Python trajectory.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_sim_core.py            # full, appends record
    PYTHONPATH=src python benchmarks/bench_sim_core.py --smoke    # sweep_warm only, no append
    PYTHONPATH=src python benchmarks/bench_sim_core.py --backend compiled
    PYTHONPATH=src python benchmarks/bench_sim_core.py --smoke --append  # smoke-tagged record
"""

import argparse
import heapq
import itertools
import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Throughput of the seed tree (commit "v0 seed", pre-optimization), measured
#: with this benchmark's own protocol on the machine that introduced it
#: (2026-07-28, Linux, CPython 3.11).  Used for the recorded-speedup figures.
SEED_BASELINE = {
    "engine_mixed_events_per_sec": 552_787,
    "gals_full_instr_per_sec": 12_519,
    "base_full_instr_per_sec": 19_458,
}

MIXED_CLOCKS = ((1.0, 0.13), (1.0, 0.77), (1.1, 0.40), (1.2, 0.91), (1.5, 0.05))
UNIFORM_CLOCKS = ((1.0, 0.13), (1.0, 0.77), (1.0, 0.40), (1.0, 0.91), (1.0, 0.05))
ENGINE_HORIZON_NS = 20_000.0
FULL_RUN_INSTRUCTIONS = 3000
REPEATS = 5

#: The warm-start sweep: a handful of distinct topologies (plus a controller
#: scenario and a kernel workload, so the sweep is not a single memo entry
#: hit five times) at a size where workload synthesis is a visible fraction
#: of a cold run.
SWEEP_SCENARIOS = ("base", "gals5", "fem3", "memsplit2",
                   "gals5-perl-occupancy", "dotprod-gals5")
SWEEP_INSTRUCTIONS = 1500
SWEEP_JOBS = min(4, os.cpu_count() or 1)
SWEEP_REPEATS = 3


# --------------------------------------------------------------------------
# Embedded copy of the seed engine (heapq + ordered-dataclass events), kept
# verbatim-in-behaviour so the engine-alone comparison measures the scheduler
# swap and nothing else.
# --------------------------------------------------------------------------
_SEED_SEQUENCE = itertools.count()


@dataclass(order=True)
class _SeedEvent:
    time: float
    priority: int = 0
    seq: int = field(default_factory=lambda: next(_SEED_SEQUENCE))
    callback: object = field(compare=False, default=None)
    param: object = field(compare=False, default=None)
    period: object = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)
    name: str = field(compare=False, default="")

    @property
    def is_periodic(self):
        return self.period is not None and self.period > 0.0

    def fire(self):
        if self.callback is not None:
            self.callback(self.param)

    def next_occurrence(self):
        return _SeedEvent(time=self.time + self.period, priority=self.priority,
                          callback=self.callback, param=self.param,
                          period=self.period, name=self.name)


class SeedEngine:
    """The seed repo's event loop: one heap push/pop per clock per cycle."""

    def __init__(self):
        self._queue = []
        self._now = 0.0
        self.events_processed = 0

    @property
    def now(self):
        return self._now

    def schedule_periodic(self, start, period, callback, param=None,
                          priority=0, name=""):
        event = _SeedEvent(time=start, priority=priority, callback=callback,
                           param=param, period=period, name=name)
        heapq.heappush(self._queue, event)
        return event

    def _peek_time(self):
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self):
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.fire()
            self.events_processed += 1
            if event.is_periodic and not event.cancelled:
                heapq.heappush(self._queue, event.next_occurrence())
            return event
        return None

    def run(self, until=None, stop_condition=None):
        while self._queue:
            next_time = self._peek_time()
            if until is not None and next_time is not None and next_time > until:
                self._now = until
                break
            if self.step() is None:
                break
            if stop_condition is not None and stop_condition():
                break
        return self._now


# ------------------------------------------------------------------ measuring
def _best(callable_, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_engine(engine_factory, clocks):
    """Events/sec of an engine ticking ``clocks`` with trivial callbacks."""
    def run_once():
        engine = engine_factory()
        counter = [0]

        def tick(_):
            counter[0] += 1

        for period, phase in clocks:
            engine.schedule_periodic(phase, period, tick)
        engine.run(until=ENGINE_HORIZON_NS)
        return engine.events_processed

    seconds, events = _best(run_once)
    return events / seconds


def bench_full_run(kind):
    """Instructions/sec and events/sec of one complete run_single.

    ``kind`` selects the machine: ``gals``/``base`` (the two paper machines,
    unchanged protocol since the first record), ``gals_controller`` (gals5
    driven by the ``occupancy`` online DVFS controller -- covers the epoch
    flush points and mid-run retiming), ``phased_osc`` (gals5 running the
    oscillating ``phased:intfp-osc`` mix -- covers phased trace synthesis and
    mid-run regime changes), or a plain topology name such as ``fem3`` or
    ``cluster2`` (the replicated-cluster machine with its extra execution
    clusters, channels and clock domains).
    """
    from repro.core.controllers import make_controller
    from repro.core.processor import (Processor, build_base_processor,
                                      build_gals_processor)
    from repro.workloads.registry import build_workload

    state = {}
    workload_name = "phased:intfp-osc" if kind == "phased_osc" else "perl"

    def build(trace, workload):
        if kind == "gals":
            return build_gals_processor(trace, workload=workload)
        if kind == "base":
            return build_base_processor(trace, workload=workload)
        if kind == "gals_controller":
            return Processor(trace, workload=workload, topology="gals5",
                             controller=make_controller("occupancy"),
                             controller_epoch=50.0)
        if kind == "phased_osc":
            return Processor(trace, workload=workload, topology="gals5")
        return Processor(trace, workload=workload, topology=kind)

    def run_once():
        trace, workload = build_workload(workload_name,
                                         FULL_RUN_INSTRUCTIONS, seed=1)
        machine = build(trace, workload)
        result = machine.run()
        state["events"] = machine.engine.events_processed
        return result

    seconds, result = _best(run_once)
    assert result.committed_instructions == FULL_RUN_INSTRUCTIONS
    return {
        "instr_per_sec": FULL_RUN_INSTRUCTIONS / seconds,
        "events_per_sec": state["events"] / seconds,
        "wall_seconds_best": seconds,
    }


def bench_sweep_warm(repeats=SWEEP_REPEATS):
    """Instructions/sec of a warm-started multi-scenario parallel sweep.

    Each repeat pays the full sweep cost -- pool creation, worker warm-start
    initializers, fan-out, result pickling -- exactly what one figure-harness
    sweep pays, so the metric tracks the end-to-end sweep path rather than
    the inner simulation loop alone.
    """
    from repro.core.scenario import sweep_scenarios

    def run_once():
        outcomes = sweep_scenarios(list(SWEEP_SCENARIOS), jobs=SWEEP_JOBS,
                                   num_instructions=SWEEP_INSTRUCTIONS)
        return sum(o.result.committed_instructions for o in outcomes)

    seconds, committed = _best(run_once, repeats=repeats)
    # every synthesized scenario commits the full budget; the assembled
    # dot-product kernel commits its (shorter, deterministic) trace length
    assert committed >= SWEEP_INSTRUCTIONS * (len(SWEEP_SCENARIOS) - 1)
    return {
        "instr_per_sec": committed / seconds,
        "wall_seconds_best": seconds,
        "scenarios": list(SWEEP_SCENARIOS),
        "num_instructions": SWEEP_INSTRUCTIONS,
        "jobs": SWEEP_JOBS,
    }


def _append_record(record):
    """Append ``record`` to the repo-root BENCH_sim_core.json history."""
    output = Path(__file__).resolve().parent.parent / "BENCH_sim_core.json"
    history = []
    if output.exists():
        try:
            history = json.loads(output.read_text())
            if not isinstance(history, list):
                history = [history]
        except ValueError:
            history = []
    history.append(record)
    output.write_text(json.dumps(history, indent=1))
    return output


def main(argv=None):
    from repro.kernel import available_backends, resolve_backend
    from repro.sim.engine import SimulationEngine

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run only the warm-start sweep benchmark (one "
                             "repeat); without --append the record file is "
                             "not touched -- the CI quick check")
    parser.add_argument("--append", action="store_true",
                        help="with --smoke: append a reduced, smoke-tagged "
                             "record (ignored as a regression baseline) so "
                             "CI jobs leave a trajectory point")
    parser.add_argument("--backend", choices=("auto", "pure", "compiled"),
                        default="auto",
                        help="engine kernel backend to benchmark (default: "
                             "auto -- the REPRO_BACKEND environment variable, "
                             "pure otherwise); 'compiled' errors out when no "
                             "compiled artifact is importable rather than "
                             "silently measuring pure Python")
    args = parser.parse_args(argv)

    if args.backend == "compiled" and "compiled" not in available_backends():
        print("error: compiled backend requested but no compiled kernel is "
              "importable; run tools/build_kernel.py first", file=sys.stderr)
        return 2
    backend = resolve_backend(args.backend)
    # Children of the warm-start sweep pool and every engine constructed by
    # the benchmarks resolve their kernel through this variable.
    os.environ["REPRO_BACKEND"] = backend

    if args.smoke:
        print("sweep_warm smoke (%d scenarios x %d instr, %d jobs, %s backend) ..."
              % (len(SWEEP_SCENARIOS), SWEEP_INSTRUCTIONS, SWEEP_JOBS, backend))
        row = bench_sweep_warm(repeats=1)
        print(f"  sweep_warm      {row['instr_per_sec']:>10,.0f} instr/s  "
              f"({row['wall_seconds_best']:.2f}s wall)")
        if args.append:
            record = {
                "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "machine": platform.platform(),
                "python": platform.python_version(),
                "python_minor": "%d.%d" % sys.version_info[:2],
                "backend": backend,
                "smoke": True,
                "sweep_warm": row,
            }
            print(f"wrote {_append_record(record)} (smoke record)")
            return record
        return row

    print("engine-alone microbenchmark (events/sec) ...")
    engine_results = {}
    for label, clocks in (("mixed", MIXED_CLOCKS), ("uniform", UNIFORM_CLOCKS)):
        engine_results[label] = {
            "wheel": bench_engine(lambda: SimulationEngine(use_wheel=True), clocks),
            "generic_heap": bench_engine(
                lambda: SimulationEngine(use_wheel=False), clocks),
            "seed_engine_live": bench_engine(SeedEngine, clocks),
        }
        row = engine_results[label]
        row["wheel_speedup_vs_live_seed"] = row["wheel"] / row["seed_engine_live"]
        print(f"  {label:8s} wheel {row['wheel']:>12,.0f}  "
              f"generic {row['generic_heap']:>12,.0f}  "
              f"seed(live) {row['seed_engine_live']:>12,.0f}  "
              f"speedup {row['wheel_speedup_vs_live_seed']:.2f}x")

    print("full-run benchmark (perl, %d instructions) ..." % FULL_RUN_INSTRUCTIONS)
    full = {kind: bench_full_run(kind)
            for kind in ("gals", "base", "gals_controller", "fem3",
                         "phased_osc", "cluster2")}
    for kind, row in full.items():
        print(f"  {kind:15s} {row['instr_per_sec']:>10,.0f} instr/s  "
              f"{row['events_per_sec']:>12,.0f} events/s")

    print("warm-start sweep benchmark (%d scenarios x %d instr, %d jobs) ..."
          % (len(SWEEP_SCENARIOS), SWEEP_INSTRUCTIONS, SWEEP_JOBS))
    sweep = bench_sweep_warm()
    print(f"  sweep_warm      {sweep['instr_per_sec']:>10,.0f} instr/s  "
          f"({sweep['wall_seconds_best']:.2f}s wall)")

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": platform.platform(),
        "python": platform.python_version(),
        "python_minor": "%d.%d" % sys.version_info[:2],
        "backend": backend,
        "engine_events_per_sec": engine_results,
        "full_run": full,
        "sweep_warm": sweep,
        "seed_baseline": SEED_BASELINE,
        "speedup_vs_seed_baseline": {
            "engine_mixed": (engine_results["mixed"]["wheel"]
                             / SEED_BASELINE["engine_mixed_events_per_sec"]),
            "gals_full_run": (full["gals"]["instr_per_sec"]
                              / SEED_BASELINE["gals_full_instr_per_sec"]),
            "base_full_run": (full["base"]["instr_per_sec"]
                              / SEED_BASELINE["base_full_instr_per_sec"]),
        },
    }

    output = _append_record(record)
    print("speedups vs recorded seed baseline:",
          {key: round(value, 2)
           for key, value in record["speedup_vs_seed_baseline"].items()})
    print(f"wrote {output}")
    return record


if __name__ == "__main__":
    main()
