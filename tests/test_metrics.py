"""Unit tests for simulation statistics, results and comparisons."""

import pytest

from repro.core.metrics import (ComparisonRow, SimulationResult, SimulationStats,
                                arithmetic_mean, compare, geometric_mean)
from repro.isa.instructions import InstructionClass
from repro.isa.trace import TraceInstruction
from repro.uarch.instruction import DynamicInstruction


def make_committed_instruction(fetch_time, commit_time, fifo_time=0.0,
                               opclass=InstructionClass.INT_ALU):
    trace = TraceInstruction(index=0, pc=0x400000, opclass=opclass,
                             is_branch=opclass is InstructionClass.BRANCH)
    instr = DynamicInstruction(trace, epoch=0)
    instr.fetch_time = fetch_time
    instr.commit_time = commit_time
    instr.fifo_time = fifo_time
    return instr


def make_result(processor="base", benchmark="perl", elapsed=1000.0, energy_nj=5000.0,
                slip=10.0, fifo=0.0, misspec=0.1):
    from repro.power.accounting import EnergyBreakdown
    breakdown = EnergyBreakdown(by_block={"alu": energy_nj},
                                by_category={"ALUs": energy_nj},
                                total_energy_nj=energy_nj, elapsed_ns=elapsed)
    return SimulationResult(
        processor=processor, benchmark=benchmark, committed_instructions=1000,
        elapsed_ns=elapsed, reference_cycles=elapsed, ipc=1000 / elapsed,
        mean_slip_ns=slip, mean_fifo_time_ns=fifo,
        misspeculated_fraction=misspec, fetched_instructions=1200,
        wrong_path_fetched=int(1200 * misspec), branch_misprediction_rate=0.05,
        icache_miss_rate=0.01, dcache_miss_rate=0.02, l2_miss_rate=0.2,
        mean_rob_occupancy=20.0, mean_int_regs_in_use=40.0,
        mean_fp_regs_in_use=33.0, energy=breakdown)


def test_stats_record_commit_and_averages():
    stats = SimulationStats()
    stats.record_commit(make_committed_instruction(0.0, 10.0, fifo_time=2.0), 10.0)
    stats.record_commit(make_committed_instruction(5.0, 25.0, fifo_time=4.0), 25.0)
    assert stats.committed == 2
    assert stats.mean_slip == pytest.approx(15.0)
    assert stats.mean_fifo_time == pytest.approx(3.0)
    assert stats.last_commit_time == pytest.approx(25.0)
    assert stats.committed_by_class["int_alu"] == 2


def test_stats_occupancy_sampling():
    stats = SimulationStats()
    stats.sample_occupancy(rob=10, int_regs_in_use=40, fp_regs_in_use=32)
    stats.sample_occupancy(rob=20, int_regs_in_use=50, fp_regs_in_use=34)
    assert stats.mean_rob_occupancy == pytest.approx(15.0)
    assert stats.mean_int_regs_in_use == pytest.approx(45.0)
    assert stats.mean_fp_regs_in_use == pytest.approx(33.0)


def test_result_derived_metrics_and_summary():
    result = make_result(slip=20.0, fifo=5.0)
    assert result.fifo_slip_fraction == pytest.approx(0.25)
    assert result.average_power_w == pytest.approx(5.0)
    assert "perl" in result.summary()


def test_compare_produces_normalised_row():
    base = make_result(elapsed=1000.0, energy_nj=5000.0, slip=10.0, misspec=0.138)
    gals = make_result(processor="gals", elapsed=1111.0, energy_nj=5050.0,
                       slip=16.5, fifo=5.0, misspec=0.167)
    row = compare(base, gals)
    assert row.relative_performance == pytest.approx(1000.0 / 1111.0)
    assert row.performance_drop == pytest.approx(1.0 - 1000.0 / 1111.0)
    assert row.relative_energy == pytest.approx(5050.0 / 5000.0)
    assert row.relative_power == pytest.approx((5050.0 / 1111.0) / (5000.0 / 1000.0))
    assert row.power_saving == pytest.approx(1.0 - row.relative_power)
    assert row.slip_ratio == pytest.approx(1.65)
    assert row.base_misspeculation == pytest.approx(0.138)
    assert row.gals_misspeculation == pytest.approx(0.167)


def test_compare_rejects_mismatched_benchmarks():
    with pytest.raises(ValueError):
        compare(make_result(benchmark="perl"), make_result(benchmark="gcc"))


def test_means():
    assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, -2.0])
    with pytest.raises(ValueError):
        arithmetic_mean([])
