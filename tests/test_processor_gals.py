"""Integration tests: the 5-domain GALS processor and base-vs-GALS behaviour."""

import pytest

from repro.core.config import ProcessorConfig
from repro.core.domains import GALS_DOMAINS, uniform_plan
from repro.core.processor import build_gals_processor
from repro.workloads.synthetic import make_workload


def run_gals(benchmark="perl", instructions=600, plan=None, config=None):
    workload = make_workload(benchmark, seed=1)
    trace = workload.trace(instructions)
    processor = build_gals_processor(trace, workload=workload,
                                     plan=plan or uniform_plan(),
                                     config=config or ProcessorConfig())
    return processor, processor.run()


def test_gals_commits_every_instruction(perl_gals):
    assert perl_gals.processor == "gals"
    assert perl_gals.committed_instructions == 900


def test_gals_has_five_clock_domains(perl_gals):
    assert set(perl_gals.domain_cycles) == set(GALS_DOMAINS)
    for cycles in perl_gals.domain_cycles.values():
        assert cycles > 0


def test_gals_is_slower_than_base(perl_pair):
    assert perl_pair.relative_performance < 1.0
    # the paper reports 5-15% slowdowns; allow a generous band around it
    assert 0.60 < perl_pair.relative_performance < 1.0


def test_gals_per_cycle_power_is_lower(perl_pair):
    assert perl_pair.relative_power < 1.0


def test_gals_energy_is_not_dramatically_lower(perl_pair):
    """The paper's headline: eliminating the global clock does not buy large
    energy savings once the longer run time is accounted for."""
    assert perl_pair.relative_energy > 0.85


def test_gals_spends_time_in_fifos(perl_gals):
    assert perl_gals.mean_fifo_time_ns > 0
    assert 0.0 < perl_gals.fifo_slip_fraction < 0.9


def test_gals_breakdown_has_no_global_clock_but_has_fifos(perl_gals):
    breakdown = perl_gals.energy
    assert breakdown.by_category.get("Global clock", 0.0) == 0.0
    assert breakdown.by_category.get("FIFOs", 0.0) > 0.0
    assert breakdown.by_category.get("Domain clocks", 0.0) > 0.0


def test_gals_speculation_does_not_decrease(perl_pair):
    assert perl_pair.gals_misspeculation >= perl_pair.base_misspeculation - 0.02


def test_gals_slip_grows_for_integer_code(perl_pair):
    assert perl_pair.slip_ratio > 1.0


def test_fpppp_is_least_affected(perl_pair, fpppp_pair):
    """fpppp's tiny branch fraction makes it the least-hit benchmark (Fig. 5)."""
    assert fpppp_pair.relative_performance > perl_pair.relative_performance
    assert fpppp_pair.relative_performance > 0.93


def test_gals_phase_changes_performance_only_slightly():
    _, a = run_gals(instructions=500, plan=uniform_plan(phase_seed=0))
    _, b = run_gals(instructions=500, plan=uniform_plan(phase_seed=3))
    assert a.committed_instructions == b.committed_instructions
    variation = abs(a.elapsed_ns - b.elapsed_ns) / a.elapsed_ns
    assert variation < 0.05


def test_gals_all_domains_at_nominal_voltage_by_default(perl_gals):
    for voltage in perl_gals.domain_voltages.values():
        assert voltage == pytest.approx(1.5)


def test_gals_respects_per_domain_slowdown():
    from repro.core.domains import slowdown_plan
    plan = slowdown_plan({"fp": 2.0}, scale_voltages=True)
    processor, result = run_gals(benchmark="perl", instructions=400, plan=plan)
    assert result.domain_voltages["fp"] < 1.5
    assert result.domain_voltages["integer"] == pytest.approx(1.5)
    # the fp domain ticked roughly half as often as the integer domain
    assert result.domain_cycles["fp"] < 0.7 * result.domain_cycles["integer"]


def test_gals_conservative_fifo_interface_is_slower():
    fast_cfg = ProcessorConfig()
    slow_cfg = ProcessorConfig(fifo_sync_cycles=2, forwarding_sync_cycles=2.0)
    _, fast = run_gals(instructions=400, config=fast_cfg)
    _, slow = run_gals(instructions=400, config=slow_cfg)
    assert slow.elapsed_ns > fast.elapsed_ns
