"""Content-addressed, on-disk store of scenario results.

The store memoizes :func:`~repro.core.scenario.run_scenario`: an entry is a
full :class:`~repro.core.scenario.ScenarioResult` serialized as JSON, filed
under a key that is the SHA-256 of

* the scenario's **canonical JSON** -- every field that influences the
  simulation (topology, workload, policy, seeds, overrides, ...); ``name``
  and ``description`` are pure documentation and excluded, so renaming a
  scenario never forces a recompute -- and
* the **code fingerprint** (:func:`~repro.results.fingerprint.code_fingerprint`),
  so any edit to the simulator invalidates every entry at once.

Identical scenarios are therefore served bit-identically from disk, and a
changed override, seed, topology or source file misses cleanly.  Entries are
written atomically (temp file + ``os.replace``), so concurrent writers -- for
example several sweep processes sharing ``REPRO_CACHE_DIR`` -- can only race
to produce the same bytes.

The store root comes from the ``REPRO_CACHE_DIR`` environment variable and
defaults to ``~/.cache/repro``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import re
import socket
import threading
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..core.domains import get_topology
from ..core.dvfs import get_policy
from ..core.scenario import (Scenario, ScenarioResult, _result_from_dict,
                             _result_to_dict)
from ..exec.faults import inject
from .fingerprint import code_fingerprint

#: Environment variable overriding the default store location.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: Environment variable overriding the claim-lease TTL (seconds).
CLAIM_TTL_ENV_VAR = "REPRO_CLAIM_TTL"

#: Default claim-lease TTL: a claim whose holder has not heartbeat for this
#: long is considered dead and may be broken by any other worker.
DEFAULT_CLAIM_TTL = 60.0

#: Bump when the on-disk entry layout changes; part of every cache key, so a
#: format change invalidates old stores instead of misreading them.
#: (2: entries carry a SHA-256 payload checksum verified on every read.)
STORE_FORMAT = 2

#: Scenario fields that do not influence the simulation.
_METADATA_FIELDS = ("name", "description")

#: Process-wide serial for temp-file names, so concurrent same-key writers
#: (threads share a pid, and a thread id can be recycled) never collide.
_temp_serial = itertools.count()


def _hostname() -> str:
    """This host's name, sanitised for use inside file names."""
    return re.sub(r"[^A-Za-z0-9-]", "-", socket.gethostname()) or "host"


def temp_path_for(path: Path) -> Path:
    """A writer-unique temporary sibling of ``path`` (atomic-publish source).

    The name embeds host + pid + thread id + a process-wide serial, so
    concurrent writers -- other threads, other processes, other *hosts*
    sharing the store over NFS (where pids alone collide) -- never consume
    each other's temp file.
    """
    return path.with_suffix(".tmp.%s.%d.%d.%d" % (
        _hostname(), os.getpid(), threading.get_ident(), next(_temp_serial)))


def default_claim_ttl() -> float:
    """``$REPRO_CLAIM_TTL`` (seconds), else :data:`DEFAULT_CLAIM_TTL`."""
    raw = os.environ.get(CLAIM_TTL_ENV_VAR)
    if raw:
        try:
            return float(raw)
        except ValueError:
            pass
    return DEFAULT_CLAIM_TTL


def payload_checksum(result_payload: Any) -> str:
    """SHA-256 of a result payload's canonical JSON (the integrity field).

    Computed over a canonical re-serialisation (sorted keys, no whitespace)
    so the checksum survives the entry's pretty-printed storage form; floats
    round-trip exactly through :mod:`json`, so verification is exact.
    """
    text = json.dumps(result_payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV_VAR)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


# ----------------------------------------------------------------- cache keys
def canonical_scenario_dict(scenario: Scenario) -> Dict[str, Any]:
    """The scenario's simulation-relevant fields (metadata stripped).

    Topology and policy names are additionally resolved through their
    registries and the *definitions* (block assignment, per-block slowdowns)
    embedded in the payload: re-registering a changed topology or policy
    under the same name therefore changes the key instead of being served a
    stale result.  (Workloads registered at runtime remain identified by
    name only -- the built-in generators are covered by the code
    fingerprint.)
    """
    payload = scenario.to_dict()
    for fieldname in _METADATA_FIELDS:
        payload.pop(fieldname, None)
    # The kernel backend is bit-identical by contract (the differential
    # suite pins it), so a backend override must not change the key: a
    # result computed with the compiled kernel serves pure-Python runs of
    # the same scenario and vice versa.
    config = payload.get("config")
    if isinstance(config, dict):
        config.pop("backend", None)
    try:
        topology = get_topology(scenario.topology)
        payload["topology_definition"] = {
            "assignment": dict(sorted(topology.assignment.items())),
            "random_phases": topology.random_phases,
            "kind": topology.kind,
        }
    except KeyError:
        pass  # unknown name: the run would fail anyway; keep the name key
    if scenario.policy is not None:
        try:
            payload["policy_definition"] = dict(
                sorted(get_policy(scenario.policy).slowdowns.items()))
        except KeyError:
            pass
    return payload


def cache_key(scenario: Scenario, fingerprint: Optional[str] = None) -> str:
    """SHA-256 content address of one (scenario, simulator) pair."""
    if fingerprint is None:
        fingerprint = code_fingerprint()
    payload = json.dumps(
        {"format": STORE_FORMAT, "code": fingerprint,
         "scenario": canonical_scenario_dict(scenario)},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


# -------------------------------------------------------------------- entries
@dataclass(frozen=True)
class CacheEntry:
    """Metadata of one stored result (what ``repro cache ls`` prints)."""

    key: str
    path: Path
    scenario_name: str
    topology: str
    workload: str
    policy: Optional[str]
    fingerprint: str
    created: str
    wall_seconds: float
    size_bytes: int

    @property
    def stale(self) -> bool:
        """True when the entry was produced by a different simulator."""
        return self.fingerprint != code_fingerprint()


@dataclass
class GcStats:
    """Outcome of a ``gc`` pass."""

    removed: int = 0
    kept: int = 0
    bytes_freed: int = 0


@dataclass
class VerifyStats:
    """Outcome of a ``verify`` pass over the stored entries."""

    checked: int = 0
    ok: int = 0
    quarantined: int = 0


@dataclass(frozen=True)
class ClaimInfo:
    """One live claim file's record (what ``repro cache claims`` prints).

    ``age`` is seconds since the holder's last heartbeat; ``expired`` means
    the lease outlived the store's TTL and :meth:`ResultsStore.try_claim`
    will break it on the next contention.
    """

    key: str
    owner: str
    pid: int
    host: str
    created: str
    age: float
    ttl: float

    @property
    def expired(self) -> bool:
        """True when the holder stopped heartbeating for longer than the TTL."""
        return self.age > self.ttl


@dataclass(frozen=True)
class QuarantinedFile:
    """One quarantined file: its resting place, origin kind and reason."""

    path: Path
    kind: str
    reason: str


# ---------------------------------------------------------------------- store
class ResultsStore:
    """Content-addressed store memoizing scenario runs on disk."""

    def __init__(self, root: Optional[Union[str, Path]] = None,
                 fingerprint: Optional[str] = None,
                 claim_ttl: Optional[float] = None) -> None:
        self.root = Path(root).expanduser() if root else default_cache_dir()
        self.fingerprint = fingerprint or code_fingerprint()
        #: lease TTL for claim files (``REPRO_CLAIM_TTL`` unless overridden)
        self.claim_ttl = claim_ttl if claim_ttl is not None \
            else default_claim_ttl()
        #: probe counters for this store instance (reported by the CLI)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------- locations
    @property
    def results_dir(self) -> Path:
        """Directory holding the sharded result entries."""
        return self.root / "results"

    def entry_path(self, key: str) -> Path:
        """On-disk path of one cache key (sharded by the first two hex digits)."""
        return self.results_dir / key[:2] / f"{key}.json"

    def key_for(self, scenario: Scenario) -> str:
        """Cache key of one scenario under this store's code fingerprint."""
        return cache_key(scenario, self.fingerprint)

    # ----------------------------------------------------------------- probes
    def get(self, scenario: Scenario) -> Optional[ScenarioResult]:
        """Load the cached result for ``scenario``, or None on a miss.

        A hit returns a :class:`ScenarioResult` carrying the *requested*
        scenario (names are not part of the key) and the stored simulation
        result, which round-trips bit-identically through JSON.
        """
        loaded = self.get_with_seconds(scenario)
        return loaded[0] if loaded is not None else None

    def get_with_seconds(self, scenario: Scenario
                         ) -> Optional[Tuple[ScenarioResult, float]]:
        """Like :meth:`get`, plus the original compute wall time recorded
        when the entry was stored (what a hit saves)."""
        path = self.entry_path(self.key_for(scenario))
        try:
            inject("store.get")
            payload = json.loads(path.read_text())
            if payload.get("checksum") != payload_checksum(payload["result"]):
                raise ValueError("entry checksum mismatch")
            result = _result_from_dict(payload["result"])
            seconds = float(payload.get("wall_seconds", 0.0))
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # A present-but-unreadable entry is never a plain miss: the file
            # is torn, bit-rotted or foreign.  Quarantine it (so the next
            # probe misses cleanly and recomputes) instead of serving from
            # -- or repeatedly tripping over -- a corrupt file.
            self.quarantine_file(path, kind="entries",
                                 reason=f"{type(exc).__name__}: {exc}")
            self.misses += 1
            return None
        self.hits += 1
        return ScenarioResult(scenario=scenario, result=result), seconds

    def contains(self, scenario: Scenario) -> bool:
        """True when a result for ``scenario`` is already stored."""
        return self.entry_path(self.key_for(scenario)).exists()

    def put(self, outcome: ScenarioResult,
            wall_seconds: float = 0.0) -> str:
        """Store one result; returns its key.  Writes are atomic.

        The entry embeds a SHA-256 checksum of its result payload, verified
        on every :meth:`get` -- a torn or bit-rotted entry is quarantined
        and treated as a miss instead of being served.
        """
        fault = inject("store.put")
        scenario = outcome.scenario
        key = self.key_for(scenario)
        path = self.entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        result_payload = _result_to_dict(outcome.result)
        payload = {
            "format": STORE_FORMAT,
            "key": key,
            "fingerprint": self.fingerprint,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "wall_seconds": wall_seconds,
            "checksum": payload_checksum(result_payload),
            "scenario": scenario.to_dict(),
            "result": result_payload,
        }
        # the temp name must be unique per *writer*, not just per process
        # (or per host: stores can be shared over NFS) -- see temp_path_for
        temporary = temp_path_for(path)
        # not sort_keys: JSON objects keep insertion order, so dict-valued
        # result fields (domain_cycles, ...) reload in their original order
        # and a cached run is indistinguishable from a fresh one
        text = json.dumps(payload, indent=1)
        if fault is not None and fault.action == "torn":
            # injected torn write: publish only the first half of the bytes,
            # as a writer that lost power mid-write would have
            text = text[:len(text) // 2]
        temporary.write_text(text)
        os.replace(temporary, path)
        return key

    # ------------------------------------------------------------------ claims
    @property
    def claims_dir(self) -> Path:
        """Directory holding per-entry claim files (worker coordination)."""
        return self.root / "claims"

    def claim_path(self, key: str) -> Path:
        """On-disk path of one key's claim file."""
        return self.claims_dir / f"{key}.claim"

    def try_claim(self, key: str, owner: str = "") -> bool:
        """Atomically claim ``key`` for computation; False if already claimed.

        The claim is a *leased* JSON record (owner, pid, host, heartbeat)
        created with ``O_CREAT | O_EXCL`` -- the filesystem guarantees
        exactly one concurrent claimer wins, which is what lets several
        worker processes share one store root (the ``subprocess`` job
        backend's coordination substrate) without computing the same
        scenario twice.  The lease is kept alive by
        :meth:`heartbeat_claim`; a claim whose holder stopped heartbeating
        for longer than :attr:`claim_ttl` (a SIGKILLed or powered-off
        worker) is **broken** here, so a dead worker never wedges a job
        forever.  Claims are advisory: :meth:`put` itself stays safe under
        unclaimed concurrent writers (atomic ``os.replace``, last writer
        wins with identical bytes).
        """
        self.claims_dir.mkdir(parents=True, exist_ok=True)
        for attempt in range(2):
            try:
                descriptor = os.open(self.claim_path(key),
                                     os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if attempt or not self._break_expired_claim(key):
                    return False
                continue  # expired lease broken: retry the exclusive create
            with os.fdopen(descriptor, "w") as handle:
                json.dump({"pid": os.getpid(), "owner": owner,
                           "host": _hostname(),
                           "created": time.strftime("%Y-%m-%dT%H:%M:%S")},
                          handle)
            return True
        return False  # pragma: no cover - a third racer won both rounds

    def _break_expired_claim(self, key: str) -> bool:
        """Remove ``key``'s claim iff its lease expired; True when removed.

        The removal is a rename to a breaker-unique name first, so when two
        workers race to break one expired claim exactly one rename succeeds
        -- the loser's rename raises and it reports the claim unbroken.
        """
        info = self.claim_info(key)
        if info is None or not info.expired:
            return False
        wreck = temp_path_for(self.claim_path(key))
        try:
            os.rename(self.claim_path(key), wreck)
        except OSError:
            return False  # lost the break race, or the holder released
        wreck.unlink()
        return True

    def heartbeat_claim(self, key: str) -> bool:
        """Refresh ``key``'s lease; False when the claim no longer exists.

        The heartbeat is the claim file's mtime (``os.utime`` never
        recreates a removed file, so a worker whose lease was broken learns
        it here instead of resurrecting a zombie claim).
        """
        try:
            os.utime(self.claim_path(key))
        except OSError:
            return False
        return True

    def claim_info(self, key: str) -> Optional[ClaimInfo]:
        """The live claim record for ``key`` (None when unclaimed)."""
        path = self.claim_path(key)
        try:
            age = time.time() - path.stat().st_mtime
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            try:  # torn/unreadable claim record: judge it by mtime alone
                age = time.time() - path.stat().st_mtime
            except OSError:
                return None
            record = {}
        return ClaimInfo(key=key, owner=str(record.get("owner", "?")),
                         pid=int(record.get("pid", 0)),
                         host=str(record.get("host", "?")),
                         created=str(record.get("created", "?")),
                         age=age, ttl=self.claim_ttl)

    def list_claims(self) -> List[ClaimInfo]:
        """Every current claim's record (live and expired), sorted by key."""
        if not self.claims_dir.is_dir():
            return []
        found = []
        for path in sorted(self.claims_dir.glob("*.claim")):
            info = self.claim_info(path.stem)
            if info is not None:
                found.append(info)
        return found

    def release_claim(self, key: str) -> None:
        """Drop ``key``'s claim file (no-op when absent)."""
        try:
            self.claim_path(key).unlink()
        except FileNotFoundError:
            pass

    def claimed(self, key: str) -> bool:
        """True while some worker holds a claim on ``key``."""
        return self.claim_path(key).exists()

    # ------------------------------------------------------------- quarantine
    @property
    def quarantine_dir(self) -> Path:
        """Directory receiving corrupt entries and poison jobs."""
        return self.root / "quarantine"

    def quarantine_file(self, path: Path, kind: str, reason: str) -> Path:
        """Move ``path`` into quarantine with a ``.reason`` sidecar.

        ``kind`` buckets the file (``entries`` for store entries, ``jobs``
        for queue files).  Returns the quarantined path; when the file
        vanished first (a racing quarantiner won), returns the intended
        destination anyway.
        """
        target_dir = self.quarantine_dir / kind
        target_dir.mkdir(parents=True, exist_ok=True)
        target = target_dir / path.name
        try:
            os.replace(path, target)
        except FileNotFoundError:
            return target
        try:
            (target_dir / (path.name + ".reason")).write_text(reason + "\n")
        except OSError:  # pragma: no cover - the move itself already landed
            pass
        return target

    def quarantined(self) -> List[QuarantinedFile]:
        """Every quarantined file with its kind and recorded reason."""
        if not self.quarantine_dir.is_dir():
            return []
        found = []
        for path in sorted(self.quarantine_dir.glob("*/*")):
            if path.name.endswith(".reason"):
                continue
            reason_path = path.parent / (path.name + ".reason")
            try:
                reason = reason_path.read_text().strip()
            except OSError:
                reason = "?"
            found.append(QuarantinedFile(path=path, kind=path.parent.name,
                                         reason=reason))
        return found

    def clear_quarantine(self) -> int:
        """Remove every quarantined file; returns the number removed."""
        removed = 0
        for item in self.quarantined():
            reason_path = item.path.parent / (item.path.name + ".reason")
            for path in (item.path, reason_path):
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
            removed += 1
        return removed

    def verify(self) -> VerifyStats:
        """Scan every stored entry; quarantine torn/bit-rotted ones.

        An entry passes when it parses as JSON and its embedded checksum
        matches a recomputation over the result payload.  Entries from
        other code fingerprints are still *verified* (their bytes must be
        sound) but are ``gc``'s business, not corruption.
        """
        stats = VerifyStats()
        for path in list(self._entry_files()):
            stats.checked += 1
            try:
                payload = json.loads(path.read_text())
                if (payload.get("checksum")
                        != payload_checksum(payload["result"])):
                    raise ValueError("entry checksum mismatch")
            except (OSError, ValueError, KeyError, TypeError) as exc:
                self.quarantine_file(path, kind="entries",
                                     reason=f"{type(exc).__name__}: {exc}")
                stats.quarantined += 1
                continue
            stats.ok += 1
        return stats

    # -------------------------------------------------------------- inventory
    def _entry_files(self) -> Iterator[Path]:
        if not self.results_dir.is_dir():
            return iter(())
        return self.results_dir.glob("*/*.json")

    def entries(self) -> List[CacheEntry]:
        """Metadata of every stored entry, newest first."""
        found = []
        for path in self._entry_files():
            try:
                payload = json.loads(path.read_text())
                scenario = payload["scenario"]
                found.append(CacheEntry(
                    key=payload["key"],
                    path=path,
                    scenario_name=scenario.get("name", "?"),
                    topology=scenario.get("topology", "?"),
                    workload=scenario.get("workload", "?"),
                    policy=scenario.get("policy"),
                    fingerprint=payload.get("fingerprint", "?"),
                    created=payload.get("created", "?"),
                    wall_seconds=float(payload.get("wall_seconds", 0.0)),
                    size_bytes=path.stat().st_size,
                ))
            except (OSError, ValueError, KeyError, TypeError):
                continue
        found.sort(key=lambda entry: entry.created, reverse=True)
        return found

    # ------------------------------------------------------------ maintenance
    def gc(self) -> GcStats:
        """Drop entries from other simulator versions (and unreadable files)."""
        stats = GcStats()
        for path in list(self._entry_files()):
            try:
                fingerprint = json.loads(path.read_text()).get("fingerprint")
            except (OSError, ValueError):
                fingerprint = None
            if fingerprint == self.fingerprint:
                stats.kept += 1
                continue
            stats.bytes_freed += path.stat().st_size
            path.unlink()
            stats.removed += 1
        return stats

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for path in list(self._entry_files()):
            path.unlink()
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResultsStore(root={str(self.root)!r}, "
                f"fingerprint={self.fingerprint!r})")


#: Sentinel distinguishing "not passed" from an explicit ``None``.
_UNSET: Any = object()


def resolve_store(store: Union[bool, str, Path, ResultsStore, None] = None,
                  cache: Any = _UNSET) -> Optional[ResultsStore]:
    """Normalise a ``store=`` argument into a store (or None when disabled).

    ``True`` means the default store, a string/path names a store root, an
    existing :class:`ResultsStore` passes through, ``None``/``False`` disable
    caching.  ``cache=`` is the deprecated spelling of the same argument and
    raises a :class:`DeprecationWarning`.
    """
    if cache is not _UNSET:
        warnings.warn("resolve_store(cache=...) is deprecated; pass store=",
                      DeprecationWarning, stacklevel=2)
        store = cache
    if store is None or store is False:
        return None
    if store is True:
        return ResultsStore()
    if isinstance(store, ResultsStore):
        return store
    return ResultsStore(root=store)
