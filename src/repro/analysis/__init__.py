"""Result analysis: the Table-1 clock-skew case study, tables and ASCII charts."""

from .clock_skew import (CLOCK_SKEW_CASES, ClockSkewCase, clock_skew_table,
                         projected_skew_fraction, skew_trend)
from .report import (ascii_bar, bar_chart, breakdown_table,
                     design_space_records, design_space_table, dvfs_table,
                     energy_power_table, misspeculation_table,
                     performance_table, phase_resolved_table,
                     phase_trace_records, scenario_table,
                     slip_breakdown_table, slip_table)

__all__ = [
    "CLOCK_SKEW_CASES",
    "ClockSkewCase",
    "ascii_bar",
    "bar_chart",
    "breakdown_table",
    "clock_skew_table",
    "design_space_records",
    "design_space_table",
    "dvfs_table",
    "energy_power_table",
    "misspeculation_table",
    "performance_table",
    "phase_resolved_table",
    "phase_trace_records",
    "projected_skew_fraction",
    "scenario_table",
    "skew_trend",
    "slip_breakdown_table",
    "slip_table",
]
