#!/usr/bin/env python3
"""Run a real (assembled and functionally executed) kernel on both machines.

The profile-driven synthetic workloads reproduce the paper's figures, but the
library also runs genuine programs: kernels written in the small RISC ISA are
registered in the workload registry as ``kernel:<name>``, so a declarative
scenario can run them on any topology.  This example assembles one kernel,
shows its listing, and feeds its dynamic trace to the synchronous and GALS
timing models through the scenario path.

Usage::

    python examples/kernel_on_gals.py [kernel] [size]

Kernels: vector_sum, dot_product, saxpy, matmul, fibonacci, string_search.
The same runs are available from the command line::

    python -m repro run dotprod-gals5 --kernel-size 96
"""

import sys
from dataclasses import replace

from repro import Scenario, compare, run_scenario
from repro.workloads import get_kernel


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "dot_product"
    size = int(sys.argv[2]) if len(sys.argv) > 2 else 120

    kernel = get_kernel(name)
    program, memory = kernel.build(size)
    print(f"Kernel '{name}' ({kernel.description}), size {size}: "
          f"{len(program)} static instructions")
    print()
    print(program.listing())
    print()

    trace = kernel.trace(size)
    print(f"dynamic trace: {len(trace)} instructions")

    scenario = Scenario(name=f"{name}-example", topology="base",
                        workload=f"kernel:{name}", kernel_size=size,
                        num_instructions=len(trace),
                        description="kernel example run")
    base = run_scenario(scenario).result
    gals = run_scenario(replace(scenario, topology="gals5")).result
    row = compare(base, gals)

    print()
    print(base.summary())
    print()
    print(gals.summary())
    print()
    print(f"GALS relative performance: {row.relative_performance:.3f}")
    print(f"GALS relative energy:      {row.relative_energy:.3f}")
    print(f"GALS relative power:       {row.relative_power:.3f}")
    print()
    print(f"note: kernels with FP work exercise the fp cluster; integer "
          f"kernels leave it idle at 10% power, which is what the "
          f"application-driven DVFS policies exploit.")


if __name__ == "__main__":
    main()
