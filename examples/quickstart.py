#!/usr/bin/env python3
"""Quickstart: compare the synchronous and GALS processors on one benchmark.

Runs the same workload through two declarative scenarios -- the one-domain
'base' topology and the paper's five-domain 'gals5' topology -- with all
clocks at the same frequency (the paper's first experiment set) and prints
the headline metrics: relative performance, energy, power, slip and
mis-speculation.

Usage::

    python examples/quickstart.py [benchmark] [instructions]

The same runs are available from the command line::

    python -m repro run base --workload perl
    python -m repro run gals5 --workload perl
"""

import sys

from repro import compare, run_scenario
from repro.analysis import bar_chart


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "perl"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 2000

    print(f"Running the 'base' and 'gals5' scenarios on '{benchmark}' "
          f"({instructions} instructions)...")
    base = run_scenario("base", workload=benchmark,
                        num_instructions=instructions).result
    gals = run_scenario("gals5", workload=benchmark,
                        num_instructions=instructions).result
    row = compare(base, gals)

    print()
    print(base.summary())
    print()
    print(gals.summary())
    print()
    print(bar_chart(
        {
            "relative performance": row.relative_performance,
            "relative energy": row.relative_energy,
            "relative power": row.relative_power,
        },
        title=f"GALS vs base ({benchmark}), 1.0 = synchronous baseline",
        maximum=1.2,
    ))
    print()
    print(f"performance drop : {row.performance_drop:7.1%}   (paper average: ~10%)")
    print(f"power saving     : {row.power_saving:7.1%}   (paper average: ~10%)")
    print(f"energy change    : {row.energy_increase:+7.1%}   (paper average: +1%)")
    print(f"slip             : {row.base_slip_ns:.1f} ns -> {row.gals_slip_ns:.1f} ns "
          f"({row.gals_fifo_slip_fraction:.0%} of GALS slip inside FIFOs)")
    print(f"mis-speculation  : {row.base_misspeculation:.1%} -> "
          f"{row.gals_misspeculation:.1%} of fetched instructions")


if __name__ == "__main__":
    main()
