"""Switching-capacitance / per-access energy models (Wattch-style).

Wattch models the power of a superscalar processor by attaching an effective
switching capacitance to each macro block (array structures, CAMs, ALUs,
result buses, clock network) and charging ``C * Vdd^2`` per access.  The exact
Cacti-derived capacitance tables of Wattch target a 0.35 um Alpha-like design
and are not reproducible here, so this module provides *parametric* models:

* per-access energies scale with structure size, associativity and port count
  following the usual Cacti trends (roughly ``bits^0.6`` for RAM arrays,
  linear in entries for CAM match lines, linear in area for clock grids);
* the absolute calibration constants are chosen so that the default Table-3
  configuration reproduces a 21264/Wattch-like chip-level breakdown -- in
  particular a global clock grid around 10-12 % of chip power, total clock
  power around a third, and cache/queue/regfile/ALU shares in Wattch's
  reported proportions.  EXPERIMENTS.md records the resulting breakdown.

All energies are in nanojoules per access at the nominal supply voltage.
"""

from __future__ import annotations

import math

from .technology import DEFAULT_TECHNOLOGY, TechnologyParameters

# --------------------------------------------------------------------------
# Calibration constants (nJ).  See module docstring.
# --------------------------------------------------------------------------
#: RAM array energy for a 16 KB single-ported direct-mapped array.
_ARRAY_REFERENCE_ENERGY = 1.6
_ARRAY_REFERENCE_BITS = 16 * 1024 * 8
#: CAM energy per access for a 20-entry, 8-byte-tag issue window.
_CAM_REFERENCE_ENERGY = 0.55
_CAM_REFERENCE_ENTRIES = 20
#: Combinational blocks.
_INT_ALU_ENERGY = 0.60
_FP_ALU_ENERGY = 0.95
_DECODE_ENERGY_PER_INST = 0.22
_RENAME_ENERGY_PER_INST = 0.27
_RESULT_BUS_ENERGY = 0.30
_FIFO_ENERGY_PER_TRANSFER = 0.08
#: Clock grids: energy per cycle per mm^2 of gridded area (includes the
#: drivers).  The global grid spans the whole die; the local (major-clock)
#: grids cover their blocks only.
_CLOCK_GRID_ENERGY_PER_MM2 = 0.0165
#: Die and per-domain areas (mm^2), loosely following the published 21264
#: floorplan proportions.
DIE_AREA_MM2 = 120.0
DOMAIN_AREAS_MM2 = {
    "fetch": 18.0,
    "decode": 26.0,
    "integer": 24.0,
    "fp": 22.0,
    "memory": 30.0,
}


def scale_voltage(energy_nj: float, vdd: float,
                  tech: TechnologyParameters = DEFAULT_TECHNOLOGY) -> float:
    """Scale a nominal-voltage energy to supply voltage ``vdd``."""
    return energy_nj * (vdd / tech.nominal_vdd) ** 2


def array_access_energy(size_bytes: int, associativity: int = 1,
                        ports: int = 1, bits_per_entry: int = 8) -> float:
    """Per-access energy (nJ) of a RAM array (cache, register file, table).

    Follows the Cacti trend of sub-linear growth with capacity, a penalty for
    reading multiple ways in parallel, and a cost per extra port.
    """
    if size_bytes <= 0 or associativity <= 0 or ports <= 0:
        raise ValueError("array parameters must be positive")
    bits = size_bytes * 8
    size_factor = (bits / _ARRAY_REFERENCE_BITS) ** 0.6
    way_factor = 1.0 + 0.35 * (associativity - 1) ** 0.7
    port_factor = math.sqrt(ports)
    return _ARRAY_REFERENCE_ENERGY * size_factor * way_factor * port_factor


def cam_access_energy(entries: int, tag_bits: int = 64, ports: int = 1) -> float:
    """Per-access energy (nJ) of a CAM structure (issue-window wakeup)."""
    if entries <= 0 or tag_bits <= 0 or ports <= 0:
        raise ValueError("CAM parameters must be positive")
    entry_factor = entries / _CAM_REFERENCE_ENTRIES
    tag_factor = tag_bits / 64
    return _CAM_REFERENCE_ENERGY * entry_factor * tag_factor * math.sqrt(ports)


def regfile_access_energy(entries: int = 72, bits: int = 64,
                          read_ports: int = 8, write_ports: int = 4) -> float:
    """Per-access energy (nJ) of a multiported register file."""
    size_bytes = entries * bits // 8
    ports = read_ports + write_ports
    return array_access_energy(size_bytes, associativity=1, ports=ports) * 0.45


def alu_energy(is_fp: bool) -> float:
    """Per-operation energy (nJ) of an integer or FP functional unit."""
    return _FP_ALU_ENERGY if is_fp else _INT_ALU_ENERGY


def decode_energy(width: int = 1) -> float:
    """Per-instruction decode energy (nJ)."""
    return _DECODE_ENERGY_PER_INST * width


def rename_energy(width: int = 1) -> float:
    """Per-instruction rename (map-table + free-list) energy (nJ)."""
    return _RENAME_ENERGY_PER_INST * width


def result_bus_energy() -> float:
    """Per-result energy (nJ) of driving the result/bypass bus."""
    return _RESULT_BUS_ENERGY


def fifo_transfer_energy() -> float:
    """Energy (nJ) per push or pop of a mixed-clock FIFO entry."""
    return _FIFO_ENERGY_PER_TRANSFER


def clock_grid_energy_per_cycle(area_mm2: float, density: float = 1.0) -> float:
    """Per-cycle energy (nJ) of a clock grid covering ``area_mm2``.

    ``density`` scales the metal/grid density relative to the 21264-like
    reference (the global grid uses 1.0; lighter local grids may use less).
    """
    if area_mm2 <= 0 or density <= 0:
        raise ValueError("clock grid parameters must be positive")
    return _CLOCK_GRID_ENERGY_PER_MM2 * area_mm2 * density


def global_clock_grid_energy() -> float:
    """Per-cycle energy (nJ) of the chip-wide global clock grid."""
    return clock_grid_energy_per_cycle(DIE_AREA_MM2, density=1.0)


def local_clock_grid_energy(domain: str) -> float:
    """Per-cycle energy (nJ) of one domain's local clock grid."""
    try:
        area = DOMAIN_AREAS_MM2[domain]
    except KeyError as exc:
        raise KeyError(f"unknown clock domain {domain!r}; known: "
                       f"{', '.join(sorted(DOMAIN_AREAS_MM2))}") from exc
    return clock_grid_energy_per_cycle(area, density=1.35)
