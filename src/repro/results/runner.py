"""Cache-aware scenario execution: memoized runs and resumable sweeps.

:func:`resume_sweep` is the sweep engine behind ``repro sweep --cache`` and
``repro report compare``: scenarios already in the store load from disk, only
the missing ones fan out over a pluggable :class:`~repro.exec.JobBackend`
(the warm-started local process pool by default; ``serial`` and the
store-coordinated ``subprocess`` fabric are one
:class:`~repro.exec.ExecutionConfig` away), and every freshly computed
result is stored immediately -- so an interrupted sweep resumes where it
stopped, and a repeated sweep is served entirely from cache.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple, Union

from ..core.scenario import (Scenario, ScenarioResult, resolve_scenarios,
                             workload_specs)
from ..exec import (ExecutionConfig, UNSET, make_job_backend,
                    resolve_execution, timed_run_scenario)
from .store import ResultsStore, resolve_store

__all__ = ["SweepRun", "hit_rate", "resume_sweep", "run_cached",
           "timed_run_scenario"]


@dataclass
class SweepRun:
    """One sweep slot: the result plus where it came from.

    ``seconds`` is the simulation wall time for computed slots and the time
    the original (stored) computation took for cached ones -- so a hit's
    entry shows what the cache saved, not the microseconds the load took.
    """

    outcome: ScenarioResult
    cached: bool
    key: str
    seconds: float

    @property
    def status(self) -> str:
        """'cached' when the result was served from the store, else 'computed'."""
        return "cached" if self.cached else "computed"


def _normalise_store(store: Any, cache: Any) -> Any:
    """Fold the deprecated ``cache=`` spelling into ``store=`` (warning)."""
    if cache is not UNSET:
        warnings.warn("the cache= parameter is deprecated; use store=",
                      DeprecationWarning, stacklevel=3)
        if store is UNSET:
            store = cache
    return store


def run_cached(scenario: Union[Scenario, str],
               store: Union[bool, str, ResultsStore, None] = UNSET,
               cache: Any = UNSET,
               **overrides) -> SweepRun:
    """Run one scenario through the store (compute-and-store on a miss).

    ``store`` accepts everything :func:`~repro.results.store.resolve_store`
    does and defaults to the default store; ``cache=`` is the deprecated
    alias.
    """
    store = _normalise_store(store, cache)
    if store is UNSET:
        store = True
    (scenario,) = resolve_scenarios([scenario], overrides)
    resolved_store = resolve_store(store)
    if resolved_store is not None:
        hit = resolved_store.get_with_seconds(scenario)
        if hit is not None:
            return SweepRun(outcome=hit[0], cached=True,
                            key=resolved_store.key_for(scenario),
                            seconds=hit[1])
    outcome, seconds = timed_run_scenario(scenario)
    key = ""
    if resolved_store is not None:
        key = resolved_store.put(outcome, wall_seconds=seconds)
    return SweepRun(outcome=outcome, cached=False, key=key, seconds=seconds)


def resume_sweep(scenarios: Sequence[Union[Scenario, str]],
                 store: Union[bool, str, ResultsStore, None] = UNSET,
                 jobs: Optional[int] = None,
                 execution: Union[ExecutionConfig, str, None] = None,
                 cache: Any = UNSET,
                 **overrides) -> List[SweepRun]:
    """Sweep many scenarios, loading hits from the store, computing misses.

    Results come back in submission order either way, and computed slots are
    bit-identical to a plain uncached :func:`sweep_scenarios` (every backend
    funnels through :func:`run_scenario`).  With ``store=None`` every slot
    is computed -- the per-scenario timing/status bookkeeping still applies,
    which is what the CLI prints for uncached sweeps.

    ``execution`` selects the job backend (an :class:`ExecutionConfig` or a
    bare backend name: ``"serial"``, ``"local"``, ``"subprocess"``);
    explicit ``store=``/``jobs=`` keywords override the corresponding
    config fields.  ``cache=`` is the deprecated alias of ``store=``.
    """
    resolved = resolve_scenarios(scenarios, overrides)
    config = resolve_execution(execution, store=store, jobs=jobs, cache=cache,
                               default_store=True)
    resolved_store = config.resolve_store()

    slots: List[Optional[SweepRun]] = [None] * len(resolved)
    missing: List[Tuple[int, Scenario]] = []
    for index, scenario in enumerate(resolved):
        if resolved_store is not None:
            hit = resolved_store.get_with_seconds(scenario)
            if hit is not None:
                slots[index] = SweepRun(
                    outcome=hit[0], cached=True,
                    key=resolved_store.key_for(scenario),
                    seconds=hit[1])
                continue
        missing.append((index, scenario))

    if missing:
        _compute_and_store(missing, slots, resolved_store, config)

    return [slot for slot in slots if slot is not None]


def _compute_and_store(missing: Sequence[Tuple[int, Scenario]],
                       slots: List[Optional[SweepRun]],
                       store: Optional[ResultsStore],
                       execution: ExecutionConfig) -> None:
    """Compute the missing slots, persisting each result *as it completes*.

    Storing per-completion (not after the whole backend drains) is what
    makes an interrupted sweep resumable: killing the process loses at most
    the runs still in flight, and the re-run picks up every finished one
    from the store.  Exceptions raised by a scenario itself propagate
    unchanged (the backend contract); only pool-infrastructure failures and
    worker-side registry misses are retried in-process by the backends.
    """
    backend = make_job_backend(execution, store)
    scenarios = [scenario for _, scenario in missing]
    try:
        if execution.warm_start:
            backend.warm(workload_specs(scenarios))
        handles = backend.submit(scenarios)
        remaining = len(handles)
        while remaining:
            completed = backend.poll()
            if not completed and not any(
                    not handle.done for handle in handles):
                break  # defensive: backend reports nothing left pending
            for handle in completed:
                index = missing[handle.index][0]
                key = handle.stored_key or ""
                if store is not None and handle.stored_key is None:
                    key = store.put(handle.outcome,
                                    wall_seconds=handle.seconds)
                slots[index] = SweepRun(outcome=handle.outcome, cached=False,
                                        key=key, seconds=handle.seconds)
                remaining -= 1
    finally:
        backend.cancel()


def hit_rate(runs: Sequence[SweepRun]) -> float:
    """Fraction of sweep slots served from the store."""
    if not runs:
        return 0.0
    return sum(run.cached for run in runs) / len(runs)
