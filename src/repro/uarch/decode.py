"""Decode, rename and dispatch (clock domain 2, pipeline stages 2-4).

Instructions arriving from the fetch channel are decoded, spend
``decode_stages`` cycles in the decode/rename pipeline (Table 2 lists decode,
rename/regfile-read and dispatch as separate stages), are renamed in program
order, allocated a ROB entry, and dispatched into the issue channel of the
cluster that will execute them (integer, floating point, or memory).

Instructions from a stale epoch -- wrong-path instructions that the fetch unit
kept producing while the redirect message was still in flight -- are dropped
here; they have already consumed fetch bandwidth and FIFO slots, which is
exactly the wasted speculative work the paper attributes to the GALS design.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from ..isa.instructions import InstructionClass
from ..sim.channel import Channel
from .instruction import DynamicInstruction
from .rename import RegisterAliasTable
from .regfile import PhysicalRegisterFile
from .rob import ReorderBuffer


def cluster_for(opclass: InstructionClass) -> str:
    """Which execution cluster ('int', 'fp', 'mem') runs this class."""
    if opclass.is_memory:
        return "mem"
    if opclass.is_fp:
        return "fp"
    return "int"


class DecodeRenameUnit:
    """Decode + rename + dispatch stage group."""

    def __init__(
        self,
        input_channel: Channel,
        issue_channels: Dict[str, Channel],
        rob: ReorderBuffer,
        rat: RegisterAliasTable,
        regfile: PhysicalRegisterFile,
        clock_period: Callable[[], float],
        current_epoch: Callable[[], int],
        activity,
        decode_width: int = 4,
        dispatch_width: int = 4,
        decode_stages: int = 2,
        cluster_domains: Optional[Dict[str, str]] = None,
    ) -> None:
        self.input_channel = input_channel
        self.issue_channels = issue_channels
        #: cluster name ('int'/'fp'/'mem') -> clock-domain name executing it
        self.cluster_domains = cluster_domains or {"int": "int", "fp": "fp",
                                                   "mem": "mem"}
        self.rob = rob
        self.rat = rat
        self.regfile = regfile
        self.clock_period = clock_period
        self.current_epoch = current_epoch
        self.activity = activity
        self.decode_width = decode_width
        self.dispatch_width = dispatch_width
        self.decode_stages = decode_stages
        #: instructions inside the decode/rename pipeline: (ready_time, instr).
        #: Bounded like a real pipe: one decode group per decode stage.
        self.pipeline_capacity = decode_stages * decode_width
        self._pipeline: Deque[Tuple[float, DynamicInstruction]] = deque()
        # statistics
        self.decoded = 0
        self.dispatched = 0
        self.stale_dropped = 0
        self.rename_stalls = 0
        self.rob_stalls = 0
        self.channel_stalls = 0

    # --------------------------------------------------------------- clocking
    def clock_edge(self, cycle: int, time: float) -> None:
        self._dispatch(time)
        self._decode(time)
        self.input_channel.sample_occupancy()

    # ----------------------------------------------------------------- decode
    def _decode(self, now: float) -> None:
        taken = 0
        while (taken < self.decode_width
               and len(self._pipeline) < self.pipeline_capacity
               and self.input_channel.can_pop(now)):
            instr: DynamicInstruction = self.input_channel.pop(now)
            if self.input_channel.counts_as_fifo:
                instr.record_fifo_wait(self.input_channel.last_pop_wait)
            if instr.squashed or instr.epoch < self.current_epoch():
                self.stale_dropped += 1
                continue
            instr.decode_time = now
            ready_at = now + self.decode_stages * self.clock_period()
            self._pipeline.append((ready_at, instr))
            self.decoded += 1
            self.activity.record("decode", 1)
            taken += 1

    # --------------------------------------------------------------- dispatch
    def _dispatch(self, now: float) -> None:
        dispatched = 0
        current_epoch = self.current_epoch()
        while dispatched < self.dispatch_width and self._pipeline:
            ready_at, instr = self._pipeline[0]
            if ready_at > now:
                break
            if instr.squashed or instr.epoch < current_epoch:
                self._pipeline.popleft()
                self.stale_dropped += 1
                continue
            cluster = cluster_for(instr.opclass)
            channel = self.issue_channels[cluster]
            if self.rob.is_full:
                self.rob_stalls += 1
                break
            if not channel.can_push(now):
                channel.record_full_stall()
                self.channel_stalls += 1
                break
            if not self.rat.rename(instr):
                self.rename_stalls += 1
                break
            if instr.is_branch:
                instr.rename_checkpoint = self.rat.take_checkpoint(instr.seq)
            self.rob.allocate(instr)
            instr.rename_time = now
            instr.dispatch_time = now
            instr.exec_domain = self.cluster_domains[cluster]
            channel.push(instr, now)
            self._pipeline.popleft()
            dispatched += 1
            self.dispatched += 1
            self.activity.record("rename", 1)
            self.activity.record("regfile_read", max(1, len(instr.phys_sources)))

    # ----------------------------------------------------------------- squash
    def squash_younger_than(self, branch_seq: int) -> int:
        """Drop wrong-path instructions from the decode pipeline and input."""
        before = len(self._pipeline)
        self._pipeline = deque((t, i) for (t, i) in self._pipeline
                               if i.seq <= branch_seq)
        dropped_pipeline = before - len(self._pipeline)
        dropped_channel = self.input_channel.flush(
            lambda i: getattr(i, "seq", -1) > branch_seq)
        return dropped_pipeline + dropped_channel

    # ------------------------------------------------------------------ state
    def pending_work(self) -> int:
        return len(self._pipeline) + self.input_channel.occupancy
