"""Mixed-clock (asynchronous) FIFO between two clock domains.

This is the behavioural model of the low-latency token-ring FIFO of Chelcea
and Nowick that the paper uses for all inter-domain communication
(Section 3.2, Figure 2).  The circuit details are abstracted away; what
matters architecturally is:

* data written by the producer becomes visible to the consumer only after the
  *empty* flag has been synchronized into the consumer's clock domain
  (``consumer_sync`` consumer cycles);
* space freed by the consumer becomes visible to the producer only after the
  *full* flag has been synchronized into the producer's clock domain
  (``producer_sync`` producer cycles);
* in the steady state (FIFO neither empty nor full) items stream through with
  high throughput -- the latency penalties appear when the FIFO drains or
  fills, exactly the behaviour the paper relies on to explain why fpppp (few
  branches, steady streams) loses the least performance.

Residency time in these FIFOs is what Figure 7 reports as the "FIFO" share of
the instruction slip.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Iterable, List, Optional, Tuple

from ..kernel.reference import sync_visible_at
from ..sim.channel import Channel
from ..sim.clock import Clock
from .synchronizer import Synchronizer


class MixedClockFifo(Channel):
    """Asynchronous FIFO connecting a producer domain to a consumer domain."""

    counts_as_fifo = True

    def __init__(
        self,
        name: str,
        capacity: int,
        producer_clock: Clock,
        consumer_clock: Clock,
        consumer_sync: int = 1,
        producer_sync: int = 1,
    ) -> None:
        super().__init__(name, capacity)
        self.producer_clock = producer_clock
        self.consumer_clock = consumer_clock
        self.consumer_sync = consumer_sync
        self.producer_sync = producer_sync
        self._data_sync = Synchronizer(consumer_clock, depth=consumer_sync)
        self._space_sync = Synchronizer(producer_clock, depth=producer_sync)
        # Inlined synchronizer parameters: push/pop are the hottest FIFO
        # operations, so the per-entry visibility times are computed inline
        # from these precomputed constants instead of through the
        # Synchronizer objects (same arithmetic, same floats).
        self._data_phase = consumer_clock.phase
        self._data_period = consumer_clock.period
        self._data_latency = consumer_sync * consumer_clock.period
        self._space_phase = producer_clock.phase
        self._space_period = producer_clock.period
        self._space_latency = producer_sync * producer_clock.period
        # same-cycle synchronizer caches: every push (pop) within one producer
        # (consumer) cycle maps to the same capturing edge, so remember the
        # last mapping instead of re-deriving it per item
        self._last_push_time = -1.0
        self._last_push_visible = 0.0
        self._last_pop_time = -1.0
        self._last_pop_visible = 0.0
        # entries: (item, push_time, visible_to_consumer_at)
        self._entries: Deque[Tuple[Any, float, float]] = deque()
        # times at which freed slots become visible to the producer; pops
        # happen at non-decreasing simulation times and the synchronizer
        # mapping is monotonic, so this deque is always sorted ascending
        self._pending_space: Deque[float] = deque()

    def retime(self) -> None:
        """Refresh the inlined clock constants after a clock retime.

        Mid-run DVFS mutates the producer/consumer :class:`Clock` objects in
        place (see :meth:`~repro.sim.clock.ClockDomain.retime`); this re-reads
        their phase/period into the inlined fast-path constants and drops the
        same-cycle mapping caches.  Queued *entries* keep their previously
        computed consumer-visibility times: a data synchronization in flight
        when the clock changed completes then, and the consumer acts on it at
        its next edge under the new clock (FIFO order makes a late head block
        later entries regardless).  Pending *space* flags are additionally
        capped at one full synchronization after the retimed producer clock's
        anchor edge: a retimed clock's phase is its anchor, so every slot
        freed after the retime becomes visible at ``anchor + latency`` or
        later, and the cap is what keeps ``_pending_space`` sorted ascending
        (the invariant ``can_push``/``push`` rely on) when a producer domain
        speeds back up.  Pure slow-downs never hit the cap.
        """
        consumer = self.consumer_clock
        self._data_phase = consumer.phase
        self._data_period = consumer.period
        self._data_latency = self.consumer_sync * consumer.period
        producer = self.producer_clock
        producer_changed = (producer.phase != self._space_phase
                            or producer.period != self._space_period)
        self._space_phase = producer.phase
        self._space_period = producer.period
        self._space_latency = self.producer_sync * producer.period
        if producer_changed and self._pending_space:
            # clock.phase is the new schedule's anchor (>= now); clamping a
            # non-decreasing sequence with min() keeps it non-decreasing, and
            # every future freed slot maps to >= this cap
            cap = self._space_phase + self._space_latency
            if self._pending_space[-1] > cap:
                self._pending_space = deque(
                    min(visible, cap) for visible in self._pending_space)
        self._last_push_time = -1.0
        self._last_pop_time = -1.0

    # -------------------------------------------------------------- producer
    @property
    def occupancy(self) -> int:
        """Number of items physically present in the FIFO."""
        return len(self._entries)

    def sample_occupancy(self) -> None:
        """Record the current occupancy (one sample per consumer cycle)."""
        self.occupancy_samples += 1
        self.occupancy_accum += len(self._entries)

    def apparent_occupancy(self, time: float) -> int:
        """Occupancy as seen by the producer (full flag synchronization).

        Slots freed by the consumer less than ``producer_sync`` producer cycles
        ago are not yet visible, so the FIFO may appear fuller than it is.
        Read-only: safe to call with any probe time.
        """
        pending = self._pending_space
        hidden_free = len(pending)
        for visible_at in pending:      # sorted ascending
            if visible_at <= time:
                hidden_free -= 1
            else:
                break
        return len(self._entries) + hidden_free

    def can_push(self, time: float) -> bool:
        # Destructively expires visible space: callers are the producer
        # pipeline, which only ever probes at the current (non-decreasing)
        # simulation time.  ``_pending_space`` is sorted ascending.
        """Producer-side full test at ``time`` (full-flag synchronization applies)."""
        pending = self._pending_space
        while pending and pending[0] <= time:
            pending.popleft()
        return len(self._entries) + len(pending) < self.capacity

    def free_slots(self, time: float) -> int:
        """Producer-visible free slots at ``time`` (full-flag sync applies).

        Destructively expires visible space like ``can_push``; the count
        stays valid for the rest of the producer's cycle minus its own
        pushes (consumer pops land at other simulation events).
        """
        pending = self._pending_space
        while pending and pending[0] <= time:
            pending.popleft()
        return self.capacity - len(self._entries) - len(pending)

    def push(self, item: Any, time: float) -> None:
        # inline can_push: expire visible space, then bound-check
        """Insert an item; it becomes consumer-visible only after the empty flag synchronizes into the consumer domain."""
        pending = self._pending_space
        while pending and pending[0] <= time:
            pending.popleft()
        if len(self._entries) + len(pending) >= self.capacity:
            raise OverflowError(f"push into apparently-full FIFO {self.name!r}")
        if time == self._last_push_time:
            visible = self._last_push_visible
        else:
            # inline Synchronizer.observable_at(consumer clock)
            phase = self._data_phase
            if time < phase:
                first_edge = phase
            else:
                period = self._data_period
                first_edge = phase + (int((time - phase) / period) + 1) * period
            visible = first_edge + self._data_latency
            self._last_push_time = time
            self._last_push_visible = visible
        self._entries.append((item, time, visible))
        self.push_count += 1
        box = self._transfer_box
        if box is not None:
            box[0] += 1

    def push_granted(self, item: Any, time: float) -> None:
        """Insert an item after a same-``time`` ``can_push`` grant.

        ``can_push`` already expired the visible space at ``time`` and
        verified a free slot, so only the synchronizer mapping (same-cycle
        cached) and the entry append remain.
        """
        if time == self._last_push_time:
            visible = self._last_push_visible
        else:
            # inline Synchronizer.observable_at(consumer clock)
            phase = self._data_phase
            if time < phase:
                first_edge = phase
            else:
                period = self._data_period
                first_edge = phase + (int((time - phase) / period) + 1) * period
            visible = first_edge + self._data_latency
            self._last_push_time = time
            self._last_push_visible = visible
        self._entries.append((item, time, visible))
        self.push_count += 1
        box = self._transfer_box
        if box is not None:
            box[0] += 1

    # -------------------------------------------------------------- consumer
    def can_pop(self, time: float) -> bool:
        """Consumer-side empty test: is the head entry synchronized and visible?"""
        pending = self._pending_space
        while pending and pending[0] <= time:
            pending.popleft()
        entries = self._entries
        return bool(entries) and entries[0][2] <= time

    def peek(self, time: float) -> Any:
        """Head item without popping (raises while nothing is visible)."""
        if not self.can_pop(time):
            raise LookupError(f"peek on (apparently) empty FIFO {self.name!r}")
        return self._entries[0][0]

    def _space_visible_at(self, time: float) -> float:
        """Producer-side visibility time of a slot freed at ``time``."""
        if time == self._last_pop_time:
            return self._last_pop_visible
        # inline Synchronizer.observable_at(producer clock)
        phase = self._space_phase
        if time < phase:
            first_edge = phase
        else:
            period = self._space_period
            first_edge = phase + (int((time - phase) / period) + 1) * period
        visible = first_edge + self._space_latency
        self._last_pop_time = time
        self._last_pop_visible = visible
        return visible

    def synchronizer_visible_at(self, time: float, side: str = "data") -> float:
        """Kernel-reference visibility time of a flag raised at ``time``.

        ``side="data"`` maps through the consumer (empty-flag) synchronizer,
        ``side="space"`` through the producer (full-flag) one.  Read-only --
        no same-cycle cache is touched -- and computed by the shared
        :func:`repro.kernel.reference.sync_visible_at` helper, which the
        inlined fast-path arithmetic in ``push``/``_space_visible_at`` (and
        the compiled backend's C translation) must match bit for bit; the
        backend differential tests pin all three against each other.
        """
        if side == "data":
            return sync_visible_at(time, self._data_phase, self._data_period,
                                   self._data_latency)
        if side == "space":
            return sync_visible_at(time, self._space_phase,
                                   self._space_period, self._space_latency)
        raise ValueError(f"unknown synchronizer side {side!r}")

    def pop_ready(self, time: float) -> Any:
        """Fused can_pop + pop: the head item, or None when nothing is visible."""
        pending = self._pending_space
        while pending and pending[0] <= time:
            pending.popleft()
        entries = self._entries
        if not entries or entries[0][2] > time:
            return None
        item, pushed_at, _visible = entries.popleft()
        wait = time - pushed_at
        if wait < 0.0:
            wait = 0.0
        self.last_pop_wait = wait
        self.total_wait += wait
        self.pop_count += 1
        pending.append(self._space_visible_at(time))
        box = self._transfer_box
        if box is not None:
            box[0] += 1
        return item

    def pop_bulk(self, time: float, limit: int) -> List[Tuple[Any, float]]:
        # one pending-space expiry and one synchronizer mapping for the whole
        # batch: every slot freed at ``time`` becomes producer-visible at the
        # same future edge, and nothing appended here can expire at ``time``
        # (the mapped edge is strictly later), exactly as repeated pop_ready
        # calls would behave.
        """Drain up to ``limit`` visible items with batched synchronizer and statistics bookkeeping."""
        pending = self._pending_space
        while pending and pending[0] <= time:
            pending.popleft()
        entries = self._entries
        if not entries or entries[0][2] > time:
            return []
        space_visible = self._space_visible_at(time)
        box = self._transfer_box
        popped: List[Tuple[Any, float]] = []
        append = popped.append
        popleft = entries.popleft
        pend = pending.append
        wait = self.last_pop_wait
        count = 0
        while count < limit and entries and entries[0][2] <= time:
            item, pushed_at, _visible = popleft()
            wait = time - pushed_at
            if wait < 0.0:
                wait = 0.0
            self.total_wait += wait
            pend(space_visible)
            append((item, wait))
            count += 1
        if count:
            self.last_pop_wait = wait
            self.pop_count += count
            if box is not None:
                box[0] += count
        return popped

    def pop(self, time: float) -> Any:
        """Remove the head item; the freed slot reaches the producer after full-flag synchronization."""
        entries = self._entries
        if not entries or entries[0][2] > time:
            raise LookupError(f"pop on (apparently) empty FIFO {self.name!r}")
        item, pushed_at, _visible = entries.popleft()
        wait = time - pushed_at
        if wait < 0.0:
            wait = 0.0
        self.last_pop_wait = wait
        self.total_wait += wait
        self.pop_count += 1
        self._pending_space.append(self._space_visible_at(time))
        box = self._transfer_box
        if box is not None:
            box[0] += 1
        return item

    def _expire_space(self, time: float) -> None:
        while self._pending_space and self._pending_space[0] <= time:
            self._pending_space.popleft()

    # ----------------------------------------------------------------- misc
    def flush(self, predicate: Optional[Callable[[Any], bool]] = None) -> int:
        """Drop entries matching ``predicate`` (all of them when None).

        Flushed slots are returned to the producer immediately; a pipeline
        flush resets the FIFO control state on both sides.
        """
        if predicate is None:
            dropped = len(self._entries)
            self._entries.clear()
        else:
            kept = [e for e in self._entries if not predicate(e[0])]
            dropped = len(self._entries) - len(kept)
            self._entries = deque(kept)
        self.flush_count += dropped
        return dropped

    def items(self) -> List[Any]:
        """The queued items, oldest first (inspection and flush predicates)."""
        return [item for item, _, _ in self._entries]

    @property
    def steady_state_latency(self) -> float:
        """Forward latency (ns) of one item through an otherwise-busy FIFO."""
        return self._data_sync.latency()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MixedClockFifo(name={self.name!r}, occ={self.occupancy}/"
                f"{self.capacity}, producer={self.producer_clock.name!r}, "
                f"consumer={self.consumer_clock.name!r})")
