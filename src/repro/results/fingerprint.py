"""Code fingerprint for cache invalidation.

A cached :class:`~repro.core.scenario.ScenarioResult` is only valid as long
as the simulator that produced it is unchanged.  The fingerprint captures
that: the package version plus a SHA-256 digest over every simulation-relevant
source file (the packages a run's behaviour can depend on).  Any edit to the
processor model, the engine, the power models or the workload generators
changes the fingerprint and therefore every cache key, invalidating the whole
store cleanly; edits to the CLI, the report renderers or the results store
itself deliberately do not.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, Optional, Tuple

#: Sub-packages of :mod:`repro` whose source participates in the fingerprint.
#: These are exactly the modules a simulation result can depend on; ``cli``,
#: ``analysis`` and ``results`` are presentation/caching layers and excluded.
#: ``kernel`` is included through its *pure-Python reference source* only
#: (the glob below is ``*.py``): the compiled artifact is bit-identical to
#: the reference by contract, so a build must not change the fingerprint.
SIMULATION_PACKAGES: Tuple[str, ...] = (
    "async_comm", "core", "isa", "kernel", "memory", "power", "sim", "uarch",
    "workloads",
)

#: Memoized fingerprint -- the source tree does not change under a running
#: process, and sweeps probe the store once per scenario.
_CACHED: Optional[str] = None


def _package_root() -> Path:
    """Directory of the installed :mod:`repro` package."""
    return Path(__file__).resolve().parent.parent


def iter_source_files(root: Optional[Path] = None):
    """Yield the simulation-relevant ``.py`` files in a stable order."""
    if root is None:
        root = _package_root()
    for package in SIMULATION_PACKAGES:
        directory = root / package
        if not directory.is_dir():
            continue
        yield from sorted(directory.rglob("*.py"))


def source_tree_digest(root: Optional[Path] = None) -> str:
    """SHA-256 over (relative path, contents) of every simulation source."""
    if root is None:
        root = _package_root()
    digest = hashlib.sha256()
    for path in iter_source_files(root):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def code_fingerprint(refresh: bool = False) -> str:
    """``<version>:<tree-digest-prefix>`` identifying the current simulator.

    The value is memoized per process; pass ``refresh=True`` to recompute
    (only useful in tests that edit the source tree in place).
    """
    global _CACHED
    if _CACHED is None or refresh:
        from .. import __version__
        _CACHED = f"{__version__}:{source_tree_digest()[:16]}"
    return _CACHED


def fingerprint_details(root: Optional[Path] = None) -> Dict[str, str]:
    """Per-file digests (for debugging which change invalidated the cache)."""
    if root is None:
        root = _package_root()
    return {
        path.relative_to(root).as_posix():
            hashlib.sha256(path.read_bytes()).hexdigest()[:16]
        for path in iter_source_files(root)
    }
