"""Determinism regression guard for the clock-wheel scheduler rework.

The fast-path contract is that a processor simulated on the clock-wheel
scheduler produces *bit-identical* results to the generic heap scheduler
(the seed engine's event loop), and that the parallel experiment runner
produces results equal to the serial path.
"""

import pytest

from repro.core.experiments import baseline_comparison
from repro.workloads.registry import build_workload
from repro.core.processor import Processor
from repro.sim.engine import SimulationEngine

EQUIV_INSTRUCTIONS = 500


def _run(gals: bool, use_wheel: bool):
    trace, workload = build_workload("perl", EQUIV_INSTRUCTIONS, seed=1)
    machine = Processor(trace, gals=gals, workload=workload,
                        engine=SimulationEngine(use_wheel=use_wheel))
    return machine.run()


def _assert_identical(wheel, generic):
    assert wheel.committed_instructions == generic.committed_instructions
    assert wheel.elapsed_ns == generic.elapsed_ns
    assert wheel.reference_cycles == generic.reference_cycles
    assert wheel.ipc == generic.ipc
    assert wheel.mean_slip_ns == generic.mean_slip_ns
    assert wheel.mean_fifo_time_ns == generic.mean_fifo_time_ns
    assert wheel.fetched_instructions == generic.fetched_instructions
    assert wheel.wrong_path_fetched == generic.wrong_path_fetched
    assert wheel.domain_cycles == generic.domain_cycles
    assert wheel.recoveries == generic.recoveries
    assert wheel.mean_rob_occupancy == generic.mean_rob_occupancy
    assert wheel.mean_iq_occupancy == generic.mean_iq_occupancy
    assert wheel.total_energy_nj == generic.total_energy_nj
    assert wheel.energy.by_block == generic.energy.by_block


def test_gals_wheel_equals_generic_scheduler():
    _assert_identical(_run(gals=True, use_wheel=True),
                      _run(gals=True, use_wheel=False))


def test_base_wheel_equals_generic_scheduler():
    _assert_identical(_run(gals=False, use_wheel=True),
                      _run(gals=False, use_wheel=False))


# ------------------------------------------------------------ parallel runner
def test_parallel_baseline_comparison_equals_serial():
    benchmarks = ("perl", "compress", "adpcm")
    serial = baseline_comparison(benchmarks, num_instructions=300, jobs=1)
    parallel = baseline_comparison(benchmarks, num_instructions=300, jobs=2)
    assert len(serial) == len(parallel) == len(benchmarks)
    for serial_row, parallel_row in zip(serial, parallel):
        assert serial_row.benchmark == parallel_row.benchmark
        assert serial_row.relative_performance == parallel_row.relative_performance
        assert serial_row.relative_energy == parallel_row.relative_energy
        assert serial_row.relative_power == parallel_row.relative_power
        assert serial_row.slip_ratio == parallel_row.slip_ratio
        assert (serial_row.base_result.elapsed_ns
                == parallel_row.base_result.elapsed_ns)
        assert (serial_row.gals_result.energy.by_block
                == parallel_row.gals_result.energy.by_block)


def test_default_jobs_honours_environment(monkeypatch):
    from repro.core import experiments

    monkeypatch.setenv(experiments.JOBS_ENV_VAR, "3")
    assert experiments.default_jobs() == 3
    monkeypatch.setenv(experiments.JOBS_ENV_VAR, "junk")
    with pytest.raises(ValueError):
        experiments.default_jobs()
    monkeypatch.delenv(experiments.JOBS_ENV_VAR)
    assert experiments.default_jobs() >= 1
