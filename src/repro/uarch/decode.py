"""Decode, rename and dispatch (clock domain 2, pipeline stages 2-4).

Instructions arriving from the fetch channel are decoded, spend
``decode_stages`` cycles in the decode/rename pipeline (Table 2 lists decode,
rename/regfile-read and dispatch as separate stages), are renamed in program
order, allocated a ROB entry, and dispatched into the issue channel of the
cluster that will execute them (integer, floating point, or memory).

Instructions from a stale epoch -- wrong-path instructions that the fetch unit
kept producing while the redirect message was still in flight -- are dropped
here; they have already consumed fetch bandwidth and FIFO slots, which is
exactly the wasted speculative work the paper attributes to the GALS design.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from ..isa.instructions import InstructionClass
from ..sim.channel import Channel
from .instruction import DynamicInstruction
from .rename import RegisterAliasTable
from .regfile import PhysicalRegisterFile
from .rob import ReorderBuffer


#: opclass -> execution cluster, fully materialised at import so the
#: dispatch hot loop is a single dict lookup
_CLUSTER_CACHE: Dict[InstructionClass, str] = {
    opclass: ("mem" if opclass.is_memory else "fp" if opclass.is_fp else "int")
    for opclass in InstructionClass
}


def cluster_for(opclass: InstructionClass) -> str:
    """Which execution cluster ('int', 'fp', 'mem') runs this class."""
    return _CLUSTER_CACHE[opclass]


class DecodeRenameUnit:
    """Decode + rename + dispatch stage group."""

    def __init__(
        self,
        input_channel: Channel,
        issue_channels: Dict[str, Channel],
        rob: ReorderBuffer,
        rat: RegisterAliasTable,
        regfile: PhysicalRegisterFile,
        clock_period: Callable[[], float],
        current_epoch: Callable[[], int],
        activity,
        decode_width: int = 4,
        dispatch_width: int = 4,
        decode_stages: int = 2,
        cluster_domains: Optional[Dict[str, str]] = None,
    ) -> None:
        self.input_channel = input_channel
        self.issue_channels = issue_channels
        #: cluster name ('int'/'fp'/'mem') -> clock-domain name executing it
        self.cluster_domains = cluster_domains or {"int": "int", "fp": "fp",
                                                   "mem": "mem"}
        self.rob = rob
        self.rat = rat
        self.regfile = regfile
        self.clock_period = clock_period
        self.current_epoch = current_epoch
        self.activity = activity
        #: direct handle on the per-cycle activity counters: decode/dispatch
        #: record a couple of accesses per instruction, so they increment the
        #: counter dict inline instead of going through ``activity.record``
        self._pending = activity._pending
        self.decode_width = decode_width
        self.dispatch_width = dispatch_width
        self.decode_stages = decode_stages
        #: instructions inside the decode/rename pipeline: (ready_time, instr).
        #: Bounded like a real pipe: one decode group per decode stage.
        self.pipeline_capacity = decode_stages * decode_width
        self._pipeline: Deque[Tuple[float, DynamicInstruction]] = deque()
        # statistics
        self.decoded = 0
        self.dispatched = 0
        self.stale_dropped = 0
        self.rename_stalls = 0
        self.rob_stalls = 0
        self.channel_stalls = 0

    # --------------------------------------------------------------- clocking
    def clock_edge(self, cycle: int, time: float) -> None:
        # Each helper no-ops on an empty pipeline / input, so idle edges cost
        # two attribute checks plus the occupancy sample.
        """One decode-domain cycle: advance the decode pipeline, rename, and dispatch to the clusters."""
        if self._pipeline:
            self._dispatch(time)
        channel = self.input_channel
        if channel._entries:
            self._decode(time)
        channel.occupancy_samples += 1
        channel.occupancy_accum += len(channel._entries)

    # ----------------------------------------------------------------- decode
    def _decode(self, now: float) -> None:
        # Commit-domain intake: drain the fetch channel in bulk.  Each batch
        # is bounded by both the decode width and the pipe's free slots;
        # stale (squashed / old-epoch) items consume neither, so the loop
        # re-probes until a bound is hit or nothing more is visible.
        taken = 0
        channel = self.input_channel
        pop_bulk = channel.pop_bulk
        pipeline = self._pipeline
        capacity = self.pipeline_capacity
        is_fifo = channel.counts_as_fifo
        width = self.decode_width
        pending = self._pending
        # epoch and clock period cannot change while decode drains its input
        # (recoveries happen on execution-domain edges), so hoist them
        epoch = self.current_epoch()
        pipe_delay = self.decode_stages * self.clock_period()
        append = pipeline.append
        while True:
            limit = width - taken
            space = capacity - len(pipeline)
            if space < limit:
                limit = space
            if limit <= 0:
                break
            batch = pop_bulk(now, limit)
            if not batch:
                break
            for instr, wait in batch:
                if is_fifo and wait > 0:
                    instr.fifo_time += wait
                if instr.squashed or instr.epoch < epoch:
                    self.stale_dropped += 1
                    continue
                instr.decode_time = now
                append((now + pipe_delay, instr))
                self.decoded += 1
                taken += 1
        if taken:
            pending["decode"] += taken

    # --------------------------------------------------------------- dispatch
    def _dispatch(self, now: float) -> None:
        dispatched = 0
        current_epoch = self.current_epoch()
        pipeline = self._pipeline
        rob = self.rob
        rob_entries = rob._entries
        rob_capacity = rob.capacity
        rat = self.rat
        rename = rat.rename
        issue_channels = self.issue_channels
        cluster_domains = self.cluster_domains
        width = self.dispatch_width
        pending = self._pending
        regfile_reads = 0
        while dispatched < width and pipeline:
            ready_at, instr = pipeline[0]
            if ready_at > now:
                break
            if instr.squashed or instr.epoch < current_epoch:
                pipeline.popleft()
                self.stale_dropped += 1
                continue
            cluster = _CLUSTER_CACHE[instr.opclass]
            channel = issue_channels[cluster]
            if len(rob_entries) >= rob_capacity:
                self.rob_stalls += 1
                break
            if not channel.can_push(now):
                channel.record_full_stall()
                self.channel_stalls += 1
                break
            if not rename(instr):
                self.rename_stalls += 1
                break
            if instr.is_branch:
                instr.rename_checkpoint = rat.take_checkpoint(instr.seq)
            # inline rob.allocate (fullness was checked above)
            rob_entries.append(instr)
            instr.rob_index = rob.allocations
            rob.allocations += 1
            instr.rename_time = now
            instr.dispatch_time = now
            instr.exec_domain = cluster_domains[cluster]
            channel.push(instr, now)
            pipeline.popleft()
            dispatched += 1
            self.dispatched += 1
            num_reads = len(instr.phys_sources)
            regfile_reads += num_reads if num_reads > 1 else 1
        if dispatched:
            pending["rename"] += dispatched
            pending["regfile_read"] += regfile_reads

    # ----------------------------------------------------------------- squash
    def squash_younger_than(self, branch_seq: int) -> int:
        """Drop wrong-path instructions from the decode pipeline and input."""
        before = len(self._pipeline)
        self._pipeline = deque((t, i) for (t, i) in self._pipeline
                               if i.seq <= branch_seq)
        dropped_pipeline = before - len(self._pipeline)
        dropped_channel = self.input_channel.flush(
            lambda i: getattr(i, "seq", -1) > branch_seq)
        return dropped_pipeline + dropped_channel

    # ------------------------------------------------------------------ state
    def pending_work(self) -> int:
        """Instructions inside the decode pipeline or waiting in the fetch queue."""
        return len(self._pipeline) + self.input_channel.occupancy
