#!/usr/bin/env python3
"""Multiple-clock / multiple-voltage exploration (paper Section 5.2).

For a chosen benchmark this example:

1. runs the paper's named DVFS policies (generic, ijpeg sweep, gcc cases),
2. derives an *application-driven* policy from the benchmark's profile using
   :func:`repro.core.recommend_policy` (the paper's "study the application's
   characteristics" guidance), and
3. compares everything against the voltage-scaled synchronous "ideal".

Usage::

    python examples/dvfs_exploration.py [benchmark] [instructions]
"""

import sys

from repro.analysis import dvfs_table
from repro.core import (GCC_GALS_1, GENERIC_SLOWDOWN, PERL_FP_BY_3,
                        recommend_policy, selective_slowdown)
from repro.workloads import get_profile


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 1500

    profile = get_profile(benchmark)
    print(f"Benchmark '{benchmark}': {profile.description}")
    print(f"  branches: {profile.branches_per_instruction:.1%} of instructions, "
          f"FP: {profile.fp_fraction:.1%}, "
          f"memory: {profile.load_fraction + profile.store_fraction:.1%}")
    print()

    policies = [GENERIC_SLOWDOWN, PERL_FP_BY_3, GCC_GALS_1,
                recommend_policy(profile)]
    results = []
    for policy in policies:
        print(f"running policy '{policy.name}': {policy.description}")
        voltages = policy.voltages()
        for domain, vdd in sorted(voltages.items()):
            print(f"    {domain:8s} slowdown {policy.slowdowns[domain]:.2f} "
                  f"-> Vdd {vdd:.3f} V")
        results.append(selective_slowdown(benchmark, policy,
                                          num_instructions=instructions))
    print()
    print("=== normalised to the fully synchronous base processor ===")
    print(dvfs_table(results))
    print()
    best = min(results, key=lambda r: r.relative_energy)
    print(f"lowest-energy policy for {benchmark}: '{best.policy}' "
          f"(energy {best.relative_energy:.3f} at performance "
          f"{best.relative_performance:.3f}; ideal synchronous reference "
          f"{best.ideal_energy:.3f})")


if __name__ == "__main__":
    main()
