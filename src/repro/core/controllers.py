"""Online (mid-run) DVFS controllers: telemetry in, slowdown vectors out.

The paper's Section 5.2 experiments pick *static*, application-dependent
per-domain slowdowns offline.  The GALS argument really pays off when the
machine can re-bind domain clocks *during* a run in response to observed
behaviour; this module defines that control loop's policy side.

A :class:`DvfsController` observes an :class:`EpochTelemetry` snapshot once
per control epoch and either returns a new per-**block** slowdown vector or
``None`` for "no change".  Controllers reason in the paper's five logical
blocks (fetch/decode/integer/fp/memory); the driver inside
:class:`~repro.core.processor.Processor` projects the vector onto the run's
topology exactly like :meth:`~repro.core.dvfs.SlowdownPolicy.project_onto`
does (a merged domain runs at its slowest member's clock) and retimes only
the domains whose period actually changes.

Registered controllers:

* ``static``    -- the identity controller: keeps the scenario's
  :class:`~repro.core.dvfs.SlowdownPolicy`/explicit slowdowns untouched, so a
  ``controller="static"`` run is bit-identical to the plain policy path;
* ``interval``  -- a piecewise schedule of slowdown vectors over time;
* ``occupancy`` -- queue-occupancy thresholds (the paper's fetch-queue and
  FP-queue arguments turned into an online rule);
* ``pid``       -- IPC-setpoint feedback scaling a set of blocks together.

Controllers are stateful (ramps, PID integrals), so every run must use a
fresh instance: :func:`make_controller` builds one from a registered name
plus JSON-safe constructor arguments, which is how
:class:`~repro.core.scenario.Scenario` references them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Type

from .domains import (DOMAIN_FETCH, DOMAIN_FP, DOMAIN_INTEGER, DOMAIN_MEMORY,
                      GALS_DOMAINS)

#: Engine priority of the control-epoch event.  Clock edges run at priority 0;
#: the controller must observe a consistent end-of-epoch state, so it fires
#: after every edge that shares its timestamp.
CONTROLLER_PRIORITY = 100

#: Telemetry queue name -> the logical block whose clock feeds/drains it.
QUEUE_BLOCKS: Dict[str, str] = {
    "fetch_q": DOMAIN_FETCH,
    "iq_int": DOMAIN_INTEGER,
    "iq_fp": DOMAIN_FP,
    "iq_mem": DOMAIN_MEMORY,
}


@dataclass(frozen=True)
class EpochTelemetry:
    """What a controller sees at the end of one control epoch."""

    #: 0-based control-epoch index
    epoch: int
    #: absolute simulation time of the epoch boundary, in ns
    time_ns: float
    #: epoch duration in ns
    epoch_ns: float
    #: cumulative committed instructions
    committed: int
    #: instructions committed during this epoch
    committed_delta: int
    #: epoch IPC in nominal (base-period) reference cycles
    ipc: float
    #: cumulative energy in nJ
    energy_nj: float
    #: energy spent during this epoch in nJ
    energy_delta_nj: float
    #: mean occupancy per queue over the epoch (keys of :data:`QUEUE_BLOCKS`)
    queue_occupancy: Mapping[str, float] = field(default_factory=dict)
    #: current per-block slowdowns (1.0 = nominal)
    slowdowns: Mapping[str, float] = field(default_factory=dict)


class DvfsController:
    """Base class: observe one epoch, optionally emit a new slowdown vector.

    Subclasses override :meth:`observe`; the returned mapping is the complete
    desired per-block slowdown vector (blocks omitted run at 1.0).  Returning
    ``None`` leaves the clocks untouched, which is what keeps the no-op
    ``static`` controller bit-identical to the plain policy path.
    """

    #: registry key (subclasses set it)
    name: str = "?"
    #: one-line summary for ``repro list controllers``
    description: str = ""

    def reset(self) -> None:
        """Forget accumulated state; called once before a run starts."""

    def observe(self, telemetry: EpochTelemetry
                ) -> Optional[Mapping[str, float]]:
        """Digest one epoch of telemetry; return a new per-block slowdown
        vector, or ``None`` for no change."""
        raise NotImplementedError


class StaticController(DvfsController):
    """The identity controller: never changes the scenario's clock plan.

    It wraps whatever :class:`~repro.core.dvfs.SlowdownPolicy` (or explicit
    slowdowns) the scenario applied at build time and leaves every epoch's
    clocks untouched, so its results are bit-identical to a run without any
    controller -- the regression tests pin exactly that.
    """

    name = "static"
    description = ("keep the scenario's static policy/slowdowns unchanged "
                   "(bit-identical to the plain policy path)")

    def observe(self, telemetry: EpochTelemetry) -> None:
        """Always None: the static operating point never changes."""
        return None


class IntervalController(DvfsController):
    """A piecewise-constant slowdown schedule over simulation time.

    ``schedule`` is a list of ``[start_ns, {block: slowdown}]`` segments; the
    segment with the largest ``start_ns`` at or before the epoch boundary is
    in force.  Times before the first segment run the scenario's own plan.
    """

    name = "interval"
    description = "piecewise schedule: [[start_ns, {block: slowdown}], ...]"

    def __init__(self, schedule: Sequence[Sequence[Any]] = ()) -> None:
        segments: List[Tuple[float, Dict[str, float]]] = []
        for entry in schedule:
            start, slowdowns = entry
            unknown = set(slowdowns) - set(GALS_DOMAINS)
            if unknown:
                raise ValueError(f"interval schedule names unknown blocks "
                                 f"{sorted(unknown)}")
            if any(float(s) < 1.0 for s in slowdowns.values()):
                raise ValueError("interval schedule: slowdowns must be >= 1.0")
            segments.append((float(start),
                             {block: float(s) for block, s in slowdowns.items()}))
        self._schedule = sorted(segments, key=lambda segment: segment[0])
        self._active: Optional[int] = None

    def reset(self) -> None:
        """Forget which schedule segment is currently active."""
        self._active = None

    def observe(self, telemetry: EpochTelemetry
                ) -> Optional[Mapping[str, float]]:
        """Switch to the segment in force at the epoch boundary, if it changed."""
        current: Optional[int] = None
        for index, (start, _) in enumerate(self._schedule):
            if start <= telemetry.time_ns:
                current = index
            else:
                break
        if current is None or current == self._active:
            return None
        self._active = current
        return dict(self._schedule[current][1])


class OccupancyController(DvfsController):
    """Queue-occupancy threshold controller (the paper's arguments, online).

    The paper motivates per-domain slowdown with two observations: an FP (or
    memory/integer) issue queue that stays empty means its cluster's clock is
    wasted, and a fetch queue that stays full means fetch is running ahead of
    decode.  This controller turns both into a per-epoch rule:

    * execution-cluster queues (``iq_int``/``iq_fp``/``iq_mem``): mean epoch
      occupancy at or below ``low`` ramps the block's slowdown up by ``step``
      (to at most ``max_slowdown``); occupancy at or above ``high`` snaps it
      back to 1.0 (a demand spike must not be served at a slow clock);
    * the fetch queue: mean occupancy at or above ``fetch_high`` entries slows
      the fetch block by ``step`` (to at most ``max_fetch_slowdown``);
      occupancy at or below ``fetch_low`` restores full speed.
    """

    name = "occupancy"
    description = ("queue-occupancy thresholds: ramp idle clusters down, "
                   "snap busy ones back to nominal")

    def __init__(self, low: float = 0.5, high: float = 4.0,
                 step: float = 0.5, max_slowdown: float = 3.0,
                 fetch_low: float = 2.0, fetch_high: float = 6.0,
                 max_fetch_slowdown: float = 1.5) -> None:
        if step <= 0:
            raise ValueError("occupancy controller: step must be positive")
        if max_slowdown < 1.0 or max_fetch_slowdown < 1.0:
            raise ValueError("occupancy controller: max slowdowns must be >= 1")
        self.low = low
        self.high = high
        self.step = step
        self.max_slowdown = max_slowdown
        self.fetch_low = fetch_low
        self.fetch_high = fetch_high
        self.max_fetch_slowdown = max_fetch_slowdown

    def observe(self, telemetry: EpochTelemetry
                ) -> Optional[Mapping[str, float]]:
        """Apply the occupancy thresholds to every tracked queue."""
        slowdowns = {block: telemetry.slowdowns.get(block, 1.0)
                     for block in GALS_DOMAINS}
        changed = False
        for queue, occupancy in telemetry.queue_occupancy.items():
            block = QUEUE_BLOCKS.get(queue)
            if block is None:
                continue
            current = slowdowns[block]
            if block == DOMAIN_FETCH:
                if occupancy >= self.fetch_high:
                    target = min(current + self.step, self.max_fetch_slowdown)
                elif occupancy <= self.fetch_low:
                    target = 1.0
                else:
                    target = current
            else:
                if occupancy <= self.low:
                    target = min(current + self.step, self.max_slowdown)
                elif occupancy >= self.high:
                    target = 1.0
                else:
                    target = current
            if target != current:
                slowdowns[block] = target
                changed = True
        return slowdowns if changed else None


class PidController(DvfsController):
    """IPC-setpoint feedback: scale a set of blocks to hold a target IPC.

    One scalar slowdown is applied uniformly to ``blocks``.  When epoch IPC
    exceeds ``setpoint`` there is performance slack, so the slowdown grows
    (saving energy); when IPC falls below the setpoint the slowdown shrinks.
    The output is quantized to ``step`` so the clocks are not retimed on
    control-loop noise.
    """

    name = "pid"
    description = ("IPC-setpoint PID feedback scaling a block set "
                   "(default: fp + memory)")

    def __init__(self, setpoint: float = 2.0, kp: float = 0.5,
                 ki: float = 0.0, kd: float = 0.0,
                 blocks: Sequence[str] = (DOMAIN_FP, DOMAIN_MEMORY),
                 max_slowdown: float = 3.0, step: float = 0.25) -> None:
        if setpoint <= 0:
            raise ValueError("pid controller: setpoint must be positive")
        if step <= 0:
            raise ValueError("pid controller: step must be positive")
        unknown = set(blocks) - set(GALS_DOMAINS)
        if unknown:
            raise ValueError(f"pid controller: unknown blocks {sorted(unknown)}")
        self.setpoint = setpoint
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self.blocks = tuple(blocks)
        self.max_slowdown = max_slowdown
        self.step = step
        self._integral = 0.0
        self._last_error: Optional[float] = None
        self._slowdown = 1.0

    def reset(self) -> None:
        """Clear the integral/derivative state and return to nominal speed."""
        self._integral = 0.0
        self._last_error = None
        self._slowdown = 1.0

    def observe(self, telemetry: EpochTelemetry
                ) -> Optional[Mapping[str, float]]:
        # error > 0: IPC above setpoint -> slack -> slow down further
        """One PID step on the epoch's IPC error, quantized to the step grid."""
        error = telemetry.ipc - self.setpoint
        self._integral += error
        derivative = (0.0 if self._last_error is None
                      else error - self._last_error)
        self._last_error = error
        raw = (self._slowdown + self.kp * error + self.ki * self._integral
               + self.kd * derivative)
        clamped = max(1.0, min(raw, self.max_slowdown))
        # quantize so sub-step noise does not retime the clocks every epoch
        quantized = 1.0 + round((clamped - 1.0) / self.step) * self.step
        quantized = max(1.0, min(quantized, self.max_slowdown))
        if quantized == self._slowdown:
            return None
        self._slowdown = quantized
        vector = {block: telemetry.slowdowns.get(block, 1.0)
                  for block in GALS_DOMAINS}
        for block in self.blocks:
            vector[block] = quantized
        return vector


# ----------------------------------------------------------------- registry
CONTROLLERS: Dict[str, Type[DvfsController]] = {}


def register_controller(factory: Type[DvfsController]
                        ) -> Type[DvfsController]:
    """Add a controller type to the registry (keyed by its ``name``)."""
    if factory.name in CONTROLLERS:
        raise ValueError(f"DVFS controller {factory.name!r} already registered")
    CONTROLLERS[factory.name] = factory
    return factory


def get_controller_type(name: str) -> Type[DvfsController]:
    """Look up a registered controller type by name."""
    try:
        return CONTROLLERS[name]
    except KeyError as exc:
        raise KeyError(f"unknown DVFS controller {name!r}; known: "
                       f"{', '.join(sorted(CONTROLLERS))}") from exc


def available_controllers() -> Tuple[str, ...]:
    """Registered controller names, in registration order."""
    return tuple(CONTROLLERS)


def make_controller(name: str,
                    args: Optional[Mapping[str, Any]] = None) -> DvfsController:
    """Build a fresh controller instance from its registered name + kwargs.

    Controllers carry run state (ramps, integrals), so scenarios store only
    ``(name, args)`` and construct a new instance per run -- which also keeps
    scenarios JSON-round-trippable and process-pool safe.
    """
    factory = get_controller_type(name)
    try:
        controller = factory(**dict(args or {}))
    except TypeError as exc:
        raise ValueError(
            f"invalid arguments for DVFS controller {name!r}: {exc}") from exc
    controller.reset()
    return controller


register_controller(StaticController)
register_controller(IntervalController)
register_controller(OccupancyController)
register_controller(PidController)
