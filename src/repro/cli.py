"""Command-line interface: ``python -m repro`` (or the ``repro`` script).

The CLI exposes the declarative Scenario subsystem:

* ``repro list [what]``      -- registered topologies, policies, workloads,
  scenarios (default: everything);
* ``repro topology NAME``    -- describe one clock-domain topology;
* ``repro show SCENARIO``    -- print a registered scenario as JSON;
* ``repro run SCENARIO``     -- run one scenario (with overrides) and print
  its summary, optionally dumping the full result as JSON;
* ``repro sweep SCENARIO..`` -- run many scenarios in parallel over the
  ``REPRO_JOBS`` process pool, print per-scenario cached/computed status and
  a comparison table;
* ``repro cache ls|gc|clear`` -- inspect and maintain the persistent results
  store (:mod:`repro.results`, rooted at ``REPRO_CACHE_DIR``);
* ``repro bench history``    -- render the per-commit benchmark trajectory
  recorded in ``BENCH_sim_core.json`` (:mod:`repro.analysis.bench_history`);
* ``repro report ...``       -- render the paper's figure tables
  (:mod:`repro.analysis.report`) from fresh runs, and ``repro report
  compare`` -- cross-topology design-space tables from cached results;
* ``repro serve``            -- run the HTTP results service
  (:mod:`repro.serve`): cached queries answer bit-identically to ``repro
  run --json``, misses are queued on a job backend and served once stored;
* ``repro query``            -- query a running ``repro serve`` instance
  for one scenario (optionally waiting for a queued miss to land).

Every run funnels through :func:`repro.core.scenario.run_scenario`, so CLI
results are bit-identical to library results for the same scenario --
including results served from the cache (``--cache``), which are stored and
reloaded bit-exactly.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence

from .analysis.report import (design_space_records, design_space_table,
                              dvfs_table, dvfs_trace_table,
                              energy_power_table, misspeculation_table,
                              performance_table, scenario_table,
                              slip_breakdown_table, slip_table)
from .core.controllers import CONTROLLERS
from .core.domains import TOPOLOGIES, get_topology
from .core.dvfs import POLICIES, get_policy
from .core.experiments import (DEFAULT_INSTRUCTIONS, baseline_comparison,
                               design_space_scenarios, slowdown_sweep)
from .core.scenario import (SCENARIOS, Scenario, get_scenario,
                            resolve_scenarios)
from .exec import JOB_BACKENDS, ExecutionConfig
from .results import (ResultsStore, code_fingerprint, hit_rate, resume_sweep,
                      run_cached)
from .workloads.profiles import DEFAULT_BENCHMARKS, DVFS_CASE_STUDY_BENCHMARKS
from .workloads.registry import PHASED_PREFIX, WORKLOADS


# ------------------------------------------------------------------- helpers
def _parse_value(text: str) -> Any:
    """Parse an override value: JSON first, bare string as fallback."""
    try:
        return json.loads(text)
    except ValueError:
        return text


def _parse_assignments(pairs: Sequence[str], flag: str) -> Dict[str, Any]:
    """Parse repeated KEY=VALUE flags into a dict."""
    parsed: Dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"error: {flag} expects KEY=VALUE, got {pair!r}")
        parsed[key] = _parse_value(value)
    return parsed


def _scenario_with_overrides(args: argparse.Namespace) -> Scenario:
    """Resolve the named scenario and apply CLI overrides."""
    scenario = get_scenario(args.scenario)
    changes: Dict[str, Any] = {}
    if args.topology is not None:
        changes["topology"] = args.topology
    if args.workload is not None:
        changes["workload"] = args.workload
    if args.policy is not None:
        changes["policy"] = None if args.policy == "none" else args.policy
    if args.instructions is not None:
        changes["num_instructions"] = args.instructions
    if args.seed is not None:
        changes["seed"] = args.seed
    if args.phase_seed is not None:
        changes["phase_seed"] = args.phase_seed
    if args.kernel_size is not None:
        changes["kernel_size"] = args.kernel_size
    if args.base_period is not None:
        changes["base_period"] = args.base_period
    if args.no_scale_voltages:
        changes["scale_voltages"] = False
    if args.slowdown:
        changes["slowdowns"] = {**_parse_assignments(args.slowdown, "--slowdown")}
    if args.config:
        changes["config"] = {**_parse_assignments(args.config, "--config")}
    if args.controller is not None:
        if args.controller == "none":
            changes["controller"] = None
            changes["controller_args"] = {}
        else:
            changes["controller"] = args.controller
            if args.controller != scenario.controller:
                # switching controller type: the scenario's stored args are
                # for the old controller's constructor and would be rejected
                changes["controller_args"] = {}
    if args.controller_arg:
        changes["controller_args"] = {
            **_parse_assignments(args.controller_arg, "--controller-arg")}
    if args.controller_epoch is not None:
        changes["controller_epoch"] = args.controller_epoch
    if getattr(args, "backend", None) is not None:
        # merge into whatever --config overrides produced (the backend never
        # changes results or cache keys, only the engine implementation)
        merged = dict(changes.get("config", scenario.config))
        merged["backend"] = args.backend
        changes["config"] = merged
    return replace(scenario, **changes) if changes else scenario


def _add_cache_arguments(parser: argparse.ArgumentParser,
                         default: bool) -> None:
    state = "on" if default else "off"
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--cache", action="store_true", dest="cache",
                       default=None,
                       help="serve/store results via the persistent results "
                            f"store (default: {state})")
    group.add_argument("--no-cache", action="store_false", dest="cache",
                       help="force fresh runs, bypassing the results store")
    parser.add_argument("--cache-dir", metavar="PATH", dest="cache_dir",
                        help="results-store root (default: REPRO_CACHE_DIR "
                             "or ~/.cache/repro)")


def _store_from_args(args: argparse.Namespace,
                     default: bool) -> Optional[ResultsStore]:
    """The results store selected by --cache/--no-cache/--cache-dir.

    An explicit ``--cache-dir`` implies ``--cache`` unless ``--no-cache``
    overrides it.
    """
    if args.cache is not None:
        enabled = args.cache
    else:
        enabled = default or args.cache_dir is not None
    if not enabled:
        return None
    return ResultsStore(root=args.cache_dir)


def _add_override_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topology", help="override the scenario's topology")
    parser.add_argument("--workload", help="override the scenario's workload")
    parser.add_argument("--policy",
                        help="override the DVFS policy ('none' clears it)")
    parser.add_argument("--instructions", type=int, metavar="N",
                        help="trace length override")
    parser.add_argument("--seed", type=int, help="workload seed override")
    parser.add_argument("--phase-seed", type=int, dest="phase_seed",
                        help="clock-phase seed override")
    parser.add_argument("--kernel-size", type=int, dest="kernel_size",
                        help="problem size for kernel workloads")
    parser.add_argument("--base-period", type=float, dest="base_period",
                        help="nominal clock period in ns")
    parser.add_argument("--no-scale-voltages", action="store_true",
                        help="disable Equation-1 voltage scaling")
    parser.add_argument("--slowdown", action="append", default=[],
                        metavar="DOMAIN=FACTOR",
                        help="explicit per-domain slowdown (repeatable)")
    parser.add_argument("--config", action="append", default=[],
                        metavar="FIELD=VALUE",
                        help="ProcessorConfig field override (repeatable)")
    parser.add_argument("--controller",
                        help="online DVFS controller: static, interval, "
                             "occupancy, pid, ... ('none' clears it)")
    parser.add_argument("--controller-arg", action="append", default=[],
                        dest="controller_arg", metavar="KEY=VALUE",
                        help="controller constructor argument (repeatable; "
                             "values parse as JSON)")
    parser.add_argument("--controller-epoch", type=float,
                        dest="controller_epoch", metavar="NS",
                        help="control epoch in ns (default 50)")
    parser.add_argument("--backend", choices=("auto", "pure", "compiled"),
                        help="engine kernel backend (bit-identical results; "
                             "'compiled' needs tools/build_kernel.py and "
                             "degrades gracefully to pure Python; default: "
                             "auto -- the REPRO_BACKEND environment variable)")


# ------------------------------------------------------------------ commands
def _cmd_list(args: argparse.Namespace) -> int:
    what = args.what
    sections = []
    if what in ("topologies", "all"):
        rows = [f"  {name:<12} {topo.num_domains} domain(s): "
                f"{topo.description}" for name, topo in TOPOLOGIES.items()]
        sections.append("topologies:\n" + "\n".join(rows))
    if what in ("policies", "all"):
        rows = [f"  {name:<12} {policy.description}"
                for name, policy in POLICIES.items()]
        sections.append("DVFS policies:\n" + "\n".join(rows))
    if what in ("controllers", "all"):
        rows = [f"  {name:<12} {factory.description}"
                for name, factory in CONTROLLERS.items()]
        sections.append("DVFS controllers (online, per control epoch):\n"
                        + "\n".join(rows))
    if what in ("workloads", "all"):
        # sorted (like available_workloads) so newly registered families
        # never reorder existing CLI/doc snapshots
        rows = [f"  {name:<22} [{entry.kind}] {entry.description}"
                for name, entry in sorted(WORKLOADS.items())]
        sections.append("workloads:\n" + "\n".join(rows))
    if what in ("scenarios", "all"):
        rows = []
        for name, scenario in SCENARIOS.items():
            policy = scenario.policy or "-"
            rows.append(f"  {name:<20} topology={scenario.topology:<11} "
                        f"workload={scenario.workload:<18} policy={policy:<10} "
                        f"{scenario.description}")
        sections.append("scenarios:\n" + "\n".join(rows))
    if what in ("backends", "all"):
        from .kernel import BACKEND_ENV_VAR, available_backends, resolve_backend
        available = available_backends()
        default = resolve_backend()
        rows = []
        for name, blurb in (
                ("pure", "pure-Python reference kernel (always available)"),
                ("compiled", "ahead-of-time compiled kernel "
                             "(tools/build_kernel.py)")):
            status = "available" if name in available else "not built"
            marker = "  <- default" if name == default else ""
            rows.append(f"  {name:<12} [{status:<9}] {blurb}{marker}")
        sections.append("engine kernel backends (bit-identical results; "
                        f"'auto' follows ${BACKEND_ENV_VAR}):\n"
                        + "\n".join(rows))
        job_rows = [f"  {name:<12} {info.description}"
                    for name, info in JOB_BACKENDS.items()]
        sections.append("job backends (sweep execution fabrics; select with "
                        "--job-backend or ExecutionConfig):\n"
                        + "\n".join(job_rows))
    print("\n\n".join(sections))
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    print(get_topology(args.name).describe())
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario)
    print(scenario.to_json())
    if scenario.workload.startswith(PHASED_PREFIX):
        from .workloads import PhasedWorkload, get_mix
        workload = PhasedWorkload(
            get_mix(scenario.workload[len(PHASED_PREFIX):]),
            seed=scenario.seed, kernel_size=scenario.kernel_size)
        print()
        print(workload.describe_schedule(scenario.num_instructions))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = _scenario_with_overrides(args)
    if not args.quiet:
        controller = (f", controller={scenario.controller} "
                      f"(epoch {scenario.controller_epoch:g} ns)"
                      if scenario.controller else "")
        print(f"running scenario {scenario.name!r}: topology="
              f"{scenario.topology}, workload={scenario.workload}, "
              f"policy={scenario.policy or '-'}{controller}, "
              f"{scenario.num_instructions} instructions")
    store = _store_from_args(args, default=False)
    run = run_cached(scenario, store=store)
    outcome = run.outcome
    if not args.quiet:
        if run.cached:
            print(f"  served from cache (key {run.key[:12]}, saved "
                  f"{run.seconds:.2f}s)")
        elif store is not None:
            print(f"  computed in {run.seconds:.2f}s and cached "
                  f"(key {run.key[:12]})")
        print()
        print(outcome.result.summary())
        print(f"  domain cycles: {outcome.result.domain_cycles}")
        print(f"  domain voltages: "
              f"{ {k: round(v, 3) for k, v in outcome.result.domain_voltages.items()} }")
        if outcome.result.dvfs_trace:
            print()
            print("per-epoch DVFS trace (domain frequencies in GHz; "
                  "* = retimed):")
            print(dvfs_trace_table(outcome))
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(outcome.to_json())
        if not args.quiet:
            print(f"  result written to {args.json}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import io
    import pstats

    scenario = _scenario_with_overrides(args)
    if not args.quiet:
        print(f"profiling scenario {scenario.name!r}: topology="
              f"{scenario.topology}, workload={scenario.workload}, "
              f"{scenario.num_instructions} instructions")
    from .core.scenario import run_scenario

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    outcome = run_scenario(scenario)
    profiler.disable()
    seconds = time.perf_counter() - start
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(args.sort)
    if args.json:
        width, functions = stats.get_print_list([args.limit])
        records = []
        for func in functions:
            cc, nc, tottime, cumtime, _callers = stats.stats[func]
            filename, line, name = func
            records.append({
                "function": name, "file": filename, "line": line,
                "calls": nc, "primitive_calls": cc,
                "tottime": tottime, "cumtime": cumtime,
            })
        payload = {
            "scenario": scenario.name,
            "topology": scenario.topology,
            "workload": scenario.workload,
            "num_instructions": scenario.num_instructions,
            "wall_seconds": seconds,
            "sort": args.sort,
            "instr_per_sec": (outcome.result.committed_instructions / seconds
                              if seconds > 0 else 0.0),
            "functions": records,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=1)
        if not args.quiet:
            print(f"  profile written to {args.json}")
    if not args.quiet or not args.json:
        buffer.seek(0)
        buffer.truncate()
        stats.print_stats(args.limit)
        print(buffer.getvalue(), end="")
        rate = (outcome.result.committed_instructions / seconds
                if seconds > 0 else 0.0)
        print(f"wall {seconds:.3f}s, {rate:,.0f} committed instr/s "
              f"(profiler overhead included)")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    names = list(args.scenarios)
    if args.all:
        names = [name for name in SCENARIOS if name not in names] + names
    if not names:
        raise SystemExit("error: no scenarios given (name some or use --all)")
    overrides: Dict[str, Any] = {}
    if args.instructions is not None:
        overrides["num_instructions"] = args.instructions
    if args.seed is not None:
        overrides["seed"] = args.seed
    scenarios = resolve_scenarios(names, overrides)
    if not args.quiet:
        print(f"sweeping {len(scenarios)} scenario(s) "
              f"({scenarios[0].num_instructions} instructions each)...")
    store = _store_from_args(args, default=False)
    wall_start = time.perf_counter()
    runs = resume_sweep(scenarios, store=store, jobs=args.jobs,
                        execution=args.job_backend)
    wall = time.perf_counter() - wall_start
    results = [run.outcome for run in runs]
    if not args.quiet:
        for run in runs:
            if run.cached:
                timing = f"(saved {run.seconds:.2f}s)" if run.seconds else ""
            else:
                timing = f"{run.seconds:.2f}s"
            print(f"  {run.outcome.scenario.name:<20} {run.status:<9} "
                  f"{timing}")
        hits = sum(run.cached for run in runs)
        summary = f"swept {len(runs)} scenario(s) in {wall:.2f}s"
        if store is not None:
            summary += (f"; cache: {hits}/{len(runs)} hits "
                        f"({hit_rate(runs):.0%})")
        print(summary)
        print()
    print(scenario_table(results))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump([item.to_dict() for item in results], handle, indent=2,
                      sort_keys=True)
        if not args.quiet:
            print(f"results written to {args.json}")
    return 0


# ----------------------------------------------------------------- benchmarks
def _cmd_bench_history(args: argparse.Namespace) -> int:
    """Render the benchmark trajectory recorded in BENCH_sim_core.json."""
    from pathlib import Path

    from .analysis.bench_history import (find_bench_file, history_table,
                                         load_history)

    try:
        path = Path(args.bench_file) if args.bench_file else find_bench_file()
        history = load_history(path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"benchmark history: {path} ({len(history)} record"
          f"{'' if len(history) == 1 else 's'})")
    print()
    print(history_table(history, threshold=args.threshold,
                        normalise=args.normalise))
    return 0


# ------------------------------------------------------------- results store
def _cmd_cache(args: argparse.Namespace) -> int:
    store = ResultsStore(root=args.cache_dir)
    if args.action == "ls":
        entries = store.entries()
        print(f"results store: {store.root}")
        print(f"code fingerprint: {store.fingerprint}")
        if not entries:
            print("(empty)")
            return 0
        print(f"{'key':<14} {'scenario':<22} {'topology':<11} "
              f"{'workload':<18} {'created':<19} {'wall s':>7}  state")
        total = 0
        for entry in entries:
            total += entry.size_bytes
            state = "stale" if entry.stale else "ok"
            print(f"{entry.key[:12]:<14} {entry.scenario_name:<22} "
                  f"{entry.topology:<11} {entry.workload:<18} "
                  f"{entry.created:<19} {entry.wall_seconds:>7.2f}  {state}")
        print(f"{len(entries)} entr{'y' if len(entries) == 1 else 'ies'}, "
              f"{total / 1024:.1f} KiB")
    elif args.action == "gc":
        stats = store.gc()
        print(f"removed {stats.removed} stale entr"
              f"{'y' if stats.removed == 1 else 'ies'} "
              f"({stats.bytes_freed / 1024:.1f} KiB), kept {stats.kept}")
    elif args.action == "verify":
        stats = store.verify()
        print(f"results store: {store.root}")
        print(f"checked {stats.checked} entr"
              f"{'y' if stats.checked == 1 else 'ies'}: "
              f"{stats.ok} ok, {stats.quarantined} quarantined")
        if stats.quarantined:
            print(f"(quarantined entries moved to {store.quarantine_dir}; "
                  f"inspect with 'repro cache quarantine')")
            return 1
    elif args.action == "claims":
        claims = store.list_claims()
        print(f"results store: {store.root}")
        print(f"claim lease TTL: {store.claim_ttl:.0f}s")
        if not claims:
            print("(no claims)")
            return 0
        print(f"{'key':<14} {'owner':<24} {'pid':>7} {'host':<16} "
              f"{'age s':>7}  state")
        for claim in claims:
            state = "expired" if claim.expired else "live"
            print(f"{claim.key[:12]:<14} {claim.owner or '-':<24} "
                  f"{claim.pid:>7} {claim.host:<16} {claim.age:>7.1f}  "
                  f"{state}")
    elif args.action == "quarantine":
        if getattr(args, "clear", False):
            removed = store.clear_quarantine()
            print(f"removed {removed} quarantined file"
                  f"{'' if removed == 1 else 's'} from "
                  f"{store.quarantine_dir}")
            return 0
        quarantined = store.quarantined()
        print(f"quarantine: {store.quarantine_dir}")
        if not quarantined:
            print("(empty)")
            return 0
        for item in quarantined:
            print(f"{item.kind:<8} {item.path.name}")
            if item.reason:
                print(f"         {item.reason}")
        print(f"{len(quarantined)} file{'' if len(quarantined) == 1 else 's'}"
              f" (clear with 'repro cache quarantine --clear')")
    else:  # clear
        removed = store.clear()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {store.root}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.family == "compare":
        return _cmd_report_compare(args)
    instructions = args.instructions
    if args.family == "baseline":
        benchmarks = args.benchmarks or list(DEFAULT_BENCHMARKS)
        rows = baseline_comparison(benchmarks, num_instructions=instructions,
                                   jobs=args.jobs)
        print("=== Figure 5: relative performance ===")
        print(performance_table(rows))
        print()
        print("=== Figure 6: instruction slip ===")
        print(slip_table(rows))
        print()
        print("=== Figure 7: slip breakdown ===")
        print(slip_breakdown_table(rows))
        print()
        print("=== Figure 8: mis-speculation ===")
        print(misspeculation_table(rows))
        print()
        print("=== Figure 9: energy and power ===")
        print(energy_power_table(rows))
    else:  # dvfs
        benchmark = args.benchmark
        if args.policies:
            policies = [get_policy(name) for name in args.policies]
        else:
            policies = list(POLICIES.values())
        results = slowdown_sweep(benchmark, policies,
                                 num_instructions=instructions,
                                 jobs=args.jobs)
        print(f"=== Figures 11-13: DVFS case study ({benchmark}) ===")
        print(dvfs_table(results))
    return 0


def _cmd_report_compare(args: argparse.Namespace) -> int:
    """Cross-topology design-space table from cached ScenarioResults."""
    policies = [None if name == "none" else name
                for name in (args.policies or ["none"])]
    controllers = [None if name == "none" else name
                   for name in (args.controllers or ["none"])]
    grid = design_space_scenarios(
        topologies=args.topologies, workloads=args.workloads,
        policies=policies, controllers=controllers,
        num_instructions=args.instructions, seed=args.seed)
    store = _store_from_args(args, default=True)
    runs = resume_sweep(grid, store=store, jobs=args.jobs,
                        execution=args.job_backend)
    results = [run.outcome for run in runs]
    hits = sum(run.cached for run in runs)
    print(f"=== design-space compare: {len(results)} configuration(s), "
          f"{hits} from cache ===")
    print(design_space_table(results))
    if args.json:
        payload = {
            "fingerprint": code_fingerprint(),
            "instructions": args.instructions,
            "seed": args.seed,
            "records": design_space_records(results),
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"records written to {args.json}")
    return 0


# ------------------------------------------------------------ results service
def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the HTTP results service in the foreground."""
    from .serve import ResultsService

    execution = ExecutionConfig(backend=args.job_backend or "local",
                                jobs=args.jobs)
    service = ResultsService(store=ResultsStore(root=args.cache_dir),
                             execution=execution,
                             host=args.host, port=args.port,
                             poll_interval=args.poll_interval,
                             verbose=not args.quiet)
    service.start()
    # the URL line is the machine-readable handshake (port may be ephemeral)
    print(f"serving results store {service.store.root} at {service.url} "
          f"(backend: {service.execution.backend})", flush=True)
    service.run_forever()
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    """Query a running ``repro serve`` instance for one scenario."""
    from .serve import QueryReply, query_scenario

    scenario = _scenario_with_overrides(args)
    reply: QueryReply = query_scenario(args.url, scenario, wait=args.wait,
                                       poll=args.poll)
    if reply.code == 200:
        if not args.quiet:
            print(f"{reply.status} (key {reply.key[:12]}) from {args.url}")
        if args.json:
            with open(args.json, "w") as handle:
                handle.write(reply.body)
            if not args.quiet:
                print(f"  result written to {args.json}")
        else:
            from .core.scenario import ScenarioResult
            outcome = ScenarioResult.from_dict(reply.payload)
            print(outcome.result.summary())
        return 0
    if reply.code == 202:
        print(f"pending: the service queued key {reply.key[:12]} "
              f"(re-query or raise --wait)", file=sys.stderr)
        return 3
    error = reply.payload.get("error") if isinstance(reply.payload, dict) \
        else reply.body
    print(f"error: service replied {reply.code}: {error}", file=sys.stderr)
    return 2


# --------------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro`` argument parser (single source of truth for the generated CLI reference in the docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GALS processor reproduction (Iyer & Marculescu, "
                    "ISCA 2002): scenario runner and figure harness.")
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser(
        "list", help="list registered topologies/policies/workloads/scenarios")
    list_parser.add_argument(
        "what", nargs="?", default="all",
        choices=("all", "topologies", "policies", "controllers", "workloads",
                 "scenarios", "backends"))
    list_parser.set_defaults(handler=_cmd_list)

    topo_parser = sub.add_parser("topology",
                                 help="describe one clock-domain topology")
    topo_parser.add_argument("name")
    topo_parser.set_defaults(handler=_cmd_topology)

    show_parser = sub.add_parser("show",
                                 help="print a registered scenario as JSON")
    show_parser.add_argument("scenario")
    show_parser.set_defaults(handler=_cmd_show)

    run_parser = sub.add_parser("run", help="run one scenario")
    run_parser.add_argument("scenario", help="registered scenario name")
    _add_override_arguments(run_parser)
    _add_cache_arguments(run_parser, default=False)
    run_parser.add_argument("--json", metavar="PATH",
                            help="write the full ScenarioResult as JSON")
    run_parser.add_argument("--quiet", action="store_true")
    run_parser.set_defaults(handler=_cmd_run)

    profile_parser = sub.add_parser(
        "profile",
        help="run one scenario under cProfile and print the hottest functions")
    profile_parser.add_argument("scenario", help="registered scenario name")
    _add_override_arguments(profile_parser)
    profile_parser.add_argument("--sort", default="cumulative",
                                choices=("cumulative", "tottime", "calls",
                                         "ncalls", "pcalls", "time"),
                                help="pstats sort key (default: cumulative)")
    profile_parser.add_argument("--limit", type=int, default=25, metavar="N",
                                help="number of functions to print "
                                     "(default: 25)")
    profile_parser.add_argument("--json", metavar="PATH",
                                help="write the top functions and run "
                                     "metadata as JSON (CI artifact)")
    profile_parser.add_argument("--quiet", action="store_true")
    profile_parser.set_defaults(handler=_cmd_profile)

    sweep_parser = sub.add_parser(
        "sweep", help="run several scenarios over the process pool")
    sweep_parser.add_argument("scenarios", nargs="*",
                              help="registered scenario names")
    sweep_parser.add_argument("--all", action="store_true",
                              help="sweep every registered scenario")
    sweep_parser.add_argument("--jobs", type=int,
                              help="worker processes (default: REPRO_JOBS "
                                   "or the CPU count)")
    sweep_parser.add_argument("--job-backend", dest="job_backend",
                              metavar="NAME",
                              help="job backend for computed scenarios "
                                   "(serial, local, subprocess; see 'repro "
                                   "list backends'; default: local)")
    sweep_parser.add_argument("--instructions", type=int, metavar="N")
    sweep_parser.add_argument("--seed", type=int)
    _add_cache_arguments(sweep_parser, default=False)
    sweep_parser.add_argument("--json", metavar="PATH",
                              help="write all results as a JSON array")
    sweep_parser.add_argument("--quiet", action="store_true")
    sweep_parser.set_defaults(handler=_cmd_sweep)

    cache_parser = sub.add_parser(
        "cache", help="inspect/maintain the persistent results store")
    cache_parser.add_argument("action",
                              choices=("ls", "gc", "clear", "verify",
                                       "claims", "quarantine"),
                              help="ls: list entries; gc: drop entries from "
                                   "other code fingerprints; clear: drop "
                                   "everything; verify: checksum-scan every "
                                   "entry (quarantines corrupt ones); "
                                   "claims: list live/expired claim leases; "
                                   "quarantine: list (or --clear) "
                                   "quarantined files")
    cache_parser.add_argument("--cache-dir", metavar="PATH", dest="cache_dir",
                              help="results-store root (default: "
                                   "REPRO_CACHE_DIR or ~/.cache/repro)")
    cache_parser.add_argument("--clear", action="store_true",
                              help="with 'quarantine': delete the "
                                   "quarantined files after inspection")
    cache_parser.set_defaults(handler=_cmd_cache)

    bench_parser = sub.add_parser(
        "bench", help="benchmark-trajectory utilities (BENCH_sim_core.json)")
    bench_sub = bench_parser.add_subparsers(dest="family", required=True)
    history_parser = bench_sub.add_parser(
        "history", help="per-commit benchmark trajectory with regression "
                        "flags (cohorts by CPython minor + kernel backend)")
    history_parser.add_argument("--bench-file", metavar="PATH",
                                dest="bench_file",
                                help="record file (default: BENCH_sim_core"
                                     ".json, searched upward from the "
                                     "current directory)")
    history_parser.add_argument("--threshold", type=float, default=0.25,
                                metavar="FRACTION",
                                help="flag drops beyond this fraction vs the "
                                     "previous same-cohort record "
                                     "(default: 0.25)")
    history_parser.add_argument("--normalise", action="store_true",
                                help="show ratios to each record's live "
                                     "seed-engine throughput (comparable "
                                     "across hosts) instead of raw rates")
    history_parser.set_defaults(handler=_cmd_bench_history)

    report_parser = sub.add_parser(
        "report", help="render the paper's figure tables from fresh runs")
    report_sub = report_parser.add_subparsers(dest="family", required=True)
    baseline_parser = report_sub.add_parser(
        "baseline", help="Figures 5-9: base vs GALS at equal clocks")
    baseline_parser.add_argument("--benchmarks", nargs="+")
    baseline_parser.add_argument("--instructions", type=int,
                                 default=DEFAULT_INSTRUCTIONS)
    baseline_parser.add_argument("--jobs", type=int)
    baseline_parser.set_defaults(handler=_cmd_report)
    dvfs_parser = report_sub.add_parser(
        "dvfs", help="Figures 11-13: multiple-clock/voltage case studies")
    dvfs_parser.add_argument("--benchmark",
                             default=DVFS_CASE_STUDY_BENCHMARKS[0])
    dvfs_parser.add_argument("--policies", nargs="+")
    dvfs_parser.add_argument("--instructions", type=int,
                             default=DEFAULT_INSTRUCTIONS)
    dvfs_parser.add_argument("--jobs", type=int)
    dvfs_parser.set_defaults(handler=_cmd_report)
    compare_parser = report_sub.add_parser(
        "compare", help="cross-topology design-space tables (IPC, energy, "
                        "ED, ED2) rendered from cached results")
    compare_parser.add_argument("--topologies", nargs="+",
                                help="topologies to compare (default: all "
                                     "registered)")
    compare_parser.add_argument("--workloads", nargs="+", default=["perl"])
    compare_parser.add_argument("--policies", nargs="+",
                                help="DVFS policies ('none' = uniform "
                                     "clocks; default: none)")
    compare_parser.add_argument("--controllers", nargs="+",
                                help="online DVFS controllers ('none' = "
                                     "static clocking; default: none)")
    compare_parser.add_argument("--instructions", type=int,
                                default=DEFAULT_INSTRUCTIONS)
    compare_parser.add_argument("--seed", type=int, default=1)
    compare_parser.add_argument("--jobs", type=int)
    compare_parser.add_argument("--job-backend", dest="job_backend",
                                metavar="NAME",
                                help="job backend for computed grid cells "
                                     "(serial, local, subprocess; default: "
                                     "local)")
    _add_cache_arguments(compare_parser, default=True)
    compare_parser.add_argument("--json", metavar="PATH",
                                help="write the metric records as JSON "
                                     "(CI artifact format)")
    compare_parser.set_defaults(handler=_cmd_report)

    serve_parser = sub.add_parser(
        "serve", help="serve the results store over a JSON HTTP API "
                      "(misses are queued on a job backend)")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default: 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8000,
                              help="TCP port; 0 binds an ephemeral port "
                                   "printed on startup (default: 8000)")
    serve_parser.add_argument("--cache-dir", metavar="PATH", dest="cache_dir",
                              help="results-store root (default: "
                                   "REPRO_CACHE_DIR or ~/.cache/repro)")
    serve_parser.add_argument("--job-backend", dest="job_backend",
                              metavar="NAME",
                              help="job backend for queued misses (serial, "
                                   "local, subprocess; default: local)")
    serve_parser.add_argument("--jobs", type=int,
                              help="worker processes for the job backend "
                                   "(default: REPRO_JOBS or the CPU count)")
    serve_parser.add_argument("--poll-interval", type=float, default=0.25,
                              dest="poll_interval", metavar="SECONDS",
                              help="miss-batching window of the background "
                                   "sweep thread (default: 0.25)")
    serve_parser.add_argument("--quiet", action="store_true",
                              help="suppress per-request access logging")
    serve_parser.set_defaults(handler=_cmd_serve)

    query_parser = sub.add_parser(
        "query", help="query a running 'repro serve' for one scenario")
    query_parser.add_argument("scenario", help="registered scenario name")
    _add_override_arguments(query_parser)
    query_parser.add_argument("--url", default="http://127.0.0.1:8000",
                              help="service base URL "
                                   "(default: http://127.0.0.1:8000)")
    query_parser.add_argument("--wait", type=float, default=0.0,
                              metavar="SECONDS",
                              help="keep polling a 202 (queued miss) up to "
                                   "this long (default: return immediately)")
    query_parser.add_argument("--poll", type=float, default=0.2,
                              metavar="SECONDS",
                              help="poll interval while waiting "
                                   "(default: 0.2)")
    query_parser.add_argument("--json", metavar="PATH",
                              help="write the served ScenarioResult JSON "
                                   "(byte-identical to repro run --json)")
    query_parser.add_argument("--quiet", action="store_true")
    query_parser.set_defaults(handler=_cmd_query)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except KeyError as exc:
        # registry lookups raise KeyError with a helpful message
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except (ValueError, TypeError, OSError) as exc:
        # TypeError covers non-numeric override values (--slowdown fetch=abc)
        # and misspelled --config fields reaching dataclasses.replace
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
