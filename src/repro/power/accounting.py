"""Per-cycle, per-block energy accounting (the Wattch integration layer).

A :class:`PowerAccountant` owns the set of macro-block energy models, knows
which clock domain each block belongs to, and observes every domain's clock
edge.  Logically, on each edge it drains that cycle's access counts from the
shared :class:`~repro.power.activity.ActivityCounters`, charges each block its
cycle energy (full, utilisation-scaled, or 10 %-idle; clock grids are never
gated) at the domain's current supply voltage, and accumulates the results.

Physically the accounting is *deferred*: per edge, each (block, domain) cell
only extends a run-length-encoded ``(cycle_energy, repeat_count)`` segment
buffer -- and a *quiescent* edge (zero activity drained for every gated block
of the domain, voltage unchanged) is a single run-counter increment fused
into the domain tick (:meth:`~repro.sim.clock.ClockDomain.attach_power_probe`)
with no per-cell work at all.  The buffered segments are replayed **in their
original order, one float addition per edge per block** -- never reassociated
-- when the accountant is *flushed*, so every observable number is bit-equal
to the eager implementation.  The flush points are exactly the observation
points: :meth:`total_energy` / :meth:`breakdown` (and the ``energy_by_block``
view), the DVFS controller's epoch sampling, ``Processor.retime_domain``
(a voltage change must close the open run at the old voltage), and the end of
a run.

The output is an :class:`EnergyBreakdown` -- total energy, average power and
the per-macro-block split of Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import repeat
from typing import Dict, List, Optional

from ..sim.clock import ClockDomain
from .activity import ActivityCounters
from .blocks import BREAKDOWN_CATEGORIES, BlockEnergyModel
from .technology import DEFAULT_TECHNOLOGY, TechnologyParameters

# Gated-cell layout.  Slots 0-1 belong to ActivityCounters ([pending,
# total]); the accountant extends the same list so the per-edge probe and the
# pipeline producers share one object with no dictionary in between.
_C_PENDING = 0        # accesses recorded since the domain's last edge
_C_TOTAL = 1          # cumulative drained accesses
_C_LAST_E = 2         # cycle energy of the open RLE run (None before any edge)
_C_LAST_N = 3         # repeat count of the open RLE run (0 = no open run)
_C_SEGMENTS = 4       # closed (cycle_energy, repeat_count) segments, in order
_C_MEMO = 5           # accesses -> cycle energy at the current voltage
_C_MODEL = 6          # the BlockEnergyModel
_C_IDLE_E = 7         # cycle energy of a zero-access cycle at current voltage
_C_NAME = 8           # block name (flush target in energy_by_block)
_C_SEEN = 9           # domain edge count this cell is accounted through
_C_LAST_ACC = 10      # access count charged on the cell's last active edge

# Domain state vector shared with the fused clock-domain probe.  A cell that
# stays idle is not touched at all on the per-edge path: the difference
# between the domain's edge counter and the cell's ``seen`` counter is the
# run of idle cycles, materialised lazily (all within one voltage run, so
# the idle cycle energy of the gap is a single constant).
_S_VDD = 0            # voltage of the open run (None before the first edge)
_S_EDGES = 1          # edges accounted for this domain since creation
_S_RUN_START = 2      # _S_EDGES value when the current voltage run began


@dataclass
class EnergyBreakdown:
    """Result of a power-accounted simulation run."""

    by_block: Dict[str, float] = field(default_factory=dict)
    by_category: Dict[str, float] = field(default_factory=dict)
    by_domain: Dict[str, float] = field(default_factory=dict)
    total_energy_nj: float = 0.0
    elapsed_ns: float = 0.0

    @property
    def average_power_w(self) -> float:
        """Average power in watts (nJ / ns == W)."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.total_energy_nj / self.elapsed_ns

    def category_share(self, category: str) -> float:
        """Fraction of total energy spent in one reporting category."""
        if self.total_energy_nj <= 0:
            return 0.0
        return self.by_category.get(category, 0.0) / self.total_energy_nj

    def normalised_to(self, reference: "EnergyBreakdown") -> Dict[str, float]:
        """Energy of each category normalised to a reference run (Figure 10)."""
        if reference.total_energy_nj <= 0:
            raise ValueError("reference breakdown has no energy")
        return {category: self.by_category.get(category, 0.0)
                / reference.total_energy_nj
                for category in BREAKDOWN_CATEGORIES}


class PowerAccountant:
    """Deferred, flush-on-read energy accounting over every clock domain."""

    def __init__(self, activity: ActivityCounters,
                 tech: TechnologyParameters = DEFAULT_TECHNOLOGY) -> None:
        self.activity = activity
        self.tech = tech
        self._blocks_by_domain: Dict[str, List[BlockEnergyModel]] = {}
        self._domains: Dict[str, ClockDomain] = {}
        self._block_domain: Dict[str, str] = {}
        self._energy_by_block: Dict[str, float] = {}
        #: per-domain [state, gated_cells, ungated_cells, vdd_runs]
        self._records: Dict[str, list] = {}

    @property
    def energy_by_block(self) -> Dict[str, float]:
        """Accumulated energy per block (nJ), flushed to the current edge.

        Reading this property is an observation point: deferred segments are
        replayed first, so the returned (live) dict is always current.
        """
        self.flush()
        return self._energy_by_block

    @property
    def cycles_by_domain(self) -> Dict[str, int]:
        """Edges charged per domain (the domains' own cycle counters)."""
        return {name: domain.cycle for name, domain in self._domains.items()}

    # ------------------------------------------------------------ registration
    def register_block(self, model: BlockEnergyModel, domain: ClockDomain) -> None:
        """Assign a block model to the clock domain that charges it.

        Registering into a domain that has already accumulated edges flushes
        first, so the new block is only charged from this point on.
        """
        if model.name in self._block_domain:
            raise ValueError(f"block {model.name!r} registered twice")
        record = self._records.get(domain.name)
        if record is None:
            #          state,            gated, ungated, vdd_runs
            record = [[None, 0, 0], [], [], []]
            self._records[domain.name] = record
            self._domains[domain.name] = domain
            domain.attach_power_probe(self._make_probe(domain, record))
        else:
            self.flush()
        self._blocks_by_domain.setdefault(domain.name, []).append(model)
        self._block_domain[model.name] = domain.name
        self._energy_by_block[model.name] = 0.0
        if model.gated:
            cell = self.activity.cell(model.name)
            if len(cell) == 2:
                # joining an already-running domain: the voltage run is open,
                # so derive the idle cycle energy now (rebuild only runs on
                # the next voltage change)
                vdd = record[0][0]
                idle_e = (model.cycle_energy(0, vdd, self.tech)
                          if vdd is not None else 0.0)
                cell.extend([None, 0, [], {}, model, idle_e, model.name,
                             record[0][1], -1])
            else:  # pragma: no cover - same block shared across accountants
                raise ValueError(f"block {model.name!r} already has an "
                                 "accounting cell")
            record[1].append(cell)
        else:
            # Always-on blocks (clock grids): per-edge energy depends only on
            # the voltage, so one per-domain (vdd, edges) run list covers all
            # of them and nothing touches them on the per-edge path.
            record[2].append([model, model.name, {}])

    def _make_probe(self, domain: ClockDomain, record: list):
        """Build the (gated_cells, state, active_edge) probe for one domain.

        The quiescent fast path (zero pending accesses, voltage unchanged) is
        executed inline by the domain tick itself; ``active_edge`` is the
        slow path that materialises the deferred quiescent run and extends
        each cell's RLE buffer for the current edge.  ``cycle_energy`` is a
        pure function of the access count for a fixed block, supply voltage
        and technology, and per-cycle access counts are tiny integers, so
        each cell keeps a memo of exact cycle energies by access count
        (invalidated whenever the domain voltage changes).
        """
        state, gated, _ungated, vdd_runs = record
        tech = self.tech

        def rebuild(vdd: float) -> None:
            # Voltage changed: materialise every cell's idle gap and close
            # the run at the old voltage first, then re-derive the per-cell
            # memos at the new one.
            edges = state[1]
            for cell in gated:
                gap = edges - cell[9]
                if gap:
                    cell[9] = edges
                    e = cell[7]
                    if cell[2] == e:
                        cell[3] += gap
                    else:
                        if cell[3]:
                            cell[4].append((cell[2], cell[3]))
                        cell[2] = e
                        cell[3] = gap
                cell[5].clear()
                cell[7] = cell[6].cycle_energy(0, vdd, tech)
                cell[10] = -1
            run = edges - state[2]
            if run:
                vdd_runs.append((state[0], run))
                state[2] = edges
            state[0] = vdd

        def active_edge() -> None:
            vdd = domain.voltage
            if vdd != state[0]:
                rebuild(vdd)
            edges = state[1]
            edges_after = edges + 1
            state[1] = edges_after
            for cell in gated:
                accesses = cell[0]
                if not accesses:
                    continue          # idle cell: its gap run grows for free
                cell[0] = 0
                cell[1] += accesses
                if cell[9] == edges and accesses == cell[10]:
                    # consecutive active edge with the same access count:
                    # same cycle energy, so the open RLE run just grows
                    cell[3] += 1
                    cell[9] = edges_after
                    continue
                gap = edges - cell[9]
                cell[9] = edges_after
                if gap:
                    e = cell[7]
                    if cell[2] == e:
                        cell[3] += gap
                    else:
                        if cell[3]:
                            cell[4].append((cell[2], cell[3]))
                        cell[2] = e
                        cell[3] = gap
                memo = cell[5]
                e = memo.get(accesses)
                if e is None:
                    e = cell[6].cycle_energy(accesses, vdd, tech)
                    memo[accesses] = e
                cell[10] = accesses
                if cell[2] == e:
                    cell[3] += 1
                else:
                    if cell[3]:
                        cell[4].append((cell[2], cell[3]))
                    cell[2] = e
                    cell[3] = 1

        return (gated, state, active_edge)

    # ----------------------------------------------------------------- flush
    def flush(self) -> None:
        """Replay every deferred segment into the per-block accumulators.

        Replays happen in original per-edge order within each accumulator --
        one float addition per edge per block, exactly the additions the
        eager implementation performed -- so flushed totals are bit-identical
        no matter when (or how often) the flush happens.
        """
        energy = self._energy_by_block
        tech = self.tech
        for record in self._records.values():
            state, gated, ungated, vdd_runs = record
            edges = state[1]
            for cell in gated:
                # materialise the idle gap, then replay the RLE buffer; the
                # gap charge moves the open run to the idle energy, so the
                # consecutive-same-count hint no longer describes cell[2]
                gap = edges - cell[9]
                if gap:
                    cell[9] = edges
                    cell[10] = -1
                    e = cell[7]
                    if cell[2] == e:
                        cell[3] += gap
                    else:
                        if cell[3]:
                            cell[4].append((cell[2], cell[3]))
                        cell[2] = e
                        cell[3] = gap
                segments = cell[4]
                tail = cell[3]
                if not segments and not tail:
                    continue
                acc = energy[cell[8]]
                for e, n in segments:
                    for _ in repeat(None, n):
                        acc += e
                segments.clear()
                if tail:
                    e = cell[2]
                    for _ in repeat(None, tail):
                        acc += e
                    cell[3] = 0
                energy[cell[8]] = acc
            run = edges - state[2]
            if run:
                vdd_runs.append((state[0], run))
                state[2] = edges
            if vdd_runs:
                for model, name, memo in ungated:
                    acc = energy[name]
                    for vdd, n in vdd_runs:
                        e = memo.get(vdd)
                        if e is None:
                            e = model.cycle_energy(0, vdd, tech)
                            memo[vdd] = e
                        for _ in repeat(None, n):
                            acc += e
                    energy[name] = acc
                vdd_runs.clear()

    # ----------------------------------------------------------------- results
    def total_energy(self) -> float:
        """Total accumulated energy over every block, in nJ (flushes first)."""
        self.flush()
        return sum(self._energy_by_block.values())

    def breakdown(self, elapsed_ns: Optional[float] = None) -> EnergyBreakdown:
        """Snapshot the accumulated energy as an :class:`EnergyBreakdown`."""
        self.flush()
        categories: Dict[str, float] = {}
        domains: Dict[str, float] = {}
        model_by_name = {m.name: m
                         for models in self._blocks_by_domain.values()
                         for m in models}
        for name, energy in self._energy_by_block.items():
            category = model_by_name[name].category
            categories[category] = categories.get(category, 0.0) + energy
            domain = self._block_domain[name]
            domains[domain] = domains.get(domain, 0.0) + energy
        if elapsed_ns is None:
            elapsed_ns = max((domain.last_edge_time
                              for domain in self._domains.values()),
                             default=0.0)
        return EnergyBreakdown(
            by_block=dict(self._energy_by_block),
            by_category=categories,
            by_domain=domains,
            total_energy_nj=sum(self._energy_by_block.values()),
            elapsed_ns=elapsed_ns,
        )
