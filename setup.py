from setuptools import find_packages, setup

setup(
    name="repro-gals",
    version="2.8.0",
    description=(
        "Reproduction of 'Power and Performance Evaluation of Globally "
        "Asynchronous Locally Synchronous Processors' "
        "(Iyer & Marculescu, ISCA 2002)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
)
