"""Unit tests for same-domain pipeline queues (SyncQueue)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.channel import SyncQueue


def test_push_pop_order_and_stats():
    queue = SyncQueue("q", capacity=4)
    queue.push("a", 0.0)
    queue.push("b", 1.0)
    assert queue.occupancy == 2
    assert queue.peek(2.0) == "a"
    assert queue.pop(2.0) == "a"
    assert queue.last_pop_wait == pytest.approx(2.0)
    assert queue.pop(3.0) == "b"
    assert queue.pop_count == 2
    assert queue.push_count == 2
    assert queue.mean_wait == pytest.approx(2.0)


def test_capacity_enforced():
    queue = SyncQueue("q", capacity=2)
    queue.push(1, 0.0)
    queue.push(2, 0.0)
    assert not queue.can_push(0.0)
    with pytest.raises(OverflowError):
        queue.push(3, 0.0)


def test_pop_empty_raises():
    queue = SyncQueue("q", capacity=2)
    assert not queue.can_pop(0.0)
    with pytest.raises(LookupError):
        queue.pop(0.0)
    with pytest.raises(LookupError):
        queue.peek(0.0)


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        SyncQueue("q", capacity=0)


def test_flush_all_and_predicate():
    queue = SyncQueue("q", capacity=8)
    for value in range(6):
        queue.push(value, 0.0)
    dropped = queue.flush(lambda v: v >= 3)
    assert dropped == 3
    assert queue.items() == [0, 1, 2]
    assert queue.flush() == 3
    assert queue.occupancy == 0
    assert queue.flush_count == 6


def test_occupancy_sampling():
    queue = SyncQueue("q", capacity=8)
    queue.push("x", 0.0)
    queue.sample_occupancy()
    queue.push("y", 0.0)
    queue.sample_occupancy()
    assert queue.mean_occupancy == pytest.approx(1.5)


def test_full_stall_recording():
    queue = SyncQueue("q", capacity=1)
    queue.push(1, 0.0)
    queue.record_full_stall()
    queue.record_full_stall()
    assert queue.full_stall_count == 2


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(), min_size=0, max_size=30))
def test_property_fifo_order_preserved(values):
    queue = SyncQueue("q", capacity=max(1, len(values)))
    for i, value in enumerate(values):
        queue.push(value, float(i))
    popped = [queue.pop(100.0) for _ in range(len(values))]
    assert popped == values


# ------------------------------------------------------------------- pop_bulk
def test_pop_bulk_drains_in_order_with_waits():
    queue = SyncQueue("q", capacity=8)
    for i in range(5):
        queue.push(i, float(i))
    batch = queue.pop_bulk(10.0, 3)
    assert [item for item, _ in batch] == [0, 1, 2]
    assert [wait for _, wait in batch] == pytest.approx([10.0, 9.0, 8.0])
    assert queue.pop_count == 3
    assert queue.last_pop_wait == pytest.approx(8.0)
    assert queue.occupancy == 2


def test_pop_bulk_empty_and_limit_handling():
    queue = SyncQueue("q", capacity=4)
    assert queue.pop_bulk(0.0, 4) == []
    queue.push("x", 0.0)
    batch = queue.pop_bulk(1.0, 10)   # limit larger than occupancy
    assert [item for item, _ in batch] == ["x"]
    assert queue.occupancy == 0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(), min_size=0, max_size=30),
       st.integers(min_value=1, max_value=8))
def test_property_pop_bulk_equals_repeated_pop_ready(values, limit):
    """pop_bulk must match a pop_ready loop item-for-item and stat-for-stat."""
    bulk = SyncQueue("bulk", capacity=max(1, len(values)))
    loop = SyncQueue("loop", capacity=max(1, len(values)))
    for i, value in enumerate(values):
        bulk.push(value, float(i))
        loop.push(value, float(i))
    batch = bulk.pop_bulk(50.0, limit)
    expected = []
    for _ in range(limit):
        item = loop.pop_ready(50.0)
        if item is None:
            break
        expected.append((item, loop.last_pop_wait))
    assert batch == expected
    assert bulk.pop_count == loop.pop_count
    assert bulk.total_wait == loop.total_wait
    assert bulk.last_pop_wait == loop.last_pop_wait or not expected
    assert bulk.items() == loop.items()
