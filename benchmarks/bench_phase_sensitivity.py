"""Section 5.1 (text): sensitivity of GALS performance to relative clock phase.

Paper result: with all clocks at the same frequency, performance varies with
the (random) relative phases of the domain clocks by roughly 0.5 %.
"""

from repro.core.experiments import phase_sensitivity

import pytest

#: figure-reproduction benchmarks are tier-2: heavy, skipped by tier-1
pytestmark = pytest.mark.slow


def test_phase_sensitivity(benchmark):
    report = benchmark.pedantic(
        phase_sensitivity,
        kwargs={"benchmark": "perl", "phase_seeds": (0, 1, 2, 3),
                "num_instructions": 800},
        rounds=1, iterations=1)

    print("\n=== Clock-phase sensitivity (perl, equal frequencies) ===")
    for key, value in report.items():
        if key != "spread":
            print(f"  {key}: relative performance {value:.4f}")
    print(f"  spread: {report['spread']:.3%} (paper: ~0.5%)")

    # small but non-zero variation
    assert report["spread"] < 0.06
