"""Instruction set, programs, assembler, functional execution and traces.

This package is the stand-in for the SimpleScalar ISA/functional layer the
paper builds on: it defines a small RISC instruction set, a textual assembler,
a functional executor, and the :class:`~repro.isa.trace.TraceInstruction`
dynamic-trace format that the timing models consume.
"""

from .assembler import AssemblerError, assemble
from .executor import ExecutionLimitExceeded, FunctionalExecutor, execute_program
from .instructions import (DEFAULT_LATENCIES, Instruction, InstructionClass,
                           Opcode, latency_of)
from .program import INSTRUCTION_SIZE, TEXT_BASE, Program
from .registers import (NUM_ARCH_REGS, ZERO_REG, fp_reg, int_reg, is_fp_reg,
                        is_int_reg, parse_reg, reg_name)
from .trace import InstructionSource, ListTraceSource, TraceInstruction

__all__ = [
    "AssemblerError",
    "DEFAULT_LATENCIES",
    "ExecutionLimitExceeded",
    "FunctionalExecutor",
    "INSTRUCTION_SIZE",
    "Instruction",
    "InstructionClass",
    "InstructionSource",
    "ListTraceSource",
    "NUM_ARCH_REGS",
    "Opcode",
    "Program",
    "TEXT_BASE",
    "TraceInstruction",
    "ZERO_REG",
    "assemble",
    "execute_program",
    "fp_reg",
    "int_reg",
    "is_fp_reg",
    "is_int_reg",
    "latency_of",
    "parse_reg",
    "reg_name",
]
