"""Ablation: conditional-clocking (idle power) assumption and voltage scaling.

The paper models unused blocks as consuming 10 % of their full power and uses
Equation 1 with alpha = 1.6 for voltage scaling.  These ablations show how the
headline DVFS result (gcc, Figure 13) depends on those modelling choices: the
poorer the clock gating, the more the slowed configuration's longer run time
costs in idle energy; and a larger alpha (older technology) yields smaller
energy savings for the same slowdown.
"""

import pytest

from repro.core.config import ProcessorConfig
from repro.core.dvfs import GCC_GALS_1
from repro.core.experiments import selective_slowdown
from repro.power.technology import TechnologyParameters
from repro.power.voltage import voltage_for_slowdown

#: figure-reproduction benchmarks are tier-2: heavy, skipped by tier-1
pytestmark = pytest.mark.slow


def _gcc_energy_with_idle_fraction(idle_fraction):
    tech = TechnologyParameters(idle_power_fraction=idle_fraction)
    config = ProcessorConfig(technology=tech)
    result = selective_slowdown("gcc", GCC_GALS_1, num_instructions=800,
                                config=config)
    return result


def test_ablation_idle_power_fraction(benchmark):
    nominal = benchmark.pedantic(_gcc_energy_with_idle_fraction, args=(0.10,),
                                 rounds=1, iterations=1)
    perfect_gating = _gcc_energy_with_idle_fraction(0.0)
    poor_gating = _gcc_energy_with_idle_fraction(0.25)

    print("\n=== Ablation: idle-power fraction (gcc, gals-1 policy) ===")
    for label, result in (("0% (perfect gating)", perfect_gating),
                          ("10% (paper's model)", nominal),
                          ("25% (poor gating)", poor_gating)):
        print(f"idle power {label:<22}: relative energy "
              f"{result.relative_energy:.3f}, power {result.relative_power:.3f}")

    # The poorer the clock gating, the more the GALS configuration's longer
    # run time costs: idle blocks keep burning power for extra nanoseconds, so
    # the relative energy of the slowed-down machine degrades as the idle
    # fraction grows (and improves under perfect gating).
    assert poor_gating.relative_energy >= nominal.relative_energy - 0.01
    assert perfect_gating.relative_energy <= nominal.relative_energy + 0.01


def test_ablation_voltage_scaling_exponent(benchmark):
    """Equation 1: alpha = 2 (0.35 um) vs 1.6 (0.13 um) vs 1.2 (deep submicron)."""
    voltages = benchmark(
        lambda: {alpha: voltage_for_slowdown(
            1.5, TechnologyParameters(alpha=alpha)) for alpha in (1.2, 1.6, 2.0)})
    print("\n=== Ablation: Vdd needed for a 1.5x slowdown vs alpha ===")
    for alpha, vdd in sorted(voltages.items()):
        print(f"alpha {alpha:.1f}: Vdd {vdd:.3f} V "
              f"(energy x{(vdd / 1.5) ** 2:.2f})")
    # Smaller alpha (more advanced technology) allows a deeper voltage drop
    # for the same slowdown -- the paper's point that DVS pays off more in
    # newer technologies.
    assert voltages[1.2] < voltages[1.6] < voltages[2.0]
