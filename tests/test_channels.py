"""Unit tests for same-domain pipeline queues (SyncQueue)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.channel import SyncQueue


def test_push_pop_order_and_stats():
    queue = SyncQueue("q", capacity=4)
    queue.push("a", 0.0)
    queue.push("b", 1.0)
    assert queue.occupancy == 2
    assert queue.peek(2.0) == "a"
    assert queue.pop(2.0) == "a"
    assert queue.last_pop_wait == pytest.approx(2.0)
    assert queue.pop(3.0) == "b"
    assert queue.pop_count == 2
    assert queue.push_count == 2
    assert queue.mean_wait == pytest.approx(2.0)


def test_capacity_enforced():
    queue = SyncQueue("q", capacity=2)
    queue.push(1, 0.0)
    queue.push(2, 0.0)
    assert not queue.can_push(0.0)
    with pytest.raises(OverflowError):
        queue.push(3, 0.0)


def test_pop_empty_raises():
    queue = SyncQueue("q", capacity=2)
    assert not queue.can_pop(0.0)
    with pytest.raises(LookupError):
        queue.pop(0.0)
    with pytest.raises(LookupError):
        queue.peek(0.0)


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        SyncQueue("q", capacity=0)


def test_flush_all_and_predicate():
    queue = SyncQueue("q", capacity=8)
    for value in range(6):
        queue.push(value, 0.0)
    dropped = queue.flush(lambda v: v >= 3)
    assert dropped == 3
    assert queue.items() == [0, 1, 2]
    assert queue.flush() == 3
    assert queue.occupancy == 0
    assert queue.flush_count == 6


def test_occupancy_sampling():
    queue = SyncQueue("q", capacity=8)
    queue.push("x", 0.0)
    queue.sample_occupancy()
    queue.push("y", 0.0)
    queue.sample_occupancy()
    assert queue.mean_occupancy == pytest.approx(1.5)


def test_full_stall_recording():
    queue = SyncQueue("q", capacity=1)
    queue.push(1, 0.0)
    queue.record_full_stall()
    queue.record_full_stall()
    assert queue.full_stall_count == 2


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(), min_size=0, max_size=30))
def test_property_fifo_order_preserved(values):
    queue = SyncQueue("q", capacity=max(1, len(values)))
    for i, value in enumerate(values):
        queue.push(value, float(i))
    popped = [queue.pop(100.0) for _ in range(len(values))]
    assert popped == values
