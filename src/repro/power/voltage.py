"""Dynamic voltage scaling model (paper Equation 1, Section 3.3).

The delay of a logic path depends on supply voltage as::

    D  proportional to  Vdd / (Vdd - Vt) ** alpha

so a clock domain slowed down by a factor *s* (its period multiplied by *s*)
can run at the lower supply voltage at which logic delay has grown by that
same factor.  Dynamic energy scales with Vdd squared, which is where the GALS
machine's energy advantage in the multiple-voltage experiments comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .technology import DEFAULT_TECHNOLOGY, TechnologyParameters


def delay_factor(vdd: float, tech: TechnologyParameters = DEFAULT_TECHNOLOGY) -> float:
    """Relative logic delay at ``vdd``, normalised to the nominal voltage.

    Returns D(vdd) / D(nominal_vdd); 1.0 at nominal, > 1 below it.
    """
    if vdd <= tech.threshold_voltage:
        raise ValueError(f"Vdd {vdd} must exceed the threshold voltage "
                         f"{tech.threshold_voltage}")
    def raw(v: float) -> float:
        """Unnormalised Equation-1 delay at one supply voltage."""
        return v / (v - tech.threshold_voltage) ** tech.alpha
    return raw(vdd) / raw(tech.nominal_vdd)


def voltage_for_slowdown(slowdown: float,
                         tech: TechnologyParameters = DEFAULT_TECHNOLOGY,
                         tolerance: float = 1e-6) -> float:
    """Lowest supply voltage at which logic is at most ``slowdown`` x slower.

    ``slowdown`` is the clock-period stretch factor (1.0 = nominal speed,
    2.0 = half speed).  Values below 1 (overclocking) would require raising
    Vdd above nominal, which the paper does not consider; the nominal voltage
    is returned in that case.

    The equation is monotonic in Vdd, so a simple bisection between Vt and the
    nominal voltage suffices (this is the "ideal" voltage; DC-DC conversion
    overheads are ignored, as in the paper).
    """
    if slowdown <= 0:
        raise ValueError("slowdown must be positive")
    if slowdown <= 1.0:
        return tech.nominal_vdd
    low = tech.threshold_voltage + 1e-4
    high = tech.nominal_vdd
    # delay_factor(low) is huge, delay_factor(high) == 1; find the crossing.
    for _ in range(200):
        mid = 0.5 * (low + high)
        if delay_factor(mid, tech) > slowdown:
            low = mid
        else:
            high = mid
        if high - low < tolerance:
            break
    return high


def energy_scale(vdd: float,
                 tech: TechnologyParameters = DEFAULT_TECHNOLOGY) -> float:
    """Dynamic energy multiplier at ``vdd`` relative to the nominal voltage."""
    if vdd <= 0:
        raise ValueError("Vdd must be positive")
    return (vdd / tech.nominal_vdd) ** 2


@dataclass
class OperatingPoint:
    """A (frequency slowdown, supply voltage) pair for one clock domain."""

    slowdown: float
    vdd: float
    tech: TechnologyParameters = DEFAULT_TECHNOLOGY

    @property
    def energy_multiplier(self) -> float:
        """Dynamic-energy scale factor (Vdd squared) at this operating point."""
        return energy_scale(self.vdd, self.tech)

    @property
    def frequency_ghz(self) -> float:
        """Clock frequency at this operating point, in GHz."""
        return self.tech.nominal_frequency_ghz / self.slowdown


def operating_point_for_slowdown(slowdown: float,
                                 tech: TechnologyParameters = DEFAULT_TECHNOLOGY,
                                 conversion_efficiency: float = 1.0,
                                 ) -> OperatingPoint:
    """Slowdown -> (voltage, energy multiplier) with optional DC-DC loss.

    ``conversion_efficiency`` < 1 models the practical overhead of level
    conversion / DC-DC regulation the paper mentions but idealises away; the
    delivered energy saving is divided by it.
    """
    if not 0 < conversion_efficiency <= 1:
        raise ValueError("conversion_efficiency must be in (0, 1]")
    vdd = voltage_for_slowdown(slowdown, tech)
    if conversion_efficiency < 1.0:
        # Lost efficiency shows up as a higher effective voltage for energy
        # purposes (same delivered charge, more drawn energy).
        effective = min(tech.nominal_vdd, vdd / conversion_efficiency ** 0.5)
        vdd = effective
    return OperatingPoint(slowdown=slowdown, vdd=vdd, tech=tech)


def ideal_synchronous_energy(performance_ratio: float,
                             tech: TechnologyParameters = DEFAULT_TECHNOLOGY,
                             ) -> float:
    """Normalised energy of the base machine slowed to ``performance_ratio``.

    The "ideal" bars of Figures 12 and 13 show the energy of the *fully
    synchronous* processor when its single clock is slowed (and its voltage
    lowered) just enough to match the GALS configuration's performance.
    Slowing a single-clock machine by a factor ``1 / performance_ratio``
    stretches execution time by the same factor while per-cycle energy drops
    with the square of the scaled voltage, so normalised total energy is
    simply the energy multiplier at that voltage.
    """
    if not 0 < performance_ratio <= 1:
        raise ValueError("performance_ratio must be in (0, 1]")
    slowdown = 1.0 / performance_ratio
    vdd = voltage_for_slowdown(slowdown, tech)
    return energy_scale(vdd, tech)
