"""Integration tests: the synchronous (base) processor end to end."""

import pytest

from repro.core.config import ProcessorConfig
from repro.core.processor import build_base_processor
from repro.isa.instructions import InstructionClass
from repro.workloads.kernels import kernel_trace
from repro.workloads.synthetic import make_workload


def run_base(benchmark="perl", instructions=600, config=None, **kwargs):
    workload = make_workload(benchmark, seed=1)
    trace = workload.trace(instructions)
    processor = build_base_processor(trace, workload=workload,
                                     config=config or ProcessorConfig(), **kwargs)
    return processor, processor.run()


def test_base_processor_commits_every_instruction(perl_base):
    assert perl_base.processor == "base"
    assert perl_base.committed_instructions == 900
    assert perl_base.elapsed_ns > 0
    assert 0.3 < perl_base.ipc < 4.0


def test_base_processor_slip_and_energy_positive(perl_base):
    assert perl_base.mean_slip_ns > 0
    assert perl_base.total_energy_nj > 0
    assert perl_base.average_power_w > 0
    # a single-clock machine spends no time in mixed-clock FIFOs
    assert perl_base.mean_fifo_time_ns == pytest.approx(0.0)
    assert perl_base.fifo_slip_fraction == pytest.approx(0.0)


def test_base_breakdown_includes_global_clock_and_sums(perl_base):
    breakdown = perl_base.energy
    assert breakdown.by_category.get("Global clock", 0.0) > 0
    assert breakdown.by_category.get("FIFOs", 0.0) == 0.0
    assert sum(breakdown.by_block.values()) == pytest.approx(
        breakdown.total_energy_nj, rel=1e-9)
    assert sum(breakdown.by_category.values()) == pytest.approx(
        breakdown.total_energy_nj, rel=1e-9)
    # the global clock grid should be a visible but not dominant share
    assert 0.03 < breakdown.category_share("Global clock") < 0.30


def test_base_single_domain_clocking(perl_base):
    assert set(perl_base.domain_cycles) == {"core"}
    assert perl_base.domain_cycles["core"] > 0
    assert perl_base.domain_voltages["core"] == pytest.approx(1.5)


def test_base_statistics_are_consistent(perl_base):
    assert perl_base.fetched_instructions >= perl_base.committed_instructions
    assert 0.0 <= perl_base.misspeculated_fraction < 0.6
    assert 0.0 <= perl_base.branch_misprediction_rate < 0.4
    assert 0.0 <= perl_base.dcache_miss_rate < 0.5
    assert perl_base.mean_rob_occupancy > 0
    assert perl_base.mean_int_regs_in_use >= 32


def test_processor_cannot_run_twice():
    processor, _ = run_base(instructions=150)
    with pytest.raises(RuntimeError):
        processor.run()


def test_base_runs_kernel_traces():
    trace = kernel_trace("vector_sum", 40)
    processor = build_base_processor(trace)
    result = processor.run()
    assert result.committed_instructions == len(trace)
    assert result.ipc > 0.3
    # the kernel is a tight loop: its conditional branch is strongly biased
    assert result.branch_misprediction_rate < 0.3


def test_base_fp_kernel_uses_fp_cluster():
    trace = kernel_trace("saxpy", 30)
    processor = build_base_processor(trace)
    result = processor.run()
    assert result.committed_instructions == len(trace)
    assert processor.exec_units["fp"].issued_ops > 0
    assert processor.exec_units["mem"].issued_ops > 0


def test_mispredictions_trigger_recoveries(perl_base, perl_pair):
    # perl has enough hard branches that at least some recoveries happen
    assert perl_base.recoveries > 0
    assert perl_base.wrong_path_fetched > 0


def test_cold_caches_slow_the_machine_down():
    _, warm = run_base(instructions=400)
    _, cold = run_base(instructions=400,
                       config=ProcessorConfig(warm_caches=False))
    assert cold.elapsed_ns > warm.elapsed_ns
    assert cold.icache_miss_rate >= warm.icache_miss_rate


def test_smaller_rob_reduces_performance():
    _, big = run_base(benchmark="swim", instructions=400)
    _, small = run_base(benchmark="swim", instructions=400,
                        config=ProcessorConfig(rob_entries=8))
    assert small.elapsed_ns > big.elapsed_ns


def test_committed_mix_contains_expected_classes(perl_base, perl_pair):
    # reconstruct from the stats the commit unit collected
    classes = perl_pair.base_result
    assert classes.committed_instructions == 900
