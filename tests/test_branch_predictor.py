"""Unit tests for branch direction predictors and the BTB."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch.branch_predictor import (BimodalPredictor, BranchTargetBuffer,
                                          BranchUnit, GSharePredictor,
                                          make_direction_predictor)


def train(predictor, pc, outcomes):
    for taken in outcomes:
        predicted = predictor.predict(pc)
        predictor.update(pc, taken, predicted)


def test_bimodal_learns_a_biased_branch():
    predictor = BimodalPredictor(entries=64)
    train(predictor, 0x400100, [True] * 10)
    assert predictor.predict(0x400100) is True
    train(predictor, 0x400200, [False] * 10)
    assert predictor.predict(0x400200) is False


def test_bimodal_hysteresis_tolerates_single_flip():
    predictor = BimodalPredictor(entries=64)
    train(predictor, 0x400100, [True] * 8)
    train(predictor, 0x400100, [False])   # one anomaly
    assert predictor.predict(0x400100) is True


def test_gshare_learns_alternating_pattern():
    predictor = GSharePredictor(entries=1024, history_bits=4)
    pattern = [True, False] * 60
    train(predictor, 0x400300, pattern)
    # after training, accuracy on the next pattern repetitions should be high
    correct = 0
    for taken in [True, False] * 20:
        predicted = predictor.predict(0x400300)
        correct += (predicted == taken)
        predictor.update(0x400300, taken, predicted)
    assert correct >= 30


def test_predictor_stats_accumulate():
    predictor = BimodalPredictor(entries=64)
    train(predictor, 0x1000, [True, True, False])
    assert predictor.stats.lookups == 3
    assert predictor.stats.mispredictions + predictor.stats.correct == 3
    assert 0.0 <= predictor.stats.accuracy <= 1.0


def test_predictor_table_size_validation():
    with pytest.raises(ValueError):
        BimodalPredictor(entries=1000)  # not a power of two
    with pytest.raises(ValueError):
        GSharePredictor(entries=1024, history_bits=0)


def test_make_direction_predictor_factory():
    assert isinstance(make_direction_predictor("bimodal"), BimodalPredictor)
    assert isinstance(make_direction_predictor("gshare"), GSharePredictor)
    with pytest.raises(ValueError):
        make_direction_predictor("perceptron")


def test_btb_stores_and_replaces_targets():
    btb = BranchTargetBuffer(entries=16, associativity=2)
    btb.update(0x400100, 0x400800)
    assert btb.lookup(0x400100) == 0x400800
    btb.update(0x400100, 0x400900)
    assert btb.lookup(0x400100) == 0x400900
    assert btb.lookup(0x999999) is None
    assert btb.hits == 2 and btb.misses == 1


def test_btb_capacity_eviction_within_set():
    btb = BranchTargetBuffer(entries=2, associativity=2)  # one set
    btb.update(0x100, 1)
    btb.update(0x200, 2)
    btb.update(0x300, 3)  # evicts LRU (0x100)
    assert btb.lookup(0x100) is None
    assert btb.lookup(0x300) == 3


def test_btb_validation():
    with pytest.raises(ValueError):
        BranchTargetBuffer(entries=10, associativity=4)


def test_branch_unit_predict_and_resolve_cycle():
    unit = BranchUnit(BimodalPredictor(entries=64), BranchTargetBuffer(16, 2))
    pc, target = 0x400100, 0x400500
    for _ in range(6):
        taken, _ = unit.predict(pc)
        unit.resolve(pc, True, taken, target)
    taken, predicted_target = unit.predict(pc)
    assert taken is True
    assert predicted_target == target
    assert unit.misprediction_rate < 0.5
    assert unit.lookups == 7


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=0.85, max_value=1.0))
def test_property_bimodal_accuracy_tracks_bias(bias):
    """On a strongly biased branch, a trained 2-bit counter is nearly optimal."""
    import random
    rng = random.Random(42)
    predictor = BimodalPredictor(entries=64)
    pc = 0x400400
    outcomes = [rng.random() < bias for _ in range(400)]
    correct = 0
    for taken in outcomes:
        predicted = predictor.predict(pc)
        correct += (predicted == taken)
        predictor.update(pc, taken, predicted)
    accuracy = correct / len(outcomes)
    assert accuracy >= bias - 0.15
