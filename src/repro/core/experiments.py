"""Experiment drivers reproducing the paper's evaluation (Section 5).

Two experiment families exist, mirroring Section 5:

1. **Base vs GALS with all clocks equal** (Figures 5-10):
   :func:`run_pair` / :func:`baseline_comparison` run the same workload on the
   synchronous and GALS machines and normalise the GALS results.

2. **Multiple-clock, multiple-voltage GALS** (Figures 11-13):
   :func:`selective_slowdown` applies a per-domain slowdown policy with
   Equation-1 voltage scaling and also computes the "ideal" reference -- the
   synchronous machine globally slowed (and voltage-scaled) to the same
   performance level.

All drivers are deterministic given their seeds and work from the synthetic
profile-driven workloads by default; any
:class:`~repro.isa.trace.ListTraceSource` (e.g. a kernel trace) can be passed
instead.

Every driver funnels through the single scenario execution path
(:func:`repro.core.scenario.execute_run`), so an experiment run and the
equivalent declarative :class:`~repro.core.scenario.Scenario` produce
bit-identical results.  The parallel runner (``jobs=`` / ``REPRO_JOBS``)
lives in :mod:`repro.core.scenario`; its names are re-exported here for
backwards compatibility.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..power.voltage import ideal_synchronous_energy
from ..workloads.profiles import DEFAULT_BENCHMARKS
from ..workloads.registry import build_workload
from .config import DEFAULT_CONFIG, ProcessorConfig
from .domains import (ClockPlan, available_topologies, get_topology,
                      uniform_plan)
from .dvfs import SlowdownPolicy
from .metrics import (ComparisonRow, SimulationResult, arithmetic_mean, compare)
from .scenario import (DEFAULT_INSTRUCTIONS, JOBS_ENV_VAR, Scenario,
                       ScenarioResult, _UNSET, _call_star, _run_jobs,
                       default_jobs, execute_run, sweep_scenarios)


@dataclass
class DvfsResult:
    """Outcome of one multiple-clock / multiple-voltage configuration."""

    benchmark: str
    policy: str
    relative_performance: float    # vs. the fully synchronous base
    relative_energy: float
    relative_power: float
    ideal_energy: float            # voltage-scaled synchronous reference
    gals_result: Optional[SimulationResult] = None
    base_result: Optional[SimulationResult] = None

    @property
    def performance_drop(self) -> float:
        """Fractional slowdown vs the synchronous base (0.1 = 10 % slower)."""
        return 1.0 - self.relative_performance

    @property
    def energy_saving(self) -> float:
        """Fractional energy saved vs the synchronous base."""
        return 1.0 - self.relative_energy

    @property
    def power_saving(self) -> float:
        """Fractional power saved vs the synchronous base."""
        return 1.0 - self.relative_power


def run_single(benchmark: str,
               processor: str = "base",
               num_instructions: int = DEFAULT_INSTRUCTIONS,
               config: ProcessorConfig = DEFAULT_CONFIG,
               plan: Optional[ClockPlan] = None,
               seed: int = 1) -> SimulationResult:
    """Run one benchmark on one machine (any registered topology name).

    'base' and 'gals' remain the canonical kinds; every other registered
    topology ('frontback2', 'fem3', ...) is accepted the same way, and any
    registered workload name (including 'kernel:<name>') may be passed as
    the benchmark.
    """
    trace, workload = build_workload(benchmark, num_instructions, seed=seed)
    try:
        topology = get_topology(processor)
    except KeyError as exc:
        raise ValueError(f"unknown processor kind {processor!r}") from exc
    return execute_run(trace, topology, config=config, plan=plan,
                       workload=workload)


def run_pair(benchmark: str,
             num_instructions: int = DEFAULT_INSTRUCTIONS,
             config: ProcessorConfig = DEFAULT_CONFIG,
             gals_plan: Optional[ClockPlan] = None,
             base_plan: Optional[ClockPlan] = None,
             seed: int = 1,
             phase_seed: int = 0) -> ComparisonRow:
    """Run the same workload on base and GALS and normalise (Figures 5-9)."""
    if gals_plan is None:
        gals_plan = uniform_plan(phase_seed=phase_seed)
    base = run_single(benchmark, "base", num_instructions, config, base_plan, seed)
    gals = run_single(benchmark, "gals", num_instructions, config, gals_plan, seed)
    return compare(base, gals)


def baseline_comparison(benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
                        num_instructions: int = DEFAULT_INSTRUCTIONS,
                        config: ProcessorConfig = DEFAULT_CONFIG,
                        seed: int = 1,
                        phase_seed: int = 0,
                        jobs: Optional[int] = None) -> List[ComparisonRow]:
    """Experiment set 1: base vs GALS at equal clocks for a benchmark list.

    Runs fan out over a process pool (``jobs`` workers; default REPRO_JOBS or
    the CPU count) and the result list matches the serial path exactly.
    """
    return _run_jobs(
        run_pair,
        [(benchmark, num_instructions, config, None, None, seed, phase_seed)
         for benchmark in benchmarks],
        jobs=jobs)


def average_performance_drop(rows: Iterable[ComparisonRow]) -> float:
    """Arithmetic-mean GALS slowdown over a set of comparison rows."""
    return arithmetic_mean(row.performance_drop for row in rows)


def average_power_saving(rows: Iterable[ComparisonRow]) -> float:
    """Arithmetic-mean GALS power saving over a set of comparison rows."""
    return arithmetic_mean(row.power_saving for row in rows)


def average_energy_increase(rows: Iterable[ComparisonRow]) -> float:
    """Arithmetic-mean GALS energy increase over a set of comparison rows."""
    return arithmetic_mean(row.energy_increase for row in rows)


def average_slip_increase(rows: Iterable[ComparisonRow]) -> float:
    """Arithmetic-mean slip increase (ratio - 1) over a set of comparison rows."""
    return arithmetic_mean(row.slip_ratio - 1.0 for row in rows)


# --------------------------------------------------------- DVFS (Figures 11-13)
def selective_slowdown(benchmark: str,
                       policy: SlowdownPolicy,
                       num_instructions: int = DEFAULT_INSTRUCTIONS,
                       config: ProcessorConfig = DEFAULT_CONFIG,
                       seed: int = 1,
                       phase_seed: int = 0,
                       scale_voltages: bool = True) -> DvfsResult:
    """Experiment set 2: slow selected GALS domains, scale their voltages.

    Returns the GALS configuration's performance/energy/power relative to the
    fully synchronous base, plus the "ideal" energy of the base machine
    globally slowed (and voltage-scaled) to the same performance.
    """
    base = run_single(benchmark, "base", num_instructions, config, None, seed)
    plan = policy.plan(scale_voltages=scale_voltages, phase_seed=phase_seed,
                       technology=config.technology)
    gals = run_single(benchmark, "gals", num_instructions, config, plan, seed)
    relative_performance = base.elapsed_ns / gals.elapsed_ns
    relative_energy = (gals.total_energy_nj / base.total_energy_nj
                       if base.total_energy_nj else 0.0)
    relative_power = (gals.average_power_w / base.average_power_w
                      if base.average_power_w else 0.0)
    ideal = ideal_synchronous_energy(min(1.0, relative_performance),
                                     config.technology)
    return DvfsResult(
        benchmark=benchmark,
        policy=policy.name,
        relative_performance=relative_performance,
        relative_energy=relative_energy,
        relative_power=relative_power,
        ideal_energy=ideal,
        gals_result=gals,
        base_result=base,
    )


def slowdown_sweep(benchmark: str,
                   policies: Sequence[SlowdownPolicy],
                   num_instructions: int = DEFAULT_INSTRUCTIONS,
                   config: ProcessorConfig = DEFAULT_CONFIG,
                   seed: int = 1,
                   jobs: Optional[int] = None) -> List[DvfsResult]:
    """Run a list of slowdown policies on one benchmark (Figure 12 sweep).

    Each policy's base+GALS pair is independent, so the sweep uses the
    parallel runner (see :func:`baseline_comparison`).
    """
    return _run_jobs(
        selective_slowdown,
        [(benchmark, policy, num_instructions, config, seed)
         for policy in policies],
        jobs=jobs)


# ---------------------------------------------------- design-space exploration
def design_space_scenarios(topologies: Optional[Sequence[str]] = None,
                           workloads: Sequence[str] = ("perl",),
                           policies: Sequence[Optional[str]] = (None,),
                           controllers: Sequence[Optional[str]] = (None,),
                           num_instructions: int = DEFAULT_INSTRUCTIONS,
                           seed: int = 1,
                           **scenario_fields) -> List[Scenario]:
    """The topology × workload × policy × controller grid as scenarios.

    Each cell is named ``topology/workload/policy[/controller]`` (``uniform``
    for no policy; the controller segment only appears for adaptive cells) so
    grid cells are stable across invocations -- and, because the
    results-store key ignores scenario names entirely, a cell that matches an
    already cached run (from a plain ``repro run``/``sweep``) is a cache hit
    even under its grid name.  ``controllers`` entries are registered online
    DVFS controller names (:mod:`repro.core.controllers`); ``None`` keeps the
    static path.
    """
    if topologies is None:
        topologies = available_topologies()
    grid = []
    for topology in topologies:
        for workload in workloads:
            for policy in policies:
                for controller in controllers:
                    name = f"{topology}/{workload}/{policy or 'uniform'}"
                    if controller is not None:
                        name += f"/{controller}"
                    grid.append(Scenario(
                        name=name,
                        topology=topology, workload=workload, policy=policy,
                        controller=controller,
                        num_instructions=num_instructions, seed=seed,
                        description="design-space grid cell",
                        **scenario_fields))
    return grid


def run_design_space(topologies: Optional[Sequence[str]] = None,
                     workloads: Sequence[str] = ("perl",),
                     policies: Sequence[Optional[str]] = (None,),
                     controllers: Sequence[Optional[str]] = (None,),
                     num_instructions: int = DEFAULT_INSTRUCTIONS,
                     seed: int = 1,
                     jobs: Optional[int] = None,
                     store=True,
                     execution=None,
                     cache=_UNSET,
                     **scenario_fields) -> List[ScenarioResult]:
    """Run (or load from the results store) the whole design-space grid.

    Feeds ``repro report compare``: with the default ``store=True`` the grid
    is resumable and a repeated invocation renders purely from cached
    :class:`ScenarioResult` records.  ``execution`` selects the job backend
    (see :func:`~repro.core.scenario.sweep_scenarios`); ``cache=`` is the
    deprecated alias of ``store=``.
    """
    if cache is not _UNSET:
        warnings.warn("the cache= parameter is deprecated; use store=",
                      DeprecationWarning, stacklevel=2)
        store = cache
    grid = design_space_scenarios(topologies, workloads, policies, controllers,
                                  num_instructions, seed, **scenario_fields)
    return sweep_scenarios(grid, jobs=jobs, store=store, execution=execution)


# -------------------------------------------------------------- phase studies
def phase_sensitivity(benchmark: str = "perl",
                      phase_seeds: Sequence[int] = (0, 1, 2, 3, 4),
                      num_instructions: int = DEFAULT_INSTRUCTIONS,
                      config: ProcessorConfig = DEFAULT_CONFIG,
                      seed: int = 1,
                      jobs: Optional[int] = None) -> Dict[str, float]:
    """Sensitivity of GALS performance to relative clock phases (§5.1).

    The paper observes a variation of the order of 0.5 % when all clocks run
    at the same frequency with random relative phases.  Returns the relative
    performance for each phase seed plus its spread.  The per-phase GALS runs
    are independent and use the parallel runner.
    """
    base = run_single(benchmark, "base", num_instructions, config, None, seed)
    gals_runs = _run_jobs(
        run_single,
        [(benchmark, "gals", num_instructions, config,
          uniform_plan(phase_seed=phase_seed), seed)
         for phase_seed in phase_seeds],
        jobs=jobs)
    performances = {
        f"phase-{phase_seed}": base.elapsed_ns / gals.elapsed_ns
        for phase_seed, gals in zip(phase_seeds, gals_runs)
    }
    values = list(performances.values())
    performances["spread"] = (max(values) - min(values)) / arithmetic_mean(values)
    return performances
