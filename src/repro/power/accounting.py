"""Per-cycle, per-block energy accounting (the Wattch integration layer).

A :class:`PowerAccountant` owns the set of macro-block energy models, knows
which clock domain each block belongs to, and hooks every domain's clock edge.
On each edge it drains that cycle's access counts from the shared
:class:`~repro.power.activity.ActivityCounters`, charges each block its cycle
energy (full, utilisation-scaled, or 10 %-idle; clock grids are never gated)
at the domain's current supply voltage, and accumulates the results.

The output is an :class:`EnergyBreakdown` -- total energy, average power and
the per-macro-block split of Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim.clock import ClockDomain
from .activity import ActivityCounters
from .blocks import BREAKDOWN_CATEGORIES, BlockEnergyModel
from .technology import DEFAULT_TECHNOLOGY, TechnologyParameters


@dataclass
class EnergyBreakdown:
    """Result of a power-accounted simulation run."""

    by_block: Dict[str, float] = field(default_factory=dict)
    by_category: Dict[str, float] = field(default_factory=dict)
    by_domain: Dict[str, float] = field(default_factory=dict)
    total_energy_nj: float = 0.0
    elapsed_ns: float = 0.0

    @property
    def average_power_w(self) -> float:
        """Average power in watts (nJ / ns == W)."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.total_energy_nj / self.elapsed_ns

    def category_share(self, category: str) -> float:
        """Fraction of total energy spent in one reporting category."""
        if self.total_energy_nj <= 0:
            return 0.0
        return self.by_category.get(category, 0.0) / self.total_energy_nj

    def normalised_to(self, reference: "EnergyBreakdown") -> Dict[str, float]:
        """Energy of each category normalised to a reference run (Figure 10)."""
        if reference.total_energy_nj <= 0:
            raise ValueError("reference breakdown has no energy")
        return {category: self.by_category.get(category, 0.0)
                / reference.total_energy_nj
                for category in BREAKDOWN_CATEGORIES}


class PowerAccountant:
    """Charges block energies on every clock edge of every domain."""

    def __init__(self, activity: ActivityCounters,
                 tech: TechnologyParameters = DEFAULT_TECHNOLOGY) -> None:
        self.activity = activity
        self.tech = tech
        self._blocks_by_domain: Dict[str, List[BlockEnergyModel]] = {}
        #: per-domain list of [name, model, memo] cells, parallel to
        #: ``_blocks_by_domain`` -- memo caches cycle_energy by access count
        self._cells_by_domain: Dict[str, List[list]] = {}
        self._domains: Dict[str, ClockDomain] = {}
        self._block_domain: Dict[str, str] = {}
        self.energy_by_block: Dict[str, float] = {}
        self._last_edge_time: float = 0.0

    @property
    def cycles_by_domain(self) -> Dict[str, int]:
        """Edges charged per domain (the domains' own cycle counters)."""
        return {name: domain.cycle for name, domain in self._domains.items()}

    # ------------------------------------------------------------ registration
    def register_block(self, model: BlockEnergyModel, domain: ClockDomain) -> None:
        """Assign a block model to the clock domain that charges it."""
        if model.name in self._block_domain:
            raise ValueError(f"block {model.name!r} registered twice")
        self._blocks_by_domain.setdefault(domain.name, []).append(model)
        self._cells_by_domain.setdefault(domain.name, []).append(
            [model.name, model, {}, model.gated])
        self._block_domain[model.name] = domain.name
        self.energy_by_block[model.name] = 0.0
        if domain.name not in self._domains:
            self._domains[domain.name] = domain
            domain.add_edge_hook(self._make_edge_hook(domain))

    def _make_edge_hook(self, domain: ClockDomain):
        """Build the per-edge accounting closure for one clock domain.

        ``cycle_energy`` is a pure function of the access count for a fixed
        block, supply voltage and technology, and per-cycle access counts are
        tiny integers, so each block keeps a memo of exact cycle energies by
        access count (invalidated if the domain voltage ever changes).  The
        closure charges a whole edge with one dict lookup per block instead of
        re-deriving capacitance scaling every cycle.
        """
        domain_name = domain.name
        cells = self._cells_by_domain.setdefault(domain_name, [])
        pending = self.activity._pending
        totals = self.activity._totals
        energy = self.energy_by_block
        tech = self.tech
        # Rebuilt whenever the voltage or the block set changes:
        # state = [vdd, cell_count, gated_cells, ungated_pairs] with
        # gated_cells: (name, model, memo); ungated_pairs: (name, cycle_e)
        state = [None, 0, (), ()]

        def rebuild(vdd: float) -> None:
            gated_cells = []
            ungated_pairs = []
            for name, model, memo, gated in cells:
                memo.clear()
                if gated:
                    gated_cells.append((name, model, memo))
                else:
                    # always-on blocks (clock grids): cycle energy ignores
                    # the access count and nothing records activity for them
                    ungated_pairs.append((name, model.cycle_energy(0, vdd, tech)))
            state[0] = vdd
            state[1] = len(cells)
            state[2] = gated_cells
            state[3] = ungated_pairs

        def hook(cycle: int, time: float) -> None:
            if time > self._last_edge_time:
                self._last_edge_time = time
            vdd = domain.voltage
            if vdd != state[0] or len(cells) != state[1]:
                rebuild(vdd)
            for name, model, memo in state[2]:
                accesses = pending[name]   # defaultdict: seeds missing with 0
                if accesses:
                    pending[name] = 0
                    totals[name] += accesses
                cycle_e = memo.get(accesses)
                if cycle_e is None:
                    cycle_e = model.cycle_energy(accesses, vdd, tech)
                    memo[accesses] = cycle_e
                energy[name] += cycle_e
            for name, cycle_e in state[3]:
                energy[name] += cycle_e

        return hook

    # ----------------------------------------------------------------- results
    def total_energy(self) -> float:
        """Total accumulated energy over every block, in nJ."""
        return sum(self.energy_by_block.values())

    def breakdown(self, elapsed_ns: Optional[float] = None) -> EnergyBreakdown:
        """Snapshot the accumulated energy as an :class:`EnergyBreakdown`."""
        categories: Dict[str, float] = {}
        domains: Dict[str, float] = {}
        model_by_name = {m.name: m
                         for models in self._blocks_by_domain.values()
                         for m in models}
        for name, energy in self.energy_by_block.items():
            category = model_by_name[name].category
            categories[category] = categories.get(category, 0.0) + energy
            domain = self._block_domain[name]
            domains[domain] = domains.get(domain, 0.0) + energy
        return EnergyBreakdown(
            by_block=dict(self.energy_by_block),
            by_category=categories,
            by_domain=domains,
            total_energy_nj=self.total_energy(),
            elapsed_ns=elapsed_ns if elapsed_ns is not None else self._last_edge_time,
        )
