"""Clock generators and clock domains.

Each locally synchronous block of a GALS system has its own clock, generated
locally (the paper assumes ring oscillators, Section 3).  A
:class:`Clock` is defined by a period and a starting phase; a
:class:`ClockDomain` groups a clock with the synchronous components it drives
and the supply voltage it runs at.  The domain registers a periodic event with
the simulation engine; every occurrence of that event is one rising edge and
ticks every registered component in registration order.

The synchronous baseline processor is simply a system with a single clock
domain containing every component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol

from ..kernel.reference import (MultiEdgeTick, ProbedMultiEdgeTick,
                                ProbedSingleEdgeTick, SingleEdgeTick)
from .engine import SimulationEngine
from .event import SimulationError


class ClockedComponent(Protocol):
    """Anything that does work on a rising clock edge."""

    def clock_edge(self, cycle: int, time: float) -> None:  # pragma: no cover
        """Do one cycle of work at rising edge ``cycle`` (absolute ``time`` ns)."""
        ...


@dataclass
class Clock:
    """A free-running local clock.

    Parameters
    ----------
    name:
        Identifier used in reports ("fetch", "integer", ...).
    period:
        Clock period in nanoseconds.
    phase:
        Offset of the first rising edge, in nanoseconds, within ``[0, period)``.
        GALS clocks have arbitrary relative phase; the paper sets each phase to
        a random value at run time.
    """

    name: str
    period: float
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise SimulationError(f"clock {self.name!r}: period must be positive")
        if self.phase < 0:
            raise SimulationError(f"clock {self.name!r}: phase must be non-negative")
        self.phase = self.phase % self.period

    @property
    def frequency(self) -> float:
        """Frequency in GHz (period is in ns)."""
        return 1.0 / self.period

    def edge_time(self, cycle: int) -> float:
        """Absolute time of rising edge number ``cycle`` (0-based)."""
        return self.phase + cycle * self.period

    def cycles_elapsed(self, time: float) -> int:
        """Number of rising edges that have occurred at or before ``time``."""
        if time < self.phase:
            return 0
        return int((time - self.phase) / self.period) + 1

    def scaled(self, slowdown: float, name: Optional[str] = None) -> "Clock":
        """Return a copy slowed down by ``slowdown`` (1.1 == 10 % slower)."""
        if slowdown <= 0:
            raise SimulationError("slowdown factor must be positive")
        return Clock(name=name or self.name, period=self.period * slowdown,
                     phase=self.phase)


class CallablePeriod:
    """Adapter giving a ``clock_period()`` callable the ``.period`` interface.

    Pipeline units read the clock period on per-cycle hot paths; handing them
    the :class:`Clock` object (mutated in place by mid-run retiming) turns
    that into one attribute read.  Units constructed with only a legacy
    callable wrap it in this adapter so the hot path stays uniform.
    """

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[], float]) -> None:
        self._fn = fn

    @property
    def period(self) -> float:
        """Current period from the wrapped callable."""
        return self._fn()


class ClockDomain:
    """A locally synchronous block: one clock, one voltage, many components.

    The domain keeps its own cycle counter.  Components registered with
    :meth:`add_component` are ticked in registration order on every rising
    edge; the GALS processor registers pipeline stages in reverse pipeline
    order so that, within a cycle, downstream stages consume before upstream
    stages produce (the standard cycle-accurate simulation idiom the paper
    describes for the single-clock case).
    """

    def __init__(
        self,
        clock: Clock,
        voltage: float = 1.0,
        nominal_voltage: Optional[float] = None,
        priority: int = 0,
    ) -> None:
        self.clock = clock
        self.voltage = voltage
        self.nominal_voltage = nominal_voltage if nominal_voltage is not None else voltage
        self.priority = priority
        self.cycle = 0
        #: absolute time of the most recent rising edge ticked with a power
        #: probe attached (the default elapsed time of an energy breakdown)
        self.last_edge_time = 0.0
        self._components: List[ClockedComponent] = []
        self._edge_hooks: List[Callable[[int, float], None]] = []
        #: flat call list ticked per edge: every component's bound
        #: ``clock_edge`` followed by every edge hook, in registration order
        self._edge_callbacks: List[Callable[[int, float], None]] = []
        #: deferred power accounting fused into the edge tick -- see
        #: :meth:`attach_power_probe`
        self._power_probe: Optional[tuple] = None
        self._engine: Optional[SimulationEngine] = None

    # ------------------------------------------------------------ composition
    @property
    def name(self) -> str:
        """The domain's name (same as its clock's)."""
        return self.clock.name

    @property
    def period(self) -> float:
        """The domain clock's current period, in ns."""
        return self.clock.period

    @property
    def frequency(self) -> float:
        """The domain clock's current frequency, in GHz."""
        return self.clock.frequency

    def add_component(self, component: ClockedComponent) -> None:
        """Register a component to be ticked on every rising edge."""
        self._guard_bound_specialized()
        self._components.append(component)
        self._rebuild_edge_callbacks()

    def add_edge_hook(self, hook: Callable[[int, float], None]) -> None:
        """Register a callback ``hook(cycle, time)`` run after components tick.

        Used by tests and ad-hoc instrumentation; the power accountant fuses
        its accounting into the edge closure instead (attach_power_probe).
        """
        self._guard_bound_specialized()
        self._edge_hooks.append(hook)
        self._rebuild_edge_callbacks()

    def _guard_bound_specialized(self) -> None:
        # A domain bound with a single callback uses a direct-call closure;
        # its callback set can no longer be grown in place.  Multi-callback
        # (and empty) domains keep the in-place-mutable list closure, so
        # post-bind registration keeps working there.
        if self._engine is not None and getattr(self, "_bound_single", False):
            raise SimulationError(
                f"domain {self.name!r}: cannot add components or hooks while "
                "bound with a fused single-component edge; register before "
                "bind()")

    def _rebuild_edge_callbacks(self) -> None:
        # mutated in place: the bound edge closure captures the list object
        self._edge_callbacks[:] = (
            [component.clock_edge for component in self._components]
            + list(self._edge_hooks))

    def attach_power_probe(self, probe: tuple) -> None:
        """Fuse a deferred power-accounting probe into this domain's tick.

        ``probe`` is ``(gated_cells, state, active_edge)`` as built by
        :meth:`repro.power.accounting.PowerAccountant._make_probe`: the edge
        closure runs the accounting *inline* after the components tick --
        on a quiescent edge (no gated cell has pending activity and the
        voltage matches the open run) it is a single run-counter increment
        with no Python call at all; otherwise it calls ``active_edge``.

        Attaching after the domain is bound falls back to an equivalent edge
        hook (the bound closure reads the callback list in place), keeping
        post-bind registration working for domains bound with a mutable
        callback list.  A domain bound with a fused single-component edge
        has no such list; attaching there raises -- register power blocks
        before :meth:`bind` (every processor build does).
        """
        if self._engine is None:
            self._power_probe = probe
            return
        if getattr(self, "_bound_single", False):
            raise SimulationError(
                f"domain {self.name!r}: cannot attach a power probe while "
                "bound with a fused single-component edge; register power "
                "blocks before bind()")
        gated_cells, state, active_edge = probe

        def hook(_cycle: int, time: float, domain=self) -> None:
            """Per-edge accounting fallback hook (post-bind attachment)."""
            domain.last_edge_time = time
            if domain.voltage == state[0]:
                for cell in gated_cells:
                    if cell[0]:
                        active_edge()
                        break
                else:
                    state[1] += 1
            else:
                active_edge()

        self.add_edge_hook(hook)

    # --------------------------------------------------------------- clocking
    def bind(self, engine: SimulationEngine) -> None:
        """Attach this domain to an engine by scheduling its periodic edge event.

        The edge tick is specialised at bind time: a domain with a single
        component whose class provides ``make_fused_edge`` (the execution
        clusters) supplies its own fully fused closure; every other domain
        gets one of the kernel package's explicit edge-tick state objects
        (:mod:`repro.kernel.reference`) -- single-callback domains a direct
        call instead of a callback loop, multi-callback (and empty) domains
        the in-place-mutable callback list so post-bind registration
        continues to work.  The deferred power accounting probe is fused into
        every variant: a quiescent edge is a single run-counter increment
        with no Python call.
        """
        self._engine = engine
        callbacks = self._edge_callbacks
        probe = self._power_probe
        single = callbacks[0] if len(callbacks) == 1 else None
        self._bound_single = single is not None

        if (len(self._components) == 1 and not self._edge_hooks
                and hasattr(self._components[0], "make_fused_edge")):
            on_edge = self._components[0].make_fused_edge(self, engine, probe)
        elif probe is not None:
            if single is not None:
                on_edge = ProbedSingleEdgeTick(self, engine, single, probe)
            else:
                on_edge = ProbedMultiEdgeTick(self, engine, callbacks, probe)
        elif single is not None:
            on_edge = SingleEdgeTick(self, engine, single)
        else:
            on_edge = MultiEdgeTick(self, engine, callbacks)

        engine.schedule_periodic(
            start=self.clock.phase,
            period=self.clock.period,
            callback=on_edge,
            priority=self.priority,
            name=f"clock:{self.clock.name}",
        )

    def unbind(self) -> None:
        """Stop this domain's clock (cancels its periodic event chain)."""
        if self._engine is not None:
            self._engine.cancel_chain(f"clock:{self.clock.name}")
            self._engine = None
            self._bound_single = False

    def _on_edge(self, _param: object) -> None:
        engine = self._engine
        time = engine._now if engine is not None else 0.0
        cycle = self.cycle
        for callback in self._edge_callbacks:
            callback(cycle, time)
        self.cycle = cycle + 1

    # ------------------------------------------------------------------ DVFS
    def apply_slowdown(self, slowdown: float, voltage: Optional[float] = None) -> None:
        """Slow the clock by ``slowdown`` and optionally change the voltage.

        Must be called before :meth:`bind`; mid-run frequency changes go
        through :meth:`retime` instead (the paper's experiments set slowdowns
        statically per run; the adaptive controllers re-bind domains online).
        """
        if self._engine is not None:
            raise SimulationError("cannot change frequency after the domain is bound")
        self.clock = self.clock.scaled(slowdown)
        if voltage is not None:
            self.voltage = voltage

    def retime(self, period: float, voltage: Optional[float] = None) -> float:
        """Change a *bound* domain's clock period (and optionally voltage)
        mid-run; returns the anchor time of the retimed schedule.

        The edge already scheduled keeps its time -- a local ring oscillator
        cannot retract a rising edge that is in flight -- and becomes the
        anchor of the new schedule: edges fire at ``anchor + k * period``.
        The domain's periodic chain is cancelled and re-scheduled, which the
        clock-wheel scheduler supports mid-run (the run loop re-reads the
        wheel whenever its membership version changes), and the cycle counter
        continues uninterrupted.

        After a retime, ``clock.phase`` holds the *absolute* anchor time
        rather than a phase within ``[0, period)``: every consumer of the
        clock's edge arithmetic (the mixed-clock FIFO synchronizers) treats
        times before the anchor as "before the first edge", which is exactly
        the behaviour of a freshly started oscillator.
        """
        if period <= 0:
            raise SimulationError(
                f"clock {self.name!r}: retimed period must be positive")
        engine = self._engine
        if engine is None:
            raise SimulationError(
                f"cannot retime unbound domain {self.name!r}; use "
                "apply_slowdown before bind")
        anchor = engine.next_chain_time(f"clock:{self.clock.name}")
        if anchor is None:
            raise SimulationError(
                f"domain {self.name!r} has no pending clock edge to retime")
        engine.cancel_chain(f"clock:{self.clock.name}")
        # Mutate the Clock in place so every holder of the reference (the
        # mixed-clock FIFOs and their synchronizers) observes the new timing.
        self.clock.period = period
        self.clock.phase = anchor
        if voltage is not None:
            self.voltage = voltage
        self.bind(engine)
        return anchor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ClockDomain(name={self.name!r}, period={self.period:.4f} ns, "
                f"voltage={self.voltage:.3f} V, cycle={self.cycle})")
