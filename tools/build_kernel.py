#!/usr/bin/env python
"""Build the optional compiled kernel backend (``repro.kernel._ckernel``).

The simulation hot core lives in :mod:`repro.kernel.reference`, written in a
compile-friendly subset of Python.  This script produces the ahead-of-time
compiled twin that ``ProcessorConfig(backend="compiled")`` (or
``REPRO_BACKEND=compiled``) selects, trying three strategies in order:

1. **mypyc** -- compiles a copy of ``reference.py`` named ``_ckernel``;
2. **Cython** -- same source, ``cythonize`` in pure-Python mode;
3. **bundled C** -- compiles the hand-written translation
   ``src/repro/kernel/_ckernel.c`` with the local C compiler (no third-party
   packages needed; this is the path that works on a bare toolchain).

Whichever succeeds first, the built extension is copied into
``src/repro/kernel/`` where :func:`repro.kernel.load_compiled` finds it.  The
artifact is keyed by ``KERNEL_API_VERSION``: a stale build from an older
checkout is ignored at import time, so rebuilding is never *required* --
only needed to regain the speedup.

Usage::

    python tools/build_kernel.py             # build with the first working strategy
    python tools/build_kernel.py --strategy c        # force one strategy
    python tools/build_kernel.py --check     # build (if needed) + differential self-test
    python tools/build_kernel.py --clean     # remove built artifacts
"""

from __future__ import annotations

import argparse
import shutil
import sys
import sysconfig
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
KERNEL_DIR = REPO_ROOT / "src" / "repro" / "kernel"
EXT_SUFFIX = sysconfig.get_config_var("EXT_SUFFIX") or ".so"

#: build strategies in preference order
STRATEGIES = ("mypyc", "cython", "c")


def _find_artifact(build_dir: Path) -> Path:
    """Locate the extension module produced under ``build_dir``."""
    candidates = sorted(build_dir.rglob("_ckernel*" + EXT_SUFFIX.split(".")[-1]))
    candidates = [path for path in candidates
                  if path.name.startswith("_ckernel")
                  and path.suffix in (".so", ".pyd")]
    if not candidates:
        raise FileNotFoundError(
            f"no _ckernel extension found under {build_dir}")
    return candidates[0]


def _run_build_ext(extensions, build_dir: Path) -> Path:
    """Run setuptools ``build_ext`` on ``extensions``; return the artifact."""
    from setuptools.dist import Distribution

    dist = Distribution({"name": "repro-kernel", "ext_modules": extensions})
    command = dist.get_command_obj("build_ext")
    command.build_lib = str(build_dir / "lib")
    command.build_temp = str(build_dir / "temp")
    dist.run_command("build_ext")
    return _find_artifact(build_dir / "lib")


def build_with_mypyc(build_dir: Path) -> Path:
    """Compile a copy of ``reference.py`` as ``_ckernel`` via mypyc."""
    from mypyc.build import mypycify  # raises ImportError when absent

    source = build_dir / "_ckernel.py"
    shutil.copy2(KERNEL_DIR / "reference.py", source)
    extensions = mypycify([str(source)], target_dir=str(build_dir / "mypyc"))
    return _run_build_ext(extensions, build_dir)


def build_with_cython(build_dir: Path) -> Path:
    """Compile a copy of ``reference.py`` as ``_ckernel`` via Cython."""
    from Cython.Build import cythonize  # raises ImportError when absent

    source = build_dir / "_ckernel.py"
    shutil.copy2(KERNEL_DIR / "reference.py", source)
    extensions = cythonize([str(source)], language_level=3, quiet=True)
    return _run_build_ext(extensions, build_dir)


def build_with_c(build_dir: Path) -> Path:
    """Compile the bundled hand-written C translation."""
    from setuptools import Extension

    extension = Extension("_ckernel",
                          sources=[str(KERNEL_DIR / "_ckernel.c")],
                          extra_compile_args=["-O2"])
    return _run_build_ext([extension], build_dir)


_BUILDERS = {
    "mypyc": build_with_mypyc,
    "cython": build_with_cython,
    "c": build_with_c,
}


def clean() -> int:
    """Remove previously built kernel artifacts; returns the count removed."""
    removed = 0
    for path in KERNEL_DIR.glob("_ckernel*"):
        if path.suffix in (".so", ".pyd"):
            path.unlink()
            removed += 1
            print(f"removed {path}")
    return removed


def build(strategy: str = "auto") -> Path:
    """Build the compiled kernel and install it into the package tree.

    ``strategy`` is one of :data:`STRATEGIES` or ``"auto"`` (first that
    works).  Returns the installed artifact path.
    """
    order = STRATEGIES if strategy == "auto" else (strategy,)
    errors = []
    for name in order:
        with tempfile.TemporaryDirectory(prefix="repro-kernel-") as tmp:
            try:
                artifact = _BUILDERS[name](Path(tmp))
            except ImportError as exc:
                errors.append(f"{name}: not available ({exc})")
                continue
            except Exception as exc:  # compiler failures, bad toolchain, ...
                errors.append(f"{name}: build failed ({exc})")
                continue
            destination = KERNEL_DIR / ("_ckernel" + EXT_SUFFIX)
            shutil.copy2(artifact, destination)
            print(f"built {destination.name} via {name}")
            return destination
    raise SystemExit("all build strategies failed:\n  " + "\n  ".join(errors))


def self_test() -> None:
    """Differential smoke test: compiled kernel vs pure reference."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.kernel import compiled_available, get_kernel
    from repro.kernel.reference import sync_visible_at as pure_sync
    from repro.sim.engine import SimulationEngine

    if not compiled_available():
        raise SystemExit("self-test failed: compiled kernel not importable "
                         "(stale KERNEL_API_VERSION or missing artifact)")
    compiled = get_kernel("compiled")
    if not compiled.compiled:
        raise SystemExit("self-test failed: 'compiled' resolved to pure")

    # synchronizer mapping over a grid
    for time in [x * 0.31 for x in range(50)]:
        for phase, period, latency in ((0.0, 1.0, 1.0), (0.3, 0.8, 1.6),
                                       (2.5, 1.25, 0.0)):
            expected = pure_sync(time, phase, period, latency)
            got = compiled.sync_visible_at(time, phase, period, latency)
            if got != expected:
                raise SystemExit(
                    f"self-test failed: sync_visible_at({time}, {phase}, "
                    f"{period}, {latency}) = {got!r}, expected {expected!r}")

    # engine run over a mixed wheel, identical event traces
    def trace_with(kernel):
        engine = SimulationEngine(kernel=kernel)
        events = []
        for index, (period, phase) in enumerate(
                [(0.8, 0.0), (1.1, 0.3), (0.95, 0.1), (1.0, 0.2)]):
            engine.schedule_periodic(
                start=phase, period=period,
                callback=lambda _, i=index: events.append((engine.now, i)))
        engine.run(until=200.0)
        return events, engine.events_processed

    pure_trace = trace_with(get_kernel("pure"))
    compiled_trace = trace_with(compiled)
    if pure_trace != compiled_trace:
        raise SystemExit("self-test failed: engine event traces diverge")
    print(f"self-test passed ({pure_trace[1]} events, bit-identical)")


def main(argv=None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--strategy", choices=("auto",) + STRATEGIES,
                        default="auto",
                        help="build strategy (default: first that works)")
    parser.add_argument("--check", action="store_true",
                        help="run the differential self-test after building")
    parser.add_argument("--clean", action="store_true",
                        help="remove built artifacts and exit")
    arguments = parser.parse_args(argv)
    if arguments.clean:
        if clean() == 0:
            print("nothing to clean")
        return 0
    build(arguments.strategy)
    if arguments.check:
        self_test()
    return 0


if __name__ == "__main__":
    sys.exit(main())
