"""Unit tests for processor configuration and clock-domain planning."""

import pytest

from repro.core.config import DEFAULT_CONFIG, ProcessorConfig
from repro.core.domains import (GALS_DOMAINS, SYNC_DOMAIN, ClockPlan,
                                pipeline_stage_table, slowdown_plan, uniform_plan)
from repro.power.technology import DEFAULT_TECHNOLOGY


# --------------------------------------------------------------------- config
def test_default_config_matches_table3():
    config = DEFAULT_CONFIG
    assert config.fetch_width == 4
    assert config.int_issue_entries == 20
    assert config.fp_issue_entries == 16
    assert config.mem_issue_entries == 16
    assert config.int_registers == 72
    assert config.fp_registers == 72
    assert config.memory.dl1_size == 16 * 1024
    assert config.memory.il1_assoc == 1
    assert config.memory.l2_size == 256 * 1024
    assert config.memory.l2_latency == 6
    assert config.num_int_alus == 4 and config.num_fp_alus == 4


def test_config_describe_contains_table3_rows():
    text = DEFAULT_CONFIG.describe()
    assert "4 inst/cycle" in text
    assert "20" in text
    assert "256KB" in text
    assert "direct-mapped" in text


def test_config_validation():
    with pytest.raises(ValueError):
        ProcessorConfig(fetch_width=0)
    with pytest.raises(ValueError):
        ProcessorConfig(int_registers=16)
    with pytest.raises(ValueError):
        ProcessorConfig(fifo_sync_cycles=-1)


def test_config_with_changes_is_a_distinct_copy():
    changed = DEFAULT_CONFIG.with_changes(rob_entries=128)
    assert changed.rob_entries == 128
    assert DEFAULT_CONFIG.rob_entries == 64


def test_pipeline_stage_table_lists_eight_stages():
    table = pipeline_stage_table()
    assert "Fetch from I-cache" in table
    assert "Regfile write, Commit" in table
    assert len([line for line in table.splitlines() if line and line[0].isdigit()]) == 8


# ------------------------------------------------------------------ clock plans
def test_uniform_plan_all_domains_nominal():
    plan = uniform_plan(base_period=1.0)
    for domain in GALS_DOMAINS:
        assert plan.period_of(domain) == pytest.approx(1.0)
        assert plan.voltage_of(domain) == pytest.approx(DEFAULT_TECHNOLOGY.nominal_vdd)


def test_slowdown_plan_scales_period_and_voltage():
    plan = slowdown_plan({"fp": 2.0, "fetch": 1.1})
    assert plan.period_of("fp") == pytest.approx(2.0)
    assert plan.period_of("integer") == pytest.approx(1.0)
    assert plan.voltage_of("fp") < plan.voltage_of("integer")
    assert plan.voltage_of("fetch") < DEFAULT_TECHNOLOGY.nominal_vdd


def test_slowdown_plan_rejects_unknown_domains():
    with pytest.raises(ValueError):
        slowdown_plan({"gpu": 2.0})


def test_explicit_voltage_overrides_scaling():
    plan = ClockPlan(slowdowns={"fp": 2.0}, voltages={"fp": 1.4},
                     scale_voltages=True)
    assert plan.voltage_of("fp") == pytest.approx(1.4)


def test_phases_are_deterministic_per_seed_and_within_period():
    plan_a = uniform_plan(phase_seed=7)
    plan_b = uniform_plan(phase_seed=7)
    plan_c = uniform_plan(phase_seed=8)
    domains_a = plan_a.build_gals_domains()
    domains_b = plan_b.build_gals_domains()
    domains_c = plan_c.build_gals_domains()
    for name in GALS_DOMAINS:
        assert domains_a[name].clock.phase == pytest.approx(domains_b[name].clock.phase)
        assert 0.0 <= domains_a[name].clock.phase < domains_a[name].period
    assert any(domains_a[n].clock.phase != domains_c[n].clock.phase
               for n in GALS_DOMAINS)


def test_explicit_phase_respected():
    plan = ClockPlan(phases={"fetch": 0.25})
    domains = plan.build_gals_domains()
    assert domains["fetch"].clock.phase == pytest.approx(0.25)


def test_sync_domain_build_with_global_slowdown():
    plan = ClockPlan(slowdowns={SYNC_DOMAIN: 1.25}, scale_voltages=True)
    core = plan.build_sync_domain()
    assert core.name == SYNC_DOMAIN
    assert core.period == pytest.approx(1.25)
    assert core.voltage < DEFAULT_TECHNOLOGY.nominal_vdd


def test_invalid_slowdown_rejected():
    plan = ClockPlan(slowdowns={"fp": -1.0})
    with pytest.raises(ValueError):
        plan.period_of("fp")
