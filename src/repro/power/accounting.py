"""Per-cycle, per-block energy accounting (the Wattch integration layer).

A :class:`PowerAccountant` owns the set of macro-block energy models, knows
which clock domain each block belongs to, and hooks every domain's clock edge.
On each edge it drains that cycle's access counts from the shared
:class:`~repro.power.activity.ActivityCounters`, charges each block its cycle
energy (full, utilisation-scaled, or 10 %-idle; clock grids are never gated)
at the domain's current supply voltage, and accumulates the results.

The output is an :class:`EnergyBreakdown` -- total energy, average power and
the per-macro-block split of Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim.clock import ClockDomain
from .activity import ActivityCounters
from .blocks import BREAKDOWN_CATEGORIES, BlockEnergyModel
from .technology import DEFAULT_TECHNOLOGY, TechnologyParameters


@dataclass
class EnergyBreakdown:
    """Result of a power-accounted simulation run."""

    by_block: Dict[str, float] = field(default_factory=dict)
    by_category: Dict[str, float] = field(default_factory=dict)
    by_domain: Dict[str, float] = field(default_factory=dict)
    total_energy_nj: float = 0.0
    elapsed_ns: float = 0.0

    @property
    def average_power_w(self) -> float:
        """Average power in watts (nJ / ns == W)."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.total_energy_nj / self.elapsed_ns

    def category_share(self, category: str) -> float:
        """Fraction of total energy spent in one reporting category."""
        if self.total_energy_nj <= 0:
            return 0.0
        return self.by_category.get(category, 0.0) / self.total_energy_nj

    def normalised_to(self, reference: "EnergyBreakdown") -> Dict[str, float]:
        """Energy of each category normalised to a reference run (Figure 10)."""
        if reference.total_energy_nj <= 0:
            raise ValueError("reference breakdown has no energy")
        return {category: self.by_category.get(category, 0.0)
                / reference.total_energy_nj
                for category in BREAKDOWN_CATEGORIES}


class PowerAccountant:
    """Charges block energies on every clock edge of every domain."""

    def __init__(self, activity: ActivityCounters,
                 tech: TechnologyParameters = DEFAULT_TECHNOLOGY) -> None:
        self.activity = activity
        self.tech = tech
        self._blocks_by_domain: Dict[str, List[BlockEnergyModel]] = {}
        self._domains: Dict[str, ClockDomain] = {}
        self._block_domain: Dict[str, str] = {}
        self.energy_by_block: Dict[str, float] = {}
        self.cycles_by_domain: Dict[str, int] = {}
        self._last_edge_time: float = 0.0

    # ------------------------------------------------------------ registration
    def register_block(self, model: BlockEnergyModel, domain: ClockDomain) -> None:
        """Assign a block model to the clock domain that charges it."""
        if model.name in self._block_domain:
            raise ValueError(f"block {model.name!r} registered twice")
        self._blocks_by_domain.setdefault(domain.name, []).append(model)
        self._block_domain[model.name] = domain.name
        self.energy_by_block[model.name] = 0.0
        if domain.name not in self._domains:
            self._domains[domain.name] = domain
            self.cycles_by_domain[domain.name] = 0
            domain.add_edge_hook(self._make_edge_hook(domain))

    def _make_edge_hook(self, domain: ClockDomain):
        def hook(cycle: int, time: float) -> None:
            self._on_edge(domain, time)
        return hook

    # ------------------------------------------------------------- accounting
    def _on_edge(self, domain: ClockDomain, time: float) -> None:
        self.cycles_by_domain[domain.name] = self.cycles_by_domain.get(domain.name, 0) + 1
        self._last_edge_time = max(self._last_edge_time, time)
        vdd = domain.voltage
        for model in self._blocks_by_domain.get(domain.name, ()):
            accesses = self.activity.drain(model.name)
            self.energy_by_block[model.name] = (
                self.energy_by_block.get(model.name, 0.0)
                + model.cycle_energy(accesses, vdd, self.tech))

    # ----------------------------------------------------------------- results
    def total_energy(self) -> float:
        return sum(self.energy_by_block.values())

    def breakdown(self, elapsed_ns: Optional[float] = None) -> EnergyBreakdown:
        """Snapshot the accumulated energy as an :class:`EnergyBreakdown`."""
        categories: Dict[str, float] = {}
        domains: Dict[str, float] = {}
        model_by_name = {m.name: m
                         for models in self._blocks_by_domain.values()
                         for m in models}
        for name, energy in self.energy_by_block.items():
            category = model_by_name[name].category
            categories[category] = categories.get(category, 0.0) + energy
            domain = self._block_domain[name]
            domains[domain] = domains.get(domain, 0.0) + energy
        return EnergyBreakdown(
            by_block=dict(self.energy_by_block),
            by_category=categories,
            by_domain=domains,
            total_energy_nj=self.total_energy(),
            elapsed_ns=elapsed_ns if elapsed_ns is not None else self._last_edge_time,
        )
