"""Mixed-clock FIFO variant backed by the compiled synchronizer kernel.

Selected by :func:`repro.kernel.get_kernel` for the ``compiled`` backend and
instantiated by ``Processor._make_channel``: the synchronizer edge mapping on
the push and pop fast paths is evaluated by ``_ckernel.sync_visible_at``
instead of the inline Python arithmetic.  The arithmetic is bit-identical
(same IEEE operations in the same order -- the differential suite pins it),
so entries, waits and therefore ``SimulationResult``s match the pure FIFO
exactly.  Everything else (capacity accounting, pending-space expiry,
same-cycle caches, retime semantics) is inherited unchanged.
"""

from ..async_comm.fifo import MixedClockFifo
from . import load_compiled

_ckernel = load_compiled()
if _ckernel is None:  # pragma: no cover - import is gated on availability
    raise ImportError("compiled kernel artifact is not importable")
_sync_visible_at = _ckernel.sync_visible_at


class CompiledMixedClockFifo(MixedClockFifo):
    """MixedClockFifo with the synchronizer edge mapping evaluated in C."""

    def push(self, item, time):
        """Insert an item; consumer visibility mapped by the compiled kernel."""
        pending = self._pending_space
        while pending and pending[0] <= time:
            pending.popleft()
        if len(self._entries) + len(pending) >= self.capacity:
            raise OverflowError(f"push into apparently-full FIFO {self.name!r}")
        if time == self._last_push_time:
            visible = self._last_push_visible
        else:
            visible = _sync_visible_at(time, self._data_phase,
                                       self._data_period, self._data_latency)
            self._last_push_time = time
            self._last_push_visible = visible
        self._entries.append((item, time, visible))
        self.push_count += 1
        box = self._transfer_box
        if box is not None:
            box[0] += 1

    def push_granted(self, item, time):
        """Insert after a same-``time`` ``can_push`` grant (compiled mapping)."""
        if time == self._last_push_time:
            visible = self._last_push_visible
        else:
            visible = _sync_visible_at(time, self._data_phase,
                                       self._data_period, self._data_latency)
            self._last_push_time = time
            self._last_push_visible = visible
        self._entries.append((item, time, visible))
        self.push_count += 1
        box = self._transfer_box
        if box is not None:
            box[0] += 1

    def _space_visible_at(self, time):
        """Producer-side visibility of a slot freed at ``time`` (compiled)."""
        if time == self._last_pop_time:
            return self._last_pop_visible
        visible = _sync_visible_at(time, self._space_phase,
                                   self._space_period, self._space_latency)
        self._last_pop_time = time
        self._last_pop_visible = visible
        return visible
