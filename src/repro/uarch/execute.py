"""Issue/execute units: functional-unit pools and per-domain execution engines.

The GALS processor has three execution clock domains (Figure 3b): integer
issue queue + integer ALUs, floating-point issue queue + FP ALUs, and the
memory issue queue + data cache + L2.  Keeping the queue and its functional
units in the same clock domain is a deliberate choice the paper explains:
dependent instructions inside one queue can still issue back-to-back.

Each :class:`ExecutionUnit` is one such block.  Per clock edge it

1. retires finished operations (marking results ready and resolving branches,
   which may trigger misprediction recovery),
2. drains newly dispatched instructions from its input channel into the
   issue queue,
3. wakes up and selects ready instructions and starts them on free functional
   units, adding data-cache latency for loads.

The same class, instantiated three times and placed in a single clock domain,
forms the execution core of the synchronous baseline.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..isa.instructions import DEFAULT_LATENCIES, InstructionClass, latency_of
from ..memory.hierarchy import MemoryHierarchy
from ..sim.channel import Channel
from .branch_predictor import BranchUnit
from .instruction import DynamicInstruction
from .issue_queue import SCHEME_EVENT, ForwardingLatency, IssueQueue
from .regfile import PhysicalRegisterFile

# Unpipelined classes (full-latency functional-unit occupancy) are flagged
# by the ``unpipelined`` attribute stamped on InstructionClass members.

_INF = float("inf")


class FunctionalUnitPool:
    """A pool of identical functional units with per-unit busy tracking."""

    def __init__(self, name: str, count: int) -> None:
        if count <= 0:
            raise ValueError("functional unit count must be positive")
        self.name = name
        self.count = count
        self._busy_until: List[float] = [float("-inf")] * count
        self.operations = 0
        self.structural_stalls = 0

    def available(self, now: float) -> int:
        """Number of units free at ``now``."""
        free = 0
        for busy_until in self._busy_until:
            if busy_until <= now:
                free += 1
        return free

    def try_claim(self, now: float, busy_for: float) -> bool:
        """Claim a free unit for ``busy_for`` ns; False if none is free."""
        busy = self._busy_until
        for index in range(len(busy)):
            if busy[index] <= now:
                busy[index] = now + busy_for
                self.operations += 1
                return True
        self.structural_stalls += 1
        return False

    @property
    def utilization_count(self) -> int:
        """Total operations issued to this pool."""
        return self.operations


class ExecutionUnit:
    """Issue queue + functional units for one execution cluster."""

    def __init__(
        self,
        name: str,
        domain_name: str,
        issue_queue: IssueQueue,
        input_channel: Channel,
        regfile: PhysicalRegisterFile,
        forwarding_latency: ForwardingLatency,
        clock_period: Callable[[], float],
        functional_units: FunctionalUnitPool,
        issue_width: int,
        activity,
        alu_block: str,
        queue_block: str,
        branch_unit: Optional[BranchUnit] = None,
        recovery_callback: Optional[Callable[[DynamicInstruction, float], None]] = None,
        memory: Optional[MemoryHierarchy] = None,
        latencies: Optional[Dict[InstructionClass, int]] = None,
        clock=None,
        kernel=None,
    ) -> None:
        self.name = name
        self.domain_name = domain_name
        self.issue_queue = issue_queue
        self.input_channel = input_channel
        self.regfile = regfile
        self.forwarding_latency = forwarding_latency
        self.clock_period = clock_period
        #: clock-object view for the issue hot path: ``.period`` is a plain
        #: attribute read (retiming mutates the Clock in place)
        from ..sim.clock import CallablePeriod
        self._clock = clock if clock is not None else CallablePeriod(clock_period)
        self.functional_units = functional_units
        self.issue_width = issue_width
        self.activity = activity
        #: direct handles on the per-cycle counter cells (see DecodeRenameUnit)
        self._regwrite_cell = activity.cell("regfile_write")
        self._resultbus_cell = activity.cell("resultbus")
        self._dcache_cell = activity.cell("dcache")
        self._alu_cell = activity.cell(alu_block)
        self._queue_cell = activity.cell(queue_block)
        self.alu_block = alu_block
        self.queue_block = queue_block
        self.branch_unit = branch_unit
        self.recovery_callback = recovery_callback
        self.memory = memory
        self.latencies = latencies or dict(DEFAULT_LATENCIES)
        #: fully resolved per-class latency table (overrides + defaults)
        self._latency_map: Dict[InstructionClass, int] = {
            opclass: latency_of(opclass, self.latencies)
            for opclass in InstructionClass
        }
        #: the same table flattened by ``opclass.op_index`` for the issue hot
        #: loop (a list index beats an enum-keyed dict lookup), paired with
        #: the functional-unit occupancy of each class
        self._latency_by_op: List[int] = [
            self._latency_map[opclass] for opclass in InstructionClass]
        self._busy_by_op: List[int] = [
            self._latency_map[opclass] if opclass.unpipelined else 1
            for opclass in InstructionClass]
        #: operations in execution; each carries its completion time in
        #: ``instr.fu_done`` (set at issue)
        self._in_flight: List[DynamicInstruction] = []
        #: earliest pending completion; lets the per-edge completion scan bail
        #: out with one float compare on the (common) nothing-finished cycles
        self._next_completion: float = float("inf")
        # statistics
        self.completed_ops = 0
        self.issued_ops = 0
        self.dropped_squashed = 0
        #: deferred occupancy samples: edges where both the input channel and
        #: the window were empty (occupancy 0 for both) are counted here and
        #: folded into the eager counters on the next non-empty edge or an
        #: external read (integer run-length encoding, so totals are exact)
        self._idle_samples = 0
        # event-wakeup writeback walk from the selected kernel backend
        # (pure reference or the compiled extension; bit-identical)
        if kernel is None:
            from ..kernel import get_kernel
            kernel = get_kernel()
        self._wake_waiters = kernel.wake_waiters
        # per-unit fused stage closures (stable collaborators pre-bound),
        # picked by the queue's wakeup scheme
        if issue_queue.scheme == SCHEME_EVENT:
            self._drain_input = self._make_drain_input_event()
            self._issue_ready = self._make_issue_ready_event()
        else:
            self._drain_input = self._make_drain_input()
            self._issue_ready = self._make_issue_ready()

    # --------------------------------------------------------------- clocking
    def clock_edge(self, cycle: int, time: float) -> None:
        # Guards keep idle edges (no completions due, empty channel, empty
        # window) down to a few comparisons; each helper no-ops in exactly
        # the guarded situation, so skipping the call changes nothing.
        """One cluster cycle: writeback completions, wake up and issue ready instructions, accept dispatches."""
        if time >= self._next_completion:
            self._complete_finished(time)
        channel = self.input_channel
        issue_queue = self.issue_queue
        if channel._entries or issue_queue._entries:
            if channel._entries:
                self._drain_input(time)
            if issue_queue._entries:
                self._issue_ready(time)
            idle = self._idle_samples
            if idle:
                self._idle_samples = 0
                issue_queue.occupancy_samples += idle
                channel.occupancy_samples += idle
            issue_queue.occupancy_samples += 1
            issue_queue.occupancy_accum += len(issue_queue._entries)
            channel.occupancy_samples += 1
            channel.occupancy_accum += len(channel._entries)
        else:
            # Quiescent edge: both occupancies are zero, so the sample is a
            # run-length increment (completions above cannot refill either).
            self._idle_samples += 1

    def flush_samples(self) -> None:
        """Fold deferred quiescent-edge occupancy samples into the counters."""
        idle = self._idle_samples
        if idle:
            self._idle_samples = 0
            self.issue_queue.occupancy_samples += idle
            self.input_channel.occupancy_samples += idle

    def make_fused_edge(self, domain, engine, probe):
        """Build this cluster's fully fused per-edge closure.

        Used by :meth:`~repro.sim.clock.ClockDomain.bind` when the cluster is
        its domain's only component: one closure performs the cluster cycle,
        the deferred occupancy sampling and the deferred power accounting
        with no intermediate dispatch.  Channel/window list attributes are
        re-read per edge (squash and flush replace them), but everything
        else is pre-bound.
        """
        unit = self
        channel = self.input_channel
        issue_queue = self.issue_queue
        is_fifo = channel.counts_as_fifo
        event_mode = issue_queue.scheme == SCHEME_EVENT
        if probe is not None:
            gated_cells, state, active_edge = probe
        else:  # pragma: no cover - every processor domain carries a probe
            gated_cells, state, active_edge = (), [None, 0, 0], lambda: None

        def on_edge(_param: object) -> None:
            """One cluster cycle fused with accounting: complete, drain, issue, sample, charge."""
            time = engine._now
            if time >= unit._next_completion:
                unit._complete_finished(time)
            ch_entries = channel._entries
            iq_entries = issue_queue._entries
            if ch_entries or iq_entries:
                # head-visibility precheck saves the empty bulk-drain call
                # while the FIFO head is still synchronizing
                if ch_entries and (not is_fifo or ch_entries[0][2] <= time):
                    unit._drain_input(time)
                # event scheme: skip the issue call outright while the ready
                # list is empty or gated (nothing can become visible yet)
                if event_mode:
                    if issue_queue._ready and time >= issue_queue.ready_gate:
                        unit._issue_ready(time)
                elif issue_queue._entries:
                    unit._issue_ready(time)
                idle = unit._idle_samples
                if idle:
                    unit._idle_samples = 0
                    issue_queue.occupancy_samples += idle
                    channel.occupancy_samples += idle
                issue_queue.occupancy_samples += 1
                issue_queue.occupancy_accum += len(issue_queue._entries)
                channel.occupancy_samples += 1
                channel.occupancy_accum += len(channel._entries)
            else:
                unit._idle_samples += 1
            domain.last_edge_time = time
            if domain.voltage == state[0]:
                for cell in gated_cells:
                    if cell[0]:
                        active_edge()
                        break
                else:
                    state[1] += 1
            else:
                active_edge()
            domain.cycle += 1

        return on_edge

    # ------------------------------------------------------------ completion
    def _complete_finished(self, now: float) -> None:
        if now < self._next_completion:
            return
        in_flight = self._in_flight
        finished = [instr for instr in in_flight if instr.fu_done <= now]
        if not finished:
            self._refresh_next_completion()
            return
        # Remove the finished operations from the in-flight set *before*
        # processing them: branch resolution below may trigger misprediction
        # recovery, which squashes younger work in this very unit.
        if len(finished) == len(in_flight):
            in_flight.clear()
        else:
            self._in_flight = [instr for instr in in_flight
                               if instr.fu_done > now]
        if len(finished) > 1:
            finished.sort(key=lambda i: i.seq)
        results = 0
        regfile = self.regfile
        registers = regfile._registers
        domain_name = self.domain_name
        for instr in finished:
            if instr.squashed:
                continue
            instr.completed = True
            instr.complete_time = now
            self.completed_ops += 1
            phys_dest = instr.phys_dest
            if phys_dest is not None:
                # inline regfile.mark_ready; the waiter walk (under the event
                # wakeup scheme this writeback is what moves blocked
                # consumers toward their queue's ready list; under the scan
                # scheme the waiter list is always empty) is the kernel
                # backend's wake_waiters
                reg = registers[phys_dest]
                reg.ready_time = now
                reg.producer_domain = domain_name
                regfile.writes += 1
                results += 1
                waiters = reg.waiters
                if waiters:
                    self._wake_waiters(waiters)
            if instr.is_branch and self.branch_unit is not None:
                self.branch_unit.resolve(instr.pc, instr.trace.taken,
                                         instr.predicted_taken
                                         if instr.predicted_taken is not None
                                         else False,
                                         instr.trace.target_pc)
                if instr.mispredicted and self.recovery_callback is not None:
                    self.recovery_callback(instr, now)
        if results:
            self._regwrite_cell[0] += results
            self._resultbus_cell[0] += results
        self._refresh_next_completion()

    def _refresh_next_completion(self) -> None:
        next_completion = float("inf")
        for instr in self._in_flight:
            fu_done = instr.fu_done
            if fu_done < next_completion:
                next_completion = fu_done
        self._next_completion = next_completion

    # ----------------------------------------------------------------- input
    def _make_drain_input(self):
        """Build the per-unit bulk-intake closure (stable refs pre-bound).

        The per-cycle stage bodies run thousands of times per simulated
        millisecond; binding the stable collaborators (channel, window,
        counter cells) as closure variables makes each access a local read
        instead of an attribute chain -- the same idiom the clock domains use
        for their edge closures.
        """
        unit = self
        channel = self.input_channel
        pop_bulk = channel.pop_bulk
        is_fifo = channel.counts_as_fifo
        queue = self.issue_queue
        capacity = queue.capacity
        queue_cell = self._queue_cell

        def drain_input(now: float) -> None:
            # Writeback-side intake: drain the dispatch channel in bulk.
            # Each batch is bounded by the issue queue's free space; squashed
            # items do not occupy a queue slot, so the loop re-probes until
            # the queue is full or the channel has nothing more visible.
            entries = queue._entries
            drained = 0
            while True:
                space = capacity - len(entries)
                if space <= 0:
                    break
                batch = pop_bulk(now, space)
                if not batch:
                    break
                for instr, wait in batch:
                    if is_fifo and wait > 0:
                        instr.fifo_time += wait
                    if instr.squashed:
                        unit.dropped_squashed += 1
                        continue
                    # inline IssueQueue.dispatch (the batch is bounded by the
                    # window's free space, so the capacity check cannot
                    # fire).  In-order appends land beyond the wakeup gate's
                    # covered prefix, so the gate survives; an out-of-order
                    # arrival scrambles the prefix and must invalidate it.
                    if entries and instr.seq < entries[-1].seq:
                        queue._needs_sort = True
                        queue.gate_time = -1.0
                    entries.append(instr)
                    drained += 1
                if len(batch) < space:
                    break                 # channel exhausted: skip the re-probe
            if drained:
                queue.dispatches += drained
                queue_cell[0] += drained

        return drain_input

    def _make_drain_input_event(self):
        """Event-scheme intake: the scan drain plus inline waiter linking.

        Each accepted entry is registered on the waiter list of every source
        operand whose producer has not written back yet; entries with no
        pending producer go straight onto the queue's age-ordered ready list
        (``IssueQueue.link_waiters``, inlined).  The scan scheme's wakeup
        gate is not maintained -- the event issue pass never reads it.
        """
        unit = self
        channel = self.input_channel
        pop_bulk = channel.pop_bulk
        is_fifo = channel.counts_as_fifo
        queue = self.issue_queue
        capacity = queue.capacity
        queue_cell = self._queue_cell
        registers = self.regfile._registers
        push_ready = queue.push_ready

        def drain_input(now: float) -> None:
            entries = queue._entries
            drained = 0
            while True:
                space = capacity - len(entries)
                if space <= 0:
                    break
                batch = pop_bulk(now, space)
                if not batch:
                    break
                for instr, wait in batch:
                    if is_fifo and wait > 0:
                        instr.fifo_time += wait
                    if instr.squashed:
                        unit.dropped_squashed += 1
                        continue
                    if entries and instr.seq < entries[-1].seq:
                        queue._needs_sort = True
                    entries.append(instr)
                    drained += 1
                    # inline IssueQueue.link_waiters
                    pending = 0
                    for phys in instr.phys_sources:
                        reg = registers[phys]
                        if reg.ready_time == _INF:
                            reg.waiters.append(instr)
                            pending += 1
                    instr.pending_ops = pending
                    instr.wakeup_queue = queue
                    if pending == 0:
                        push_ready(instr)
                if len(batch) < space:
                    break                 # channel exhausted: skip the re-probe
            if drained:
                queue.dispatches += drained
                queue_cell[0] += drained

        return drain_input

    # ----------------------------------------------------------------- issue
    def _make_issue_ready(self):
        """Build the per-unit wakeup/select + issue closure.

        A single pass over the window models the CAM search of
        ``IssueQueue.ready_instructions`` (every examined entry counts as
        wakeup activity, the per-entry visibility caches and the queue-level
        gate are maintained identically) and starts ready instructions on
        free functional units as it finds them, oldest first, without
        materialising an intermediate ready list.  All stable collaborators
        are pre-bound as closure variables: the per-cycle setup of the scan
        is a handful of local reads.
        """
        unit = self
        issue_queue = self.issue_queue
        regfile = self.regfile
        registers = regfile._registers
        fwd_cache = issue_queue._fwd_cache
        forwarding_latency = self.forwarding_latency
        functional_units = self.functional_units
        busy = functional_units._busy_until
        num_units = len(busy)
        latency_by_op = self._latency_by_op
        busy_by_op = self._busy_by_op
        memory = self.memory
        clock = self._clock
        domain_name = issue_queue.domain_name
        issue_width = self.issue_width
        dcache_cell = self._dcache_cell
        alu_cell = self._alu_cell
        queue_cell = self._queue_cell

        def issue_ready(now: float) -> None:
            entries = issue_queue._entries
            if not entries:
                return
            write_stamp = regfile.writes
            # Queue-level wakeup gate: when the last complete scan proved
            # nothing becomes visible before gate_time and no result has
            # completed since (regfile.writes unchanged), the covered
            # age-ordered prefix stays blocked -- only entries dispatched
            # after that scan can be ready, so the pass restricts itself to
            # the new tail (or skips entirely).
            start = 0
            if (issue_queue.gate_stamp == write_stamp
                    and now < issue_queue.gate_time):
                start = issue_queue.gate_len
                if start >= len(entries):
                    return
            limit = 0
            for busy_until in busy:
                if busy_until <= now:
                    limit += 1
            if limit <= 0:
                return
            if limit > issue_width:
                limit = issue_width
            if issue_queue._needs_sort:
                entries.sort(key=lambda i: i.seq)
                issue_queue._needs_sort = False
            period = clock.period
            in_flight = unit._in_flight
            next_completion = unit._next_completion
            scan_complete = True
            min_future = _INF
            issued_instrs: List[DynamicInstruction] = []
            searched = 0
            issued = 0
            loads = 0
            for instr in entries[start:] if start else entries:
                searched += 1
                wakeup_after = instr.wakeup_after
                if wakeup_after > now:
                    if wakeup_after < _INF:
                        if wakeup_after < min_future:
                            min_future = wakeup_after
                        continue              # visibility time known, still ahead
                    if instr.wakeup_stamp == write_stamp:
                        continue              # still blocked: no new completions
                    probe = True
                else:
                    probe = wakeup_after < 0.0
                if probe:
                    # blocked entry with fresh completions, or never-checked
                    # entry: probe every operand and refresh the cache
                    visible_at = 0.0
                    for phys in instr.phys_sources:
                        reg = registers[phys]
                        source_visible = reg.ready_time
                        if source_visible == _INF:
                            visible_at = _INF
                            break
                        producer_domain = reg.producer_domain
                        if producer_domain and producer_domain != domain_name:
                            extra = fwd_cache.get(producer_domain)
                            if extra is None:
                                extra = forwarding_latency(producer_domain,
                                                           domain_name)
                                fwd_cache[producer_domain] = extra
                            source_visible += extra
                        if source_visible > visible_at:
                            visible_at = source_visible
                    instr.wakeup_after = visible_at
                    if visible_at > now:
                        if visible_at == _INF:
                            instr.wakeup_stamp = write_stamp
                        elif visible_at < min_future:
                            min_future = visible_at
                        continue
                # ---------------- issue (inline FunctionalUnitPool.try_claim)
                opclass = instr.opclass
                op_index = opclass.op_index
                latency_cycles = latency_by_op[op_index]
                if instr.is_load and memory is not None:
                    latency_cycles += memory.load_access(instr.trace.mem_address or 0)
                    loads += 1
                claimed = False
                for index in range(num_units):
                    if busy[index] <= now:
                        busy[index] = now + busy_by_op[op_index] * period
                        functional_units.operations += 1
                        claimed = True
                        break
                if not claimed:
                    # Ready work is left behind: the gate must not skip it.
                    functional_units.structural_stalls += 1
                    scan_complete = False
                    break
                issued_instrs.append(instr)
                instr.issued = True
                instr.issue_time = now
                completion_time = now + latency_cycles * period
                instr.fu_done = completion_time
                if completion_time < next_completion:
                    next_completion = completion_time
                in_flight.append(instr)
                issued += 1
                if issued >= limit:
                    scan_complete = False     # tail not examined this cycle
                    break
            unit._next_completion = next_completion
            issue_queue.wakeup_searches += searched
            if loads:
                dcache_cell[0] += loads
            if issued:
                for instr in issued_instrs:
                    entries.remove(instr)
                issue_queue.issues += issued
                unit.issued_ops += issued
                alu_cell[0] += issued
                queue_cell[0] += issued
            if scan_complete:
                # A partial (gated) pass keeps the earlier gate time: the old
                # prefix stays blocked at least until then, and the new tail
                # adds its own earliest-visibility bound.
                if start:
                    gate_time = issue_queue.gate_time
                    if gate_time < min_future:
                        min_future = gate_time
                issue_queue.gate_time = min_future
                issue_queue.gate_stamp = write_stamp
                issue_queue.gate_len = len(entries)
            else:
                issue_queue.gate_time = -1.0

        return issue_ready

    def _make_issue_ready_event(self):
        """Build the event-scheme wakeup/select + issue closure.

        The pass walks only the queue's age-ordered ready list (entries
        whose producers have all written back), pricing cross-domain
        visibility lazily with the same per-entry ``wakeup_after`` cache the
        scan uses.  Selection is bit-identical to the scan closure: oldest
        first over the same candidate set, the same structural-stall and
        issue-width break conditions, and the same ``memory.load_access``
        call sequence (the visibility probe fires on the same edge in both
        schemes -- the first pass after the last producer's writeback).
        """
        unit = self
        issue_queue = self.issue_queue
        regfile = self.regfile
        registers = regfile._registers
        fwd_cache = issue_queue._fwd_cache
        forwarding_latency = self.forwarding_latency
        functional_units = self.functional_units
        busy = functional_units._busy_until
        num_units = len(busy)
        latency_by_op = self._latency_by_op
        busy_by_op = self._busy_by_op
        memory = self.memory
        clock = self._clock
        domain_name = issue_queue.domain_name
        issue_width = self.issue_width
        dcache_cell = self._dcache_cell
        alu_cell = self._alu_cell
        queue_cell = self._queue_cell

        def issue_ready(now: float) -> None:
            ready_list = issue_queue._ready
            if not ready_list:
                return
            # Issue gate: after a complete pass that issued everything
            # visible, no remaining entry can become visible before
            # ``ready_gate`` -- only a new push resets it (push_ready).
            if now < issue_queue.ready_gate:
                return
            limit = 0
            for busy_until in busy:
                if busy_until <= now:
                    limit += 1
            if limit <= 0:
                return
            if limit > issue_width:
                limit = issue_width
            period = clock.period
            in_flight = unit._in_flight
            next_completion = unit._next_completion
            pass_complete = True
            min_future = _INF
            issued_instrs: List[DynamicInstruction] = []
            searched = 0
            issued = 0
            loads = 0
            for instr in ready_list:
                searched += 1
                wakeup_after = instr.wakeup_after
                if wakeup_after > now:
                    if wakeup_after < min_future:
                        min_future = wakeup_after
                    continue              # visibility time known, still ahead
                if wakeup_after < 0.0:
                    # first examination since the last producer's writeback:
                    # price every operand's cross-domain visibility
                    visible_at = 0.0
                    for phys in instr.phys_sources:
                        reg = registers[phys]
                        source_visible = reg.ready_time
                        producer_domain = reg.producer_domain
                        if producer_domain and producer_domain != domain_name:
                            extra = fwd_cache.get(producer_domain)
                            if extra is None:
                                extra = forwarding_latency(producer_domain,
                                                           domain_name)
                                fwd_cache[producer_domain] = extra
                            source_visible += extra
                        if source_visible > visible_at:
                            visible_at = source_visible
                    instr.wakeup_after = visible_at
                    if visible_at > now:
                        if visible_at < min_future:
                            min_future = visible_at
                        continue
                # ---------------- issue (inline FunctionalUnitPool.try_claim)
                opclass = instr.opclass
                op_index = opclass.op_index
                latency_cycles = latency_by_op[op_index]
                if instr.is_load and memory is not None:
                    latency_cycles += memory.load_access(instr.trace.mem_address or 0)
                    loads += 1
                claimed = False
                for index in range(num_units):
                    if busy[index] <= now:
                        busy[index] = now + busy_by_op[op_index] * period
                        functional_units.operations += 1
                        claimed = True
                        break
                if not claimed:
                    # a visible entry is left behind: the gate must not hide it
                    functional_units.structural_stalls += 1
                    pass_complete = False
                    break
                issued_instrs.append(instr)
                instr.issued = True
                instr.issue_time = now
                completion_time = now + latency_cycles * period
                instr.fu_done = completion_time
                if completion_time < next_completion:
                    next_completion = completion_time
                in_flight.append(instr)
                issued += 1
                if issued >= limit:
                    pass_complete = False     # tail not examined this pass
                    break
            unit._next_completion = next_completion
            issue_queue.wakeup_searches += searched
            issue_queue.ready_gate = min_future if pass_complete else -1.0
            if loads:
                dcache_cell[0] += loads
            if issued:
                entries = issue_queue._entries
                for instr in issued_instrs:
                    ready_list.remove(instr)
                    entries.remove(instr)
                issue_queue.issues += issued
                unit.issued_ops += issued
                alu_cell[0] += issued
                queue_cell[0] += issued

        return issue_ready

    # ----------------------------------------------------------------- squash
    def squash_younger_than(self, branch_seq: int) -> int:
        """Remove wrong-path work after a misprediction; returns count removed."""
        squashed_queue = self.issue_queue.squash_younger_than(branch_seq)
        squashed_flight = [i for i in self._in_flight if i.seq > branch_seq]
        for instr in squashed_flight:
            instr.squashed = True
        self._in_flight = [i for i in self._in_flight if i.seq <= branch_seq]
        dropped_channel = self.input_channel.flush(
            lambda i: getattr(i, "seq", -1) > branch_seq)
        return len(squashed_queue) + len(squashed_flight) + dropped_channel

    # ------------------------------------------------------------------ state
    @property
    def in_flight_count(self) -> int:
        """Instructions currently executing in the functional units."""
        return len(self._in_flight)

    def pending_work(self) -> int:
        """Instructions waiting or executing in this cluster (drain check)."""
        return (self.issue_queue.occupancy + len(self._in_flight)
                + self.input_channel.occupancy)
