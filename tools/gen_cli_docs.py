#!/usr/bin/env python
"""Generate ``docs/cli.md`` from the ``repro`` argparse definitions.

The CLI reference is derived from :func:`repro.cli.build_parser` -- the same
object that parses real invocations -- so the docs cannot drift from the
implementation: ``tests/test_docs.py`` regenerates the page and fails when
the committed file is stale (for example when a new subcommand is added
without re-running this script), and the CI docs job runs ``--check`` before
building the site.

Usage::

    python tools/gen_cli_docs.py            # rewrite docs/cli.md
    python tools/gen_cli_docs.py --check    # exit 1 if docs/cli.md is stale
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

# the generated page must not depend on the invoking terminal's width
os.environ["COLUMNS"] = "79"

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import build_parser  # noqa: E402

OUTPUT = REPO_ROOT / "docs" / "cli.md"

HEADER = """\
# CLI reference

Every command below is available both as `repro ...` (the installed console
script) and as `python -m repro ...`.

*This page is generated from the argparse definitions by
`python tools/gen_cli_docs.py`; edit the parser in `src/repro/cli.py`, not
this file.  A test fails when the two drift apart.*
"""


def iter_subparsers(parser: argparse.ArgumentParser, prefix: str = ""):
    """Yield (command path, subparser) depth-first over the parser tree."""
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, subparser in action.choices.items():
                path = f"{prefix} {name}".strip()
                yield path, subparser
                yield from iter_subparsers(subparser, path)


def _help_text(parser: argparse.ArgumentParser) -> str:
    """One parser's help, normalised across Python versions."""
    # Python 3.9 spells the options section differently; normalise so the
    # committed page is identical no matter which version regenerates it.
    return parser.format_help().rstrip().replace("optional arguments:",
                                                 "options:")


def render() -> str:
    """The full markdown page for the current parser definitions."""
    parser = build_parser()
    sections = [HEADER]
    sections.append("## repro\n\n```text\n" + _help_text(parser) + "\n```\n")
    for path, subparser in iter_subparsers(parser):
        sections.append(f"## repro {path}\n\n```text\n"
                        + _help_text(subparser) + "\n```\n")
    return "\n".join(sections)


def main(argv=None) -> int:
    cli = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    cli.add_argument("--check", action="store_true",
                     help="verify docs/cli.md is current instead of writing it")
    args = cli.parse_args(argv)
    content = render()
    if args.check:
        if not OUTPUT.exists() or OUTPUT.read_text() != content:
            print(f"{OUTPUT} is stale; run: python tools/gen_cli_docs.py",
                  file=sys.stderr)
            return 1
        print(f"{OUTPUT} is up to date")
        return 0
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(content)
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
