"""Benchmark-trajectory analysis over ``BENCH_sim_core.json``.

``benchmarks/bench_sim_core.py`` appends one record per invocation (one per
commit on the perf-tracked path), so the record file is a per-commit history
of simulator throughput.  This module renders that history as a table --
the engine behind ``repro bench history`` -- with the same comparability
rules as the CI regression gate (``benchmarks/check_bench_regression.py``):

* records from different CPython minor series or different engine kernel
  backends form separate *cohorts* and are never compared against each other;
* smoke-tagged records (CI quick checks) are shown but never used as a
  comparison baseline;
* a value that dropped by more than the threshold against the previous
  record of the same cohort is flagged with ``!``.

Raw throughput is only meaningful within one host; pass ``normalise=True``
(CLI: ``--normalise``) to divide every metric by the record's own live
embedded-seed-engine throughput, which scales with the host's single-core
Python speed -- the resulting ratios track code changes across machines.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default name of the record file (at the repository root).
BENCH_FILENAME = "BENCH_sim_core.json"


def _get(record: Dict[str, Any], *path: str) -> Optional[float]:
    """Fetch a nested numeric field, or None when absent/malformed."""
    node: Any = record
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    try:
        return float(node)
    except (TypeError, ValueError):
        return None


#: Tracked metrics: (column header, extractor).  Mirrors the CI gate's
#: metric set; absent values (older records, smoke records) render as ``-``.
METRICS: Tuple[Tuple[str, Any], ...] = (
    ("gals i/s", lambda r: _get(r, "full_run", "gals", "instr_per_sec")),
    ("base i/s", lambda r: _get(r, "full_run", "base", "instr_per_sec")),
    ("ctrl i/s",
     lambda r: _get(r, "full_run", "gals_controller", "instr_per_sec")),
    ("fem3 i/s", lambda r: _get(r, "full_run", "fem3", "instr_per_sec")),
    ("sweep i/s", lambda r: _get(r, "sweep_warm", "instr_per_sec")),
    ("mixed ev/s",
     lambda r: _get(r, "engine_events_per_sec", "mixed", "wheel")),
    ("unif ev/s",
     lambda r: _get(r, "engine_events_per_sec", "uniform", "wheel")),
)


def record_backend(record: Dict[str, Any]) -> str:
    """The engine kernel backend tag ('pure' for records predating it)."""
    return str(record.get("backend") or "pure")


def record_minor(record: Dict[str, Any]) -> Optional[str]:
    """The CPython minor series ('3.11'), derived when untagged."""
    tag = record.get("python_minor")
    if tag:
        return str(tag)
    parts = str(record.get("python", "")).split(".")
    if len(parts) >= 2 and parts[0].isdigit() and parts[1].isdigit():
        return f"{parts[0]}.{parts[1]}"
    return None


def record_cohort(record: Dict[str, Any]) -> Tuple[Optional[str], str]:
    """The comparability cohort: (CPython minor series, kernel backend)."""
    return record_minor(record), record_backend(record)


def find_bench_file(start: Optional[Path] = None) -> Path:
    """Locate ``BENCH_sim_core.json`` from ``start`` (default: cwd) upward.

    Searches the starting directory and its parents -- the file lives at the
    repository root, so the CLI works from any subdirectory of a checkout.
    Raises :class:`FileNotFoundError` when no record file exists.
    """
    base = (start or Path.cwd()).resolve()
    for directory in (base, *base.parents):
        candidate = directory / BENCH_FILENAME
        if candidate.is_file():
            return candidate
    raise FileNotFoundError(
        f"no {BENCH_FILENAME} found in {base} or any parent directory")


def load_history(path: Optional[Path] = None) -> List[Dict[str, Any]]:
    """Load the benchmark record list (a single record wraps into a list)."""
    if path is None:
        path = find_bench_file()
    history = json.loads(Path(path).read_text())
    if not isinstance(history, list):
        history = [history]
    return history


def _seed_rate(record: Dict[str, Any]) -> Optional[float]:
    """The record's live embedded-seed-engine throughput (host yardstick)."""
    return _get(record, "engine_events_per_sec", "mixed", "seed_engine_live")


def history_rows(history: Sequence[Dict[str, Any]],
                 threshold: float = 0.25,
                 normalise: bool = False) -> List[Dict[str, Any]]:
    """Per-record table rows with cohort-wise regression flags.

    Each row carries the record's identity columns, one value per
    :data:`METRICS` entry (None when absent) and a parallel ``flags`` list:
    ``"!"`` where the value dropped by more than ``threshold`` against the
    previous non-smoke record of the same cohort, ``""`` otherwise.
    """
    rows = []
    previous_by_cohort: Dict[Tuple[Optional[str], str], Dict[str, Any]] = {}
    for record in history:
        yardstick = _seed_rate(record) if normalise else None
        values: List[Optional[float]] = []
        for _, extract in METRICS:
            value = extract(record)
            if value is not None and normalise:
                value = value / yardstick if yardstick else None
            values.append(value)
        cohort = record_cohort(record)
        baseline = previous_by_cohort.get(cohort)
        flags = []
        for index, value in enumerate(values):
            flag = ""
            if baseline is not None and value is not None:
                was = baseline["values"][index]
                if was:
                    change = value / was - 1.0
                    if change < -threshold:
                        flag = "!"
            flags.append(flag)
        row = {
            "timestamp": str(record.get("timestamp", "?")),
            "python": record_minor(record) or "?",
            "backend": record_backend(record),
            "smoke": bool(record.get("smoke")),
            "values": values,
            "flags": flags,
        }
        rows.append(row)
        if not row["smoke"]:
            previous_by_cohort[cohort] = row
    return rows


def _format_value(value: Optional[float], flag: str,
                  normalise: bool) -> str:
    if value is None:
        return "-"
    text = f"{value:.2f}" if normalise else f"{value:,.0f}"
    return text + flag


def history_table(history: Sequence[Dict[str, Any]],
                  threshold: float = 0.25,
                  normalise: bool = False) -> str:
    """Render the benchmark trajectory as an aligned text table.

    One row per record, newest last; ``!`` marks a metric that regressed by
    more than ``threshold`` against the previous full record of the same
    (CPython minor, backend) cohort.  With ``normalise`` every metric is the
    ratio to the record's own live seed-engine throughput, comparable across
    hosts.
    """
    rows = history_rows(history, threshold=threshold, normalise=normalise)
    headers = (["timestamp", "py", "backend", "kind"]
               + [name for name, _ in METRICS])
    table: List[List[str]] = [headers]
    for row in rows:
        table.append(
            [row["timestamp"], row["python"], row["backend"],
             "smoke" if row["smoke"] else "full"]
            + [_format_value(value, flag, normalise)
               for value, flag in zip(row["values"], row["flags"])])
    widths = [max(len(line[column]) for line in table)
              for column in range(len(headers))]
    rendered = []
    for index, line in enumerate(table):
        rendered.append("  ".join(
            cell.ljust(widths[column]) if column < 4 else
            cell.rjust(widths[column])
            for column, cell in enumerate(line)))
        if index == 0:
            rendered.append("  ".join("-" * width for width in widths))
    unit = ("ratios to the record's live seed-engine throughput"
            if normalise else "raw per-host throughput")
    rendered.append("")
    rendered.append(f"({unit}; ! = dropped >{threshold:.0%} vs the previous "
                    "full record of the same python+backend cohort)")
    return "\n".join(rendered)
