"""Pluggable sweep execution: job backends behind one unified API.

This package decouples *what* a sweep runs (scenarios) from *how* it runs
them.  :class:`~repro.exec.config.ExecutionConfig` is the single spelling of
the execution knobs (backend, jobs, store, warm-start) threaded through
every sweep entry point; :class:`~repro.exec.backends.JobBackend` is the
fabric protocol with three implementations -- ``serial`` (in-process),
``local`` (the warm-started process pool, the default) and ``subprocess``
(worker processes coordinating through queue + claim files in a shared
results store, the multi-host shape; see :mod:`repro.exec.worker`).  The
``repro serve`` results service (:mod:`repro.serve`) drains its miss queue
through the same protocol.
"""

from .backends import (JOB_BACKENDS, JobBackend, JobBackendInfo, JobHandle,
                       LocalPoolBackend, SerialBackend, SubprocessBackend,
                       available_job_backends, make_job_backend,
                       register_job_backend, timed_run_scenario)
from .config import UNSET, ExecutionConfig, resolve_execution

__all__ = [
    "ExecutionConfig",
    "JOB_BACKENDS",
    "JobBackend",
    "JobBackendInfo",
    "JobHandle",
    "LocalPoolBackend",
    "SerialBackend",
    "SubprocessBackend",
    "UNSET",
    "available_job_backends",
    "make_job_backend",
    "register_job_backend",
    "resolve_execution",
    "timed_run_scenario",
]
