"""Clock-distribution case study (paper Section 2.2, Table 1).

Table 1 of the paper tracks global clock skew across four CMOS process
generations of commercial microprocessors (Alpha 21064/21164/21264 and the
Itanium prototype with and without active deskewing), showing that skew
consumes a growing fraction of the cycle time even as designers spend more
and more resources on the distribution network.  This module carries that
published data and the simple derived metrics (skew as a fraction of cycle
time, devices clocked per ps of skew budget) the paper's argument rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class ClockSkewCase:
    """One row of Table 1."""

    design: str
    technology_um: float
    year: int
    device_count_millions: float
    cycle_time_ns: float
    skew_ps: float
    remarks: str

    @property
    def frequency_mhz(self) -> float:
        """Clock frequency in MHz implied by the cycle time."""
        return 1000.0 / self.cycle_time_ns

    @property
    def skew_fraction_of_cycle(self) -> float:
        """Skew as a fraction of the cycle time (the paper's ~10 % argument)."""
        return (self.skew_ps / 1000.0) / self.cycle_time_ns

    @property
    def devices_per_ps_of_skew(self) -> float:
        """How many devices must be clocked per picosecond of skew budget."""
        return self.device_count_millions * 1e6 / self.skew_ps


#: The published case-study data (Table 1 of the paper).
CLOCK_SKEW_CASES: Tuple[ClockSkewCase, ...] = (
    ClockSkewCase("Alpha 21064", 0.8, 1992, 1.6, 5.0, 200.0,
                  "Single line of drivers for clock grid"),
    ClockSkewCase("Alpha 21164", 0.5, 1995, 9.3, 3.3, 80.0,
                  "Two lines of drivers for clock grid"),
    ClockSkewCase("Alpha 21264", 0.35, 1998, 15.2, 1.7, 65.0,
                  "16 distributed lines of drivers"),
    ClockSkewCase("Itanium (with active deskewing)", 0.18, 2001, 25.4, 1.25, 28.0,
                  "32 active deskewing circuits"),
    ClockSkewCase("Itanium (without active deskewing)", 0.18, 2001, 25.4, 1.25, 110.0,
                  "Projected skew without deskewing"),
)


def clock_skew_table(cases: Tuple[ClockSkewCase, ...] = CLOCK_SKEW_CASES) -> str:
    """Render Table 1 (plus the derived skew/cycle column) as text."""
    header = (f"{'Design':<36} {'Tech':>8} {'Devices':>9} {'Cycle':>8} "
              f"{'Skew':>8} {'Skew/cycle':>11}  Remarks")
    lines = [header, "-" * len(header)]
    for case in cases:
        lines.append(
            f"{case.design:<36} {case.technology_um:>5.2f} um "
            f"{case.device_count_millions:>7.1f}M {case.cycle_time_ns:>6.2f} ns "
            f"{case.skew_ps:>5.0f} ps {case.skew_fraction_of_cycle:>10.1%}  "
            f"{case.remarks}")
    return "\n".join(lines)


def skew_trend(cases: Tuple[ClockSkewCase, ...] = CLOCK_SKEW_CASES
               ) -> List[Tuple[str, float]]:
    """(design, skew fraction of cycle) series, the paper's headline trend."""
    return [(case.design, case.skew_fraction_of_cycle) for case in cases]


def projected_skew_fraction(technology_um: float,
                            cases: Tuple[ClockSkewCase, ...] = CLOCK_SKEW_CASES
                            ) -> float:
    """Extrapolate the skew/cycle fraction to a future technology node.

    A simple log-linear fit of skew fraction against feature size over the
    *non-deskewed* designs; used by the clock-distribution example to argue,
    as Section 2.2 does, that skew grows into a first-order constraint.
    """
    import math

    if technology_um <= 0:
        raise ValueError("technology_um must be positive")
    points = [(math.log(c.technology_um), math.log(c.skew_fraction_of_cycle))
              for c in cases if "without" in c.design or "deskewing" not in c.design]
    n = len(points)
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in points)
    var = sum((x - mean_x) ** 2 for x, _ in points)
    slope = cov / var if var else 0.0
    intercept = mean_y - slope * mean_x
    return math.exp(intercept + slope * math.log(technology_um))
