"""Synthetic trace generation from benchmark profiles.

A :class:`SyntheticWorkload` turns a :class:`~repro.workloads.profiles.BenchmarkProfile`
into a concrete, deterministic (seeded) dynamic instruction stream:

1. A static control-flow graph is synthesised: ``static_blocks`` basic blocks,
   each a sequence of instruction slots whose classes follow the profile's
   instruction mix, terminated by a conditional branch (or occasionally an
   unconditional jump).  Every static branch gets a fixed taken-bias, every
   static memory slot gets a base region and stride inside the working set,
   and register dependences are wired with the profile's dependence distance.

2. The dynamic trace is produced by walking the CFG: branch outcomes are drawn
   from the static bias, memory addresses advance along the slot's stride and
   wrap inside the working set.

Because the same static branch always has the same bias and the same static
load walks a coherent address stream, a real branch predictor and real caches
behave realistically on the synthetic stream -- which is all the paper's
figures require of the workload (they depend on branch density and
predictability, FP/memory intensity and dependence structure, not on the
actual SPEC semantics).

The generator also produces *wrong-path* instructions on demand; the fetch
unit injects those after a mispredicted branch until the redirect arrives.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..isa.instructions import InstructionClass
from ..isa.program import INSTRUCTION_SIZE, TEXT_BASE
from ..isa.registers import FP_BASE, NUM_INT_ARCH_REGS, fp_reg, int_reg
from ..isa.trace import InstructionSource, ListTraceSource, TraceInstruction
from .profiles import BenchmarkProfile, get_profile

#: Base of the synthetic data segment.
DATA_BASE = 0x1000_0000

#: Registers reserved for synthetic codegen (avoid r0 which is hard-wired zero).
_INT_REG_POOL = [int_reg(i) for i in range(1, 28)]
_FP_REG_POOL = [fp_reg(i) for i in range(0, 28)]


@dataclass(slots=True)
class _StaticSlot:
    """One static non-control instruction slot inside a basic block."""

    opclass: InstructionClass
    dest: Optional[int]
    sources: Tuple[int, ...]
    # memory slots only:
    region_base: int = 0
    region_span: int = 0
    stride: int = 0


@dataclass(slots=True)
class _StaticBranch:
    """The control-flow terminator of a basic block."""

    opclass: InstructionClass  # BRANCH or JUMP
    sources: Tuple[int, ...]
    taken_bias: float
    target_block: int
    fallthrough_block: int


@dataclass(slots=True)
class _StaticBlock:
    """A synthetic basic block."""

    index: int
    start_pc: int
    slots: List[_StaticSlot]
    terminator: Optional[_StaticBranch]

    @property
    def length(self) -> int:
        return len(self.slots) + (1 if self.terminator is not None else 0)


class SyntheticWorkload:
    """Deterministic synthetic benchmark derived from a behaviour profile."""

    def __init__(self, profile: BenchmarkProfile, seed: int = 1) -> None:
        self.profile = profile
        self.seed = seed
        # zlib.crc32 is stable across processes (unlike hash()), keeping
        # workloads reproducible run to run.
        self._rng = random.Random(
            (zlib.crc32(profile.name.encode()) & 0xFFFF) * 1_000_003 + seed)
        self._blocks: List[_StaticBlock] = []
        self._build_static_program()
        # dynamic-walk state
        self._current_block = 0
        self._slot_visits: dict = {}
        #: (pc, offset) -> synthesised wrong-path instruction; the generator
        #: is a pure function of its arguments, and mispredictions replay the
        #: same wrong paths across repeated runs of a shared workload
        self._wrong_path_cache: dict = {}

    # ------------------------------------------------------------ static CFG
    def _build_static_program(self) -> None:
        profile = self.profile
        rng = self._rng
        num_blocks = profile.static_blocks
        mean_len = profile.mean_block_length
        pc = TEXT_BASE
        for block_index in range(num_blocks):
            body_len = max(1, int(rng.gauss(mean_len, mean_len * 0.3)))
            body_len = min(body_len, 120)
            slots = [self._make_slot(rng) for _ in range(body_len)]
            self._wire_dependences(slots, rng)
            terminator = self._make_terminator(block_index, num_blocks, rng)
            block = _StaticBlock(index=block_index, start_pc=pc, slots=slots,
                                 terminator=terminator)
            self._blocks.append(block)
            pc += block.length * INSTRUCTION_SIZE

    def _make_slot(self, rng: random.Random) -> _StaticSlot:
        profile = self.profile
        draw = rng.random()
        load_cut = profile.load_fraction
        store_cut = load_cut + profile.store_fraction
        fp_cut = store_cut + profile.fp_fraction
        working_set_bytes = profile.working_set_kb * 1024

        if draw < load_cut or draw < store_cut:
            opclass = (InstructionClass.LOAD if draw < load_cut
                       else InstructionClass.STORE)
            # Most accesses hit a small hot region (stack / current record),
            # giving the high temporal locality real programs exhibit; a
            # minority of slots stream over the full working set and produce
            # the capacity misses that grow with working_set_kb.
            hot_region_bytes = min(working_set_bytes, 8 * 1024)
            if rng.random() < 0.85:
                region_span = max(profile.access_stride * 4,
                                  int(hot_region_bytes * rng.uniform(0.1, 0.5)))
                region_base = DATA_BASE + rng.randrange(0, hot_region_bytes, 8)
            else:
                region_span = max(profile.access_stride * 8,
                                  int(working_set_bytes * rng.uniform(0.2, 0.8)))
                region_base = DATA_BASE + rng.randrange(0, working_set_bytes, 8)
            stride = profile.access_stride if rng.random() < 0.8 else \
                profile.access_stride * rng.choice((2, 4, 8))
            dest = rng.choice(_INT_REG_POOL) if opclass is InstructionClass.LOAD else None
            return _StaticSlot(opclass=opclass, dest=dest, sources=(),
                               region_base=region_base, region_span=region_span,
                               stride=stride)
        if draw < fp_cut:
            sub = rng.random()
            if sub < profile.fp_div_share:
                opclass = InstructionClass.FP_DIV
            elif sub < profile.fp_div_share + profile.fp_mul_share:
                opclass = InstructionClass.FP_MUL
            else:
                opclass = InstructionClass.FP_ALU
            return _StaticSlot(opclass=opclass, dest=rng.choice(_FP_REG_POOL),
                               sources=())
        opclass = (InstructionClass.INT_MUL
                   if rng.random() < self.profile.int_mul_share
                   else InstructionClass.INT_ALU)
        return _StaticSlot(opclass=opclass, dest=rng.choice(_INT_REG_POOL),
                           sources=())

    def _wire_dependences(self, slots: List[_StaticSlot], rng: random.Random) -> None:
        """Assign source registers so dependence distances follow the profile."""
        mean_distance = self.profile.dependence_distance
        recent_int: List[int] = []
        recent_fp: List[int] = []
        for position, slot in enumerate(slots):
            sources: List[int] = []
            wants_fp = slot.opclass.is_fp
            pool = recent_fp if wants_fp else recent_int
            fallback = _FP_REG_POOL if wants_fp else _INT_REG_POOL
            num_sources = 2 if slot.opclass not in (InstructionClass.LOAD,) else 1
            if slot.opclass is InstructionClass.STORE:
                num_sources = 2  # value + address base
                pool = recent_int
                fallback = _INT_REG_POOL
            for _ in range(num_sources):
                if pool and rng.random() < 0.75:
                    distance = min(len(pool),
                                   max(1, int(rng.expovariate(1.0 / mean_distance)) + 1))
                    sources.append(pool[-distance])
                else:
                    sources.append(rng.choice(fallback))
            slot.sources = tuple(sources)
            if slot.dest is not None:
                if slot.opclass.is_fp:
                    recent_fp.append(slot.dest)
                else:
                    recent_int.append(slot.dest)
            del recent_int[:-16], recent_fp[:-16]

    def _make_terminator(self, block_index: int, num_blocks: int,
                         rng: random.Random) -> _StaticBranch:
        profile = self.profile
        control_total = profile.branch_fraction + profile.jump_fraction
        is_jump = (control_total > 0 and
                   rng.random() < profile.jump_fraction / control_total)
        fallthrough = (block_index + 1) % num_blocks
        target = rng.randrange(num_blocks)
        if is_jump:
            return _StaticBranch(opclass=InstructionClass.JUMP, sources=(),
                                 taken_bias=1.0, target_block=target,
                                 fallthrough_block=fallthrough)
        if rng.random() < profile.strongly_biased_fraction:
            bias = profile.strong_bias if rng.random() < 0.7 else 1.0 - profile.strong_bias
        else:
            bias = profile.weak_bias if rng.random() < 0.5 else 1.0 - profile.weak_bias
        sources = (rng.choice(_INT_REG_POOL), rng.choice(_INT_REG_POOL))
        return _StaticBranch(opclass=InstructionClass.BRANCH, sources=sources,
                             taken_bias=bias, target_block=target,
                             fallthrough_block=fallthrough)

    # ------------------------------------------------------------ properties
    @property
    def blocks(self) -> Sequence[_StaticBlock]:
        """The generated static basic blocks."""
        return tuple(self._blocks)

    @property
    def static_instruction_count(self) -> int:
        """Total static instructions over all blocks."""
        return sum(block.length for block in self._blocks)

    # --------------------------------------------------------- dynamic trace
    def trace(self, num_instructions: int) -> ListTraceSource:
        """Generate a correct-path dynamic trace of ``num_instructions``."""
        if num_instructions <= 0:
            raise ValueError("num_instructions must be positive")
        rng = random.Random(self._rng.random())
        instructions: List[TraceInstruction] = []
        block_index = 0
        visit_counts = [0] * len(self._blocks)
        while len(instructions) < num_instructions:
            block = self._blocks[block_index]
            visit = visit_counts[block_index]
            visit_counts[block_index] += 1
            pc = block.start_pc
            for slot in block.slots:
                if len(instructions) >= num_instructions:
                    return ListTraceSource(instructions, name=self.profile.name)
                instructions.append(self._dynamic_from_slot(
                    slot, pc, len(instructions), visit))
                pc += INSTRUCTION_SIZE
            if len(instructions) >= num_instructions:
                break
            terminator = block.terminator
            if terminator is None:
                block_index = (block_index + 1) % len(self._blocks)
                continue
            taken = rng.random() < terminator.taken_bias
            next_block = (terminator.target_block if taken
                          else terminator.fallthrough_block)
            target_pc = self._blocks[terminator.target_block].start_pc
            instructions.append(TraceInstruction(
                index=len(instructions),
                pc=pc,
                opclass=terminator.opclass,
                dest=None,
                sources=terminator.sources,
                is_branch=terminator.opclass is InstructionClass.BRANCH,
                taken=taken if terminator.opclass is InstructionClass.BRANCH else True,
                target_pc=target_pc,
            ))
            block_index = next_block
        return ListTraceSource(instructions, name=self.profile.name)

    def _dynamic_from_slot(self, slot: _StaticSlot, pc: int, index: int,
                           visit: int) -> TraceInstruction:
        mem_address = None
        if slot.opclass.is_memory:
            offset = (visit * slot.stride) % max(slot.region_span, slot.stride)
            mem_address = slot.region_base + offset
        return TraceInstruction(
            index=index,
            pc=pc,
            opclass=slot.opclass,
            dest=slot.dest,
            sources=slot.sources,
            mem_address=mem_address,
        )

    # ------------------------------------------------------------ wrong path
    def wrong_path_instruction(self, pc: int, offset: int) -> TraceInstruction:
        """Produce one plausible wrong-path instruction at ``pc``.

        Wrong-path instructions are deterministic in shape (so runs are
        repeatable) and use the profile's integer mix; they consume fetch,
        decode, rename and issue resources until squashed, which is how the
        extra speculative work of the GALS machine (Figure 8) arises.
        """
        cache = self._wrong_path_cache
        key = (pc, offset)
        found = cache.get(key)
        if found is not None:
            return found
        classes = (InstructionClass.INT_ALU, InstructionClass.INT_ALU,
                   InstructionClass.LOAD, InstructionClass.INT_ALU)
        opclass = classes[offset % len(classes)]
        dest = _INT_REG_POOL[(offset * 7) % len(_INT_REG_POOL)]
        sources = (_INT_REG_POOL[(offset * 3) % len(_INT_REG_POOL)],)
        mem_address = (DATA_BASE + (offset * 64) % (self.profile.working_set_kb * 1024)
                       if opclass is InstructionClass.LOAD else None)
        instr = TraceInstruction(index=-1, pc=pc, opclass=opclass, dest=dest,
                                 sources=sources, mem_address=mem_address)
        if len(cache) >= 65536:
            cache.clear()
        cache[key] = instr
        return instr


def make_workload(name: str, seed: int = 1) -> SyntheticWorkload:
    """Create the synthetic workload for a named benchmark profile."""
    return SyntheticWorkload(get_profile(name), seed=seed)


def make_trace(name: str, num_instructions: int, seed: int = 1) -> ListTraceSource:
    """Convenience: named benchmark -> dynamic trace of the requested length."""
    return make_workload(name, seed=seed).trace(num_instructions)
