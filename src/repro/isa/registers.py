"""Architectural register namespace.

The processor modelled in the paper (Table 3) has 72 physical integer
registers and 72 physical floating-point registers renamed from a
conventional 32+32 architectural register file (Alpha-like).  This module
defines the architectural namespace shared by the ISA, the synthetic workload
generator and the rename stage.

Architectural registers are identified by a single integer id so dependence
tracking never needs to care which file a register lives in:

* ``0 .. 31``   -- integer registers ``r0`` .. ``r31`` (``r0`` is hard-wired zero)
* ``32 .. 63``  -- floating-point registers ``f0`` .. ``f31``
"""

from __future__ import annotations

from typing import Optional

NUM_INT_ARCH_REGS = 32
NUM_FP_ARCH_REGS = 32
NUM_ARCH_REGS = NUM_INT_ARCH_REGS + NUM_FP_ARCH_REGS

#: id of the hard-wired zero register; writes to it are discarded and reads
#: never create dependences.
ZERO_REG = 0

FP_BASE = NUM_INT_ARCH_REGS


def int_reg(index: int) -> int:
    """Architectural id of integer register ``r<index>``."""
    if not 0 <= index < NUM_INT_ARCH_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return index


def fp_reg(index: int) -> int:
    """Architectural id of floating-point register ``f<index>``."""
    if not 0 <= index < NUM_FP_ARCH_REGS:
        raise ValueError(f"fp register index out of range: {index}")
    return FP_BASE + index


def is_fp_reg(reg: int) -> bool:
    """True when the architectural id refers to the floating-point file."""
    return FP_BASE <= reg < NUM_ARCH_REGS


def is_int_reg(reg: int) -> bool:
    """True when the architectural id refers to the integer file."""
    return 0 <= reg < FP_BASE


def reg_name(reg: Optional[int]) -> str:
    """Human-readable name ('r5', 'f3', '-') for an architectural id."""
    if reg is None:
        return "-"
    if is_int_reg(reg):
        return f"r{reg}"
    if is_fp_reg(reg):
        return f"f{reg - FP_BASE}"
    raise ValueError(f"invalid architectural register id: {reg}")


def parse_reg(token: str) -> int:
    """Parse 'r12' or 'f3' into an architectural register id."""
    token = token.strip().lower()
    if len(token) < 2 or token[0] not in ("r", "f") or not token[1:].isdigit():
        raise ValueError(f"invalid register token: {token!r}")
    index = int(token[1:])
    if token[0] == "r":
        return int_reg(index)
    return fp_reg(index)
