"""Figure 6: average slip of an instruction in the base and GALS designs.

Paper result: the fetch-to-commit latency ("slip") grows substantially in the
GALS machine -- +65 % on average in the paper -- because the asynchronous
channels lengthen the effective pipeline.  Our reproduction shows the same
direction with a smaller magnitude (the completion/forwarding path is modelled
as a visibility latency rather than an explicit queue); see EXPERIMENTS.md.
"""

from repro.analysis import slip_table
from repro.core.experiments import average_slip_increase, run_pair

from conftest import TIMED_INSTRUCTIONS

import pytest

#: figure-reproduction benchmarks are tier-2: heavy, skipped by tier-1
pytestmark = pytest.mark.slow


def test_fig06_average_slip(benchmark, suite_rows):
    benchmark.pedantic(
        run_pair, args=("gcc",), kwargs={"num_instructions": TIMED_INSTRUCTIONS},
        rounds=1, iterations=1)

    print("\n=== Figure 6: average slip (fetch-to-commit latency, ns) ===")
    print(slip_table(suite_rows))

    increase = average_slip_increase(suite_rows)
    print(f"\naverage slip increase in GALS: {increase:+.1%} (paper: +65%)")
    # Direction: GALS slip must be higher on average and for most benchmarks.
    assert increase > 0.10
    higher = sum(1 for row in suite_rows if row.slip_ratio > 1.0)
    assert higher >= len(suite_rows) - 2
