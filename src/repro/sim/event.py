"""Event primitives for the event-driven simulation engine.

The paper (Section 4.2) describes a general-purpose event-driven simulation
engine whose event-queue nodes carry: a callback function, a parameter, a
scheduled time, a priority used to break ties between simultaneous events,
and -- for periodic events that model clocks -- a repetition period.  This
module defines that node type.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

#: Monotonic tie-breaker so that events with equal (time, priority) preserve
#: their insertion order, which keeps simulations fully deterministic.
_SEQUENCE = itertools.count()


@dataclass(order=True)
class Event:
    """A single scheduled occurrence in the simulation.

    Events compare by ``(time, priority, seq)`` so they can be stored directly
    in a heap.  Lower priority numbers execute first among events scheduled at
    the same instant (the paper uses the same convention).
    """

    time: float
    priority: int = 0
    seq: int = field(default_factory=lambda: next(_SEQUENCE))
    callback: Callable[[Any], None] = field(compare=False, default=None)
    param: Any = field(compare=False, default=None)
    period: Optional[float] = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)
    name: str = field(compare=False, default="")

    def cancel(self) -> None:
        """Mark the event so the engine skips it (and stops re-scheduling it)."""
        self.cancelled = True

    @property
    def is_periodic(self) -> bool:
        """True when the event models a clock (it reschedules itself)."""
        return self.period is not None and self.period > 0.0

    def fire(self) -> None:
        """Invoke the callback with its parameter."""
        if self.callback is not None:
            self.callback(self.param)

    def next_occurrence(self) -> "Event":
        """Return the follow-up event one period later (periodic events only)."""
        if not self.is_periodic:
            raise ValueError("next_occurrence() requires a periodic event")
        return Event(
            time=self.time + self.period,
            priority=self.priority,
            callback=self.callback,
            param=self.param,
            period=self.period,
            name=self.name,
        )


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (e.g. scheduling in the past)."""
