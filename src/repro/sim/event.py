"""Event primitives for the event-driven simulation engine.

The paper (Section 4.2) describes a general-purpose event-driven simulation
engine whose event-queue nodes carry: a callback function, a parameter, a
scheduled time, a priority used to break ties between simultaneous events,
and -- for periodic events that model clocks -- a repetition period.  This
module defines that node type.

The node is deliberately *not* a dataclass: events are the single most
allocated object on the simulator's hot path, so the class uses ``__slots__``
and a hand-written ``__init__``, and the engine keeps ``(time, priority,
seq)``-keyed tuples in its heap so that ordering never goes through a
Python-level ``__lt__`` at all.  The rich comparisons below exist for API
compatibility (events can still be sorted directly) and preserve the seed
semantics: events order by ``(time, priority, seq)``.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, List, Optional

#: Monotonic tie-breaker so that events with equal (time, priority) preserve
#: their insertion order, which keeps simulations fully deterministic.
_SEQUENCE = itertools.count()

#: Column indices of the clock-wheel chain records kept by the engine.  A
#: chain is a plain list (element-wise list comparison is done in C, so
#: ``min(wheel)`` orders chains by exactly ``(time, priority, seq)`` without
#: ever reaching the non-comparable columns -- seq is globally unique).
CHAIN_TIME, CHAIN_PRIORITY, CHAIN_SEQ, CHAIN_CALLBACK, CHAIN_PARAM, \
    CHAIN_PERIOD, CHAIN_NAME, CHAIN_HANDLE, CHAIN_CANCELLED = range(9)


class Event:
    """A single scheduled occurrence in the simulation.

    Events compare by ``(time, priority, seq)``.  Lower priority numbers
    execute first among events scheduled at the same instant (the paper uses
    the same convention).
    """

    __slots__ = ("time", "priority", "seq", "callback", "param", "period",
                 "cancelled", "name", "_chain", "_cancel_hook")

    def __init__(
        self,
        time: float,
        priority: int = 0,
        seq: Optional[int] = None,
        callback: Optional[Callable[[Any], None]] = None,
        param: Any = None,
        period: Optional[float] = None,
        cancelled: bool = False,
        name: str = "",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = next(_SEQUENCE) if seq is None else seq
        self.callback = callback
        self.param = param
        self.period = period
        self.cancelled = cancelled
        self.name = name
        #: clock-wheel chain this event is the handle of (engine-internal)
        self._chain: Optional[List[Any]] = None
        #: notification called once when the event is first cancelled
        #: (engine-internal, used to track cancelled-event counts)
        self._cancel_hook: Optional[Callable[["Event"], None]] = None

    # ------------------------------------------------------------- ordering
    def _key(self):
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "Event") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "Event") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "Event") -> bool:
        return self._key() >= other._key()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self._key() == other._key()

    __hash__ = None  # mutable, ordered by key -- same as the former dataclass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Event(time={self.time!r}, priority={self.priority!r}, "
                f"seq={self.seq!r}, period={self.period!r}, "
                f"cancelled={self.cancelled!r}, name={self.name!r})")

    # ----------------------------------------------------------- behaviour
    def cancel(self) -> None:
        """Mark the event so the engine skips it (and stops re-scheduling it)."""
        if self.cancelled:
            return
        self.cancelled = True
        chain = self._chain
        if chain is not None:
            chain[CHAIN_CANCELLED] = True
        hook = self._cancel_hook
        if hook is not None:
            hook(self)

    @property
    def is_periodic(self) -> bool:
        """True when the event models a clock (it reschedules itself)."""
        return self.period is not None and self.period > 0.0

    def fire(self) -> None:
        """Invoke the callback with its parameter.

        An event without a callback cannot be fired: the engine refuses to
        schedule one, and firing one constructed by hand raises instead of
        silently doing nothing.
        """
        callback = self.callback
        if callback is None:
            raise SimulationError(f"event {self.name!r} has no callback")
        callback(self.param)

    def next_occurrence(self) -> "Event":
        """Return the follow-up event one period later (periodic events only)."""
        if not self.is_periodic:
            raise ValueError("next_occurrence() requires a periodic event")
        return Event(
            time=self.time + self.period,
            priority=self.priority,
            callback=self.callback,
            param=self.param,
            period=self.period,
            name=self.name,
        )


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (e.g. scheduling in the past)."""
