"""Commit stage (clock domain 2, pipeline stage 8: regfile write + commit).

Instructions retire in program order from the reorder buffer once their
execution has completed *and the completion is visible in the commit domain*.
In the GALS machine a completion produced in the integer, FP or memory domain
has to cross a FIFO back to domain 2 before the instruction can retire, so the
commit stage is a second place (after operand forwarding) where inter-domain
latency stretches the instruction slip (Figures 6-7).

The commit unit is also the central statistics collector: per committed
instruction it records the slip and its FIFO share, and per cycle it samples
the occupancy statistics the paper discusses (ROB, register allocation,
in-flight count).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..memory.hierarchy import MemoryHierarchy
from .instruction import DynamicInstruction
from .issue_queue import ForwardingLatency
from .regfile import ALWAYS_READY as _ALWAYS_READY
from .regfile import PhysicalRegisterFile
from .rename import RegisterAliasTable
from .rob import ReorderBuffer


class CommitUnit:
    """In-order retirement."""

    def __init__(
        self,
        rob: ReorderBuffer,
        rat: RegisterAliasTable,
        regfile: PhysicalRegisterFile,
        memory: MemoryHierarchy,
        domain_name: str,
        forwarding_latency: ForwardingLatency,
        activity,
        stats,
        commit_width: int = 4,
    ) -> None:
        self.rob = rob
        self.rat = rat
        self.regfile = regfile
        self.memory = memory
        self.domain_name = domain_name
        self.forwarding_latency = forwarding_latency
        self.activity = activity
        #: direct handles on the per-cycle counter cells (see DecodeRenameUnit)
        self._dcache_cell = activity.cell("dcache")
        self._regwrite_cell = activity.cell("regfile_write")
        #: exec-domain -> forwarding latency into the commit domain
        self._fwd_cache: dict = {}
        self.stats = stats
        self.commit_width = commit_width
        # statistics local to the stage
        self.committed = 0
        self.commit_stall_cycles = 0
        #: run-length-deferred occupancy sampling: consecutive cycles where
        #: the ROB length and both register-in-use counts are unchanged
        #: accumulate in ``_sample_run`` and are folded into the integer
        #: counters (ROB tracker + SimulationStats) on change or read
        self._sample_rob = -1
        self._sample_int = -1
        self._sample_fp = -1
        self._sample_run = 0

    # --------------------------------------------------------------- clocking
    def clock_edge(self, cycle: int, time: float) -> None:
        # Retirement is the per-instruction hot loop of the commit domain:
        # the can-commit visibility check, retirement bookkeeping
        # (rob.retire_head / regfile.free) and stats.record_commit are all
        # inlined below rather than paid as per-instruction calls.
        """Retire up to ``commit_width`` finished instructions in program order and sample occupancies."""
        rob = self.rob
        entries = rob._entries
        if entries and not entries[0].completed:
            # Head not even executed yet: a full stall cycle, skip the
            # retirement loop's setup entirely (matches the first-iteration
            # can_commit=False break below).
            self.commit_stall_cycles += 1
        elif entries:
            committed_this_cycle = 0
            stores = 0
            width = self.commit_width
            domain_name = self.domain_name
            fwd_cache = self._fwd_cache
            stats = self.stats
            regfile = self.regfile
            registers = regfile._registers
            while committed_this_cycle < width and entries:
                instr = entries[0]
                if instr.completed:
                    visible_at = instr.complete_time
                    exec_domain = instr.exec_domain
                    if exec_domain and exec_domain != domain_name:
                        extra = fwd_cache.get(exec_domain)
                        if extra is None:
                            extra = self.forwarding_latency(exec_domain,
                                                            domain_name)
                            fwd_cache[exec_domain] = extra
                        visible_at += extra
                    else:
                        extra = 0.0
                    can_commit = visible_at <= time
                else:
                    can_commit = False
                if not can_commit:
                    if committed_this_cycle == 0:
                        self.commit_stall_cycles += 1
                    break
                entries.popleft()
                rob.retirements += 1
                instr.commit_time = time
                # Completion had to cross back into the commit domain; that
                # wait is FIFO residency from the instruction's point of view.
                if extra > 0:
                    instr.fifo_time += extra
                prev_phys = instr.prev_phys_dest
                if prev_phys is not None:
                    # inline regfile.free (the reference implementation)
                    reg = registers[prev_phys]
                    if not reg.allocated:
                        raise ValueError(
                            f"double free of physical register {prev_phys}")
                    reg.allocated = False
                    reg.ready_time = _ALWAYS_READY
                    reg.producer_domain = ""
                    # any waiter still linked is squashed wrong-path work (a
                    # live consumer commits before its source is freed)
                    if reg.waiters:
                        reg.waiters.clear()
                    if reg.is_fp:
                        regfile._fp_in_use -= 1
                        regfile._free_fp.append(prev_phys)
                    else:
                        regfile._int_in_use -= 1
                        regfile._free_int.append(prev_phys)
                if instr.is_branch and instr.rename_checkpoint is not None:
                    self.rat.release_checkpoint(instr.rename_checkpoint)
                if instr.is_store and instr.trace.mem_address is not None:
                    self.memory.store_access(instr.trace.mem_address)
                    stores += 1
                self.committed += 1
                if stats is not None:
                    # inline stats.record_commit (the reference impl)
                    committed = stats.committed + 1
                    stats.committed = committed
                    key = instr.opclass.class_key
                    by_class = stats.committed_by_class
                    by_class[key] = by_class.get(key, 0) + 1
                    fetch_time = instr.fetch_time
                    if fetch_time >= 0:
                        stats.slip_sum += time - fetch_time
                    stats.fifo_time_sum += instr.fifo_time
                    if instr.is_branch:
                        stats.branches_committed += 1
                    stats.last_commit_time = time
                    if (committed == stats.commit_target
                            and stats.on_target is not None):
                        stats.on_target()
                committed_this_cycle += 1
            if committed_this_cycle:
                if stores:
                    self._dcache_cell[0] += stores
                self._regwrite_cell[0] += committed_this_cycle
        # inline _sample's run-extension fast path (unchanged occupancies)
        regfile = self.regfile
        if (len(entries) == self._sample_rob
                and regfile._int_in_use == self._sample_int
                and regfile._fp_in_use == self._sample_fp):
            self._sample_run += 1
        else:
            self._sample(time)

    def _sample(self, now: float) -> None:
        rob = self.rob
        occupancy = len(rob._entries)
        regfile = self.regfile
        int_in_use = regfile._int_in_use
        fp_in_use = regfile._fp_in_use
        if (occupancy == self._sample_rob and int_in_use == self._sample_int
                and fp_in_use == self._sample_fp):
            self._sample_run += 1
            return
        if self._sample_run:
            self.flush_samples()
        rob.occupancy_samples += 1
        rob.occupancy_accum += occupancy
        stats = self.stats
        if stats is not None:
            stats.occupancy_samples += 1
            stats.rob_occupancy_sum += occupancy
            stats.int_regs_in_use_sum += int_in_use
            stats.fp_regs_in_use_sum += fp_in_use
        self._sample_rob = occupancy
        self._sample_int = int_in_use
        self._sample_fp = fp_in_use

    def flush_samples(self) -> None:
        """Fold the deferred ROB/register occupancy run into the counters."""
        run = self._sample_run
        if run:
            self._sample_run = 0
            rob = self.rob
            rob.occupancy_samples += run
            rob.occupancy_accum += self._sample_rob * run
            stats = self.stats
            if stats is not None:
                stats.occupancy_samples += run
                stats.rob_occupancy_sum += self._sample_rob * run
                stats.int_regs_in_use_sum += self._sample_int * run
                stats.fp_regs_in_use_sum += self._sample_fp * run

    # ------------------------------------------------------------------ state
    def pending_work(self) -> int:
        """Instructions still in the ROB (drain check)."""
        return self.rob.occupancy
