"""Per-block activity counters.

Microarchitecture components record every access to a power-modelled block
("icache", "rename", "alu_int", ...) through a single shared
:class:`ActivityCounters` object.  The power accountant drains the per-cycle
counts at each clock-domain edge and turns them into energy; cumulative
counts remain available for reports and tests.

Storage is one mutable *cell* (a small list) per block: ``cell[0]`` is the
pending count for the current cycle of the block's clock domain, ``cell[1]``
the cumulative drained total.  Producers on the pipeline hot path hold a
direct reference to their block's cell (:meth:`ActivityCounters.cell`) and
increment ``cell[0]`` inline, and the power accountant's per-edge probe reads
the same cells without any dictionary lookup.  The accountant may extend a
cell with additional bookkeeping slots; only the first two are owned here.
"""

from __future__ import annotations

from typing import Dict, List


#: Cell layout: indices owned by the activity counters.
CELL_PENDING = 0
CELL_TOTAL = 1


class ActivityCounters:
    """Shared access counters, split into per-cycle (pending) and cumulative.

    ``record`` is called several times per pipeline stage per cycle, so it
    performs a single cell update: pending counts are folded into the
    cumulative totals when they are drained (or read), not on every record.
    """

    def __init__(self) -> None:
        self._cells: Dict[str, List] = {}

    def cell(self, block: str) -> List:
        """The mutable counter cell for ``block`` (created on first use).

        Hot-path producers cache the returned list and do ``cell[0] += n``
        directly; the cell identity is stable for the lifetime of the
        counters object.
        """
        found = self._cells.get(block)
        if found is None:
            found = self._cells[block] = [0, 0]
        return found

    def record(self, block: str, count: int = 1) -> None:
        """Record ``count`` accesses to ``block`` in the current cycle."""
        if count <= 0:
            if count == 0:
                return
            raise ValueError("access count must be non-negative")
        cell = self._cells.get(block)
        if cell is None:
            cell = self._cells[block] = [0, 0]
        cell[0] += count

    def drain(self, block: str) -> int:
        """Return and clear the pending (current-cycle) count for ``block``."""
        cell = self._cells.get(block)
        if cell is None:
            return 0
        count = cell[0]
        if count:
            cell[0] = 0
            cell[1] += count
        return count

    def pending(self, block: str) -> int:
        """Pending count without clearing (mainly for tests)."""
        cell = self._cells.get(block)
        return cell[0] if cell is not None else 0

    def total(self, block: str) -> int:
        """Cumulative access count for ``block`` (drained + still pending)."""
        cell = self._cells.get(block)
        return cell[0] + cell[1] if cell is not None else 0

    def totals(self) -> Dict[str, int]:
        """Copy of all cumulative counts (drained + still pending)."""
        return {block: cell[0] + cell[1]
                for block, cell in self._cells.items()
                if cell[0] or cell[1]}

    def reset(self) -> None:
        """Zero both the pending per-cycle and the total access counters."""
        for cell in self._cells.values():
            cell[0] = 0
            cell[1] = 0
