"""Register alias table (rename logic) with branch checkpoints.

Rename maps architectural registers onto the 72+72 physical registers
(Table 3).  Every conditional branch takes a checkpoint of the map so that a
misprediction can restore the front-end state instantly; the *timing* cost of
recovery is modelled elsewhere (the redirect has to reach the fetch domain,
which in the GALS machine means crossing a FIFO).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..isa.registers import FP_BASE as _FP_BASE
from ..isa.registers import ZERO_REG, is_fp_reg
from .instruction import DynamicInstruction
from .regfile import PhysicalRegisterFile

#: ready_time of an allocated-but-unproduced register (see regfile)
_PENDING = float("inf")


@dataclass
class RenameCheckpoint:
    """Snapshot of the alias table taken at a branch.

    ``mapping`` is the flat architectural->physical table: index = the
    architectural register id (the namespace is contiguous, see
    :mod:`repro.isa.registers`).
    """

    branch_seq: int
    mapping: List[int]


class RenameError(RuntimeError):
    """Raised on structural misuse of the rename logic."""


class RegisterAliasTable:
    """Architectural -> physical register map with checkpoint/restore."""

    def __init__(self, regfile: PhysicalRegisterFile) -> None:
        self.regfile = regfile
        # flat list indexed by architectural id: the namespace is contiguous
        # (0..63), so the rename/checkpoint hot paths use C-level list
        # indexing and copying instead of dict lookups
        initial = regfile.initial_mapping()
        self._map: List[int] = [initial[arch] for arch in range(len(initial))]
        self._checkpoints: List[RenameCheckpoint] = []
        # statistics
        self.renames = 0
        self.checkpoints_taken = 0
        self.restores = 0

    # ---------------------------------------------------------------- lookup
    def lookup(self, arch_reg: int) -> int:
        """Current physical register holding ``arch_reg``."""
        if 0 <= arch_reg < len(self._map):
            return self._map[arch_reg]
        raise RenameError(f"architectural register {arch_reg} has no mapping")

    def mapping_snapshot(self) -> Dict[int, int]:
        """Copy of the current architectural -> physical map."""
        return dict(enumerate(self._map))

    # ---------------------------------------------------------------- rename
    def rename(self, instr: DynamicInstruction) -> bool:
        """Rename ``instr`` in place.

        Returns False (leaving no side effects) when no physical register is
        available, in which case the caller must stall dispatch.  Runs once
        per dispatched instruction, so the allocation fast path of
        :class:`~repro.uarch.regfile.PhysicalRegisterFile` is inlined
        (``allocate`` stays the reference implementation).
        """
        # Source operands read the current map (direct access: the map always
        # covers the architectural registers, see initial_mapping()).
        # Specialised for the 0/1/2-source shapes of the ISA -- this runs
        # once per dispatched instruction.
        current_map = self._map
        trace = instr.trace
        sources = trace.sources
        num_sources = len(sources)
        if num_sources == 2:
            s0, s1 = sources
            if s0 == ZERO_REG:
                phys_sources = (() if s1 == ZERO_REG
                                else (current_map[s1],))
            elif s1 == ZERO_REG:
                phys_sources = (current_map[s0],)
            else:
                phys_sources = (current_map[s0], current_map[s1])
        elif num_sources == 1:
            s0 = sources[0]
            phys_sources = () if s0 == ZERO_REG else (current_map[s0],)
        elif num_sources == 0:
            phys_sources = ()
        else:
            phys_sources = tuple(current_map[src] for src in sources
                                 if src != ZERO_REG)
        new_phys: Optional[int] = None
        prev_phys: Optional[int] = None
        dest = trace.dest
        if dest is not None and dest != ZERO_REG:
            regfile = self.regfile
            for_fp = dest >= _FP_BASE    # inline is_fp_reg (hot path)
            free_list = regfile._free_fp if for_fp else regfile._free_int
            if not free_list:
                regfile.allocation_failures += 1
                return False
            new_phys = free_list.pop()
            reg = regfile._registers[new_phys]
            reg.allocated = True
            reg.ready_time = _PENDING
            reg.producer_domain = ""
            # reg.waiters is empty here: every free path (commit's inlined
            # free, regfile.free in recovery) clears it, so the event-wakeup
            # waiter list never carries links across an allocation
            if for_fp:
                regfile._fp_in_use += 1
            else:
                regfile._int_in_use += 1
            prev_phys = current_map[dest]
            current_map[dest] = new_phys
        instr.phys_sources = phys_sources
        instr.phys_dest = new_phys
        instr.prev_phys_dest = prev_phys
        self.renames += 1
        return True

    # ------------------------------------------------------------ checkpoints
    def take_checkpoint(self, branch_seq: int) -> RenameCheckpoint:
        """Snapshot the map for a conditional branch."""
        checkpoint = RenameCheckpoint(branch_seq=branch_seq,
                                      mapping=self._map.copy())
        self._checkpoints.append(checkpoint)
        self.checkpoints_taken += 1
        return checkpoint

    def release_checkpoint(self, checkpoint: RenameCheckpoint) -> None:
        """Discard a checkpoint once its branch has committed."""
        try:
            self._checkpoints.remove(checkpoint)
        except ValueError:
            pass  # already released by an earlier recovery

    def restore(self, checkpoint: RenameCheckpoint) -> None:
        """Roll the map back to ``checkpoint`` (misprediction recovery).

        All checkpoints younger than the restored one become invalid and are
        discarded.
        """
        if checkpoint not in self._checkpoints:
            raise RenameError("cannot restore an unknown or stale checkpoint")
        self._map = checkpoint.mapping.copy()
        # Drop this checkpoint and every younger one.
        position = self._checkpoints.index(checkpoint)
        self._checkpoints = self._checkpoints[:position]
        self.restores += 1

    @property
    def live_checkpoints(self) -> int:
        """Number of outstanding rename checkpoints (unresolved branches)."""
        return len(self._checkpoints)

    # ------------------------------------------------------------ statistics
    @property
    def int_mappings_beyond_arch(self) -> int:
        """How many integer arch registers map to a non-initial physical reg."""
        return sum(1 for arch, phys in enumerate(self._map)
                   if not is_fp_reg(arch) and phys != arch)
