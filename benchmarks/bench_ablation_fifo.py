"""Ablation: sensitivity of the GALS penalty to the FIFO interface design.

DESIGN.md calls out the mixed-clock FIFO latency as the central design choice
of the GALS machine (Section 3.2 of the paper argues for the Chelcea/Nowick
low-latency FIFO over conservative synchronizer-based interfaces and over
pausible clocking).  This ablation quantifies that choice: the GALS slowdown
grows steeply as the per-crossing synchronization latency rises.
"""

import pytest

from repro.async_comm.pausible import PausibleClockModel
from repro.core.config import ProcessorConfig
from repro.core.experiments import run_pair

#: figure-reproduction benchmarks are tier-2: heavy, skipped by tier-1
pytestmark = pytest.mark.slow


def _relative_performance(fifo_sync, forwarding_sync):
    config = ProcessorConfig(fifo_sync_cycles=fifo_sync,
                             forwarding_sync_cycles=forwarding_sync)
    row = run_pair("perl", num_instructions=800, config=config)
    return row.relative_performance


def test_ablation_fifo_latency(benchmark):
    low_latency = benchmark.pedantic(
        _relative_performance, args=(0, 0.5), rounds=1, iterations=1)
    default = _relative_performance(1, 1.0)
    conservative = _relative_performance(2, 2.0)

    print("\n=== Ablation: inter-domain synchronization latency (perl) ===")
    print(f"low-latency FIFO (0 sync cycles, 0.5 fwd): perf {low_latency:.3f}")
    print(f"default        (1 sync cycle,  1.0 fwd): perf {default:.3f}")
    print(f"conservative   (2 sync cycles, 2.0 fwd): perf {conservative:.3f}")

    assert low_latency > default > conservative
    # A conservative dual-flop interface more than doubles the GALS penalty.
    assert (1 - conservative) > 1.5 * (1 - default)


def test_ablation_pausible_clocking(benchmark):
    """The stretchable-clock alternative: with a transaction on essentially
    every cycle, the effective frequency is set by the communication rate
    (Section 3.2's argument for rejecting it in a processor pipeline)."""
    model = PausibleClockModel(nominal_period=1.0, stretch_per_transaction=0.75)

    slowdown_at_full_rate = benchmark(model.slowdown, 1.0)
    print("\n=== Ablation: pausible (stretchable) clocking ===")
    for rate in (0.0, 0.25, 0.5, 1.0):
        print(f"transactions/cycle {rate:.2f}: effective slowdown "
              f"{model.slowdown(rate):.2f}x")
    # at pipeline-like communication rates the clock is badly degraded,
    # far beyond the ~10% FIFO-based GALS penalty
    assert slowdown_at_full_rate > 1.5
