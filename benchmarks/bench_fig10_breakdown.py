"""Figure 10: energy breakdown into macro blocks (base vs GALS).

Paper result: the energy the GALS machine saves by dropping the global clock
grid is largely offset by the increased energy of the other blocks (longer run
time, fuller queues, more speculation) plus the FIFOs themselves.
"""

from repro.analysis import breakdown_table
from repro.core.experiments import run_pair
from repro.power.blocks import BREAKDOWN_CATEGORIES

from conftest import TIMED_INSTRUCTIONS

import pytest

#: figure-reproduction benchmarks are tier-2: heavy, skipped by tier-1
pytestmark = pytest.mark.slow


def test_fig10_energy_breakdown(benchmark, suite_rows):
    benchmark.pedantic(
        run_pair, args=("mpeg2",), kwargs={"num_instructions": TIMED_INSTRUCTIONS},
        rounds=1, iterations=1)

    perl = next(row for row in suite_rows if row.benchmark == "perl")
    base_energy = perl.base_result.energy
    gals_energy = perl.gals_result.energy

    print("\n=== Figure 10: energy breakdown by macro block (perl, "
          "normalised to base total) ===")
    print(breakdown_table(base_energy, gals_energy))

    # The base machine has a global clock slice of roughly 10 % of its energy.
    global_share = base_energy.category_share("Global clock")
    assert 0.05 < global_share < 0.20
    # The GALS machine has no global clock but does pay for FIFOs.
    assert gals_energy.by_category.get("Global clock", 0.0) == 0.0
    assert gals_energy.by_category.get("FIFOs", 0.0) > 0.0
    # Every non-clock category costs at least as much energy in GALS (longer
    # run time at the same voltage), which is what offsets the clock savings.
    grew = sum(
        1 for category in BREAKDOWN_CATEGORIES
        if category not in ("Global clock", "FIFOs", "Domain clocks")
        and gals_energy.by_category.get(category, 0.0)
        >= 0.95 * base_energy.by_category.get(category, 0.0))
    assert grew >= 8
