"""Per-block activity counters.

Microarchitecture components record every access to a power-modelled block
("icache", "rename", "alu_int", ...) through a single shared
:class:`ActivityCounters` object.  The power accountant drains the per-cycle
counts at each clock-domain edge and turns them into energy; cumulative
counts remain available for reports and tests.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict


class ActivityCounters:
    """Shared access counters, split into per-cycle (pending) and cumulative.

    ``record`` is called several times per pipeline stage per cycle, so it
    performs a single dictionary update: pending counts are folded into the
    cumulative totals when they are drained (or read), not on every record.
    """

    def __init__(self) -> None:
        self._pending: Dict[str, int] = defaultdict(int)
        self._totals: Dict[str, int] = defaultdict(int)

    def record(self, block: str, count: int = 1) -> None:
        """Record ``count`` accesses to ``block`` in the current cycle."""
        if count <= 0:
            if count == 0:
                return
            raise ValueError("access count must be non-negative")
        self._pending[block] += count

    def drain(self, block: str) -> int:
        """Return and clear the pending (current-cycle) count for ``block``."""
        count = self._pending.get(block, 0)
        if count:
            self._pending[block] = 0
            self._totals[block] += count
        return count

    def pending(self, block: str) -> int:
        """Pending count without clearing (mainly for tests)."""
        return self._pending.get(block, 0)

    def total(self, block: str) -> int:
        """Cumulative access count for ``block`` (drained + still pending)."""
        return self._totals.get(block, 0) + self._pending.get(block, 0)

    def totals(self) -> Dict[str, int]:
        """Copy of all cumulative counts (drained + still pending)."""
        merged = dict(self._totals)
        for block, count in self._pending.items():
            if count:
                merged[block] = merged.get(block, 0) + count
        return merged

    def reset(self) -> None:
        """Zero both the pending per-cycle and the total access counters."""
        self._pending.clear()
        self._totals.clear()
