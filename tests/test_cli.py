"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import main
from repro.core.scenario import ScenarioResult, run_scenario

SMALL = 200


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


# ----------------------------------------------------------------------- list
def test_list_everything(capsys):
    code, out, _ = run_cli(capsys, "list")
    assert code == 0
    assert "topologies:" in out
    assert "DVFS policies:" in out
    assert "workloads:" in out
    assert "scenarios:" in out
    assert "gals5" in out and "frontback2" in out
    assert "kernel:dot_product" in out


def test_list_single_section(capsys):
    code, out, _ = run_cli(capsys, "list", "topologies")
    assert code == 0
    assert "gals5" in out
    assert "DVFS policies:" not in out


def test_topology_describe(capsys):
    code, out, _ = run_cli(capsys, "topology", "fem3")
    assert code == 0
    assert "3 clock domain(s)" in out
    assert "mixed-clock FIFOs" in out


def test_show_scenario_is_valid_json(capsys):
    code, out, _ = run_cli(capsys, "show", "gals5-perl-fp3")
    assert code == 0
    payload = json.loads(out)
    assert payload["topology"] == "gals5"
    assert payload["policy"] == "perl-fp3"


# ------------------------------------------------------------------------ run
def test_run_scenario_prints_summary(capsys):
    code, out, _ = run_cli(capsys, "run", "frontback2",
                           "--instructions", str(SMALL))
    assert code == 0
    assert "frontback2" in out
    assert "instructions in" in out


def test_run_with_controller_prints_trace(capsys):
    code, out, _ = run_cli(capsys, "run", "gals5", "--controller", "occupancy",
                           "--instructions", str(SMALL))
    assert code == 0
    assert "per-epoch DVFS trace" in out


def test_run_switching_controller_drops_stale_args(capsys):
    # gals5-perl-pid stores pid constructor args; switching the controller
    # type on the command line must not feed them to the new constructor
    code, out, _ = run_cli(capsys, "run", "gals5-perl-pid",
                           "--controller", "occupancy",
                           "--instructions", str(SMALL))
    assert code == 0
    assert "controller=occupancy" in out


def test_list_controllers(capsys):
    code, out, _ = run_cli(capsys, "list", "controllers")
    assert code == 0
    for name in ("static", "interval", "occupancy", "pid"):
        assert name in out


def test_run_with_overrides_and_json_dump(tmp_path, capsys):
    dump = tmp_path / "result.json"
    code, out, _ = run_cli(
        capsys, "run", "gals5", "--workload", "gcc",
        "--instructions", str(SMALL), "--slowdown", "fp=2.0",
        "--config", "rob_entries=48", "--json", str(dump), "--quiet")
    assert code == 0
    reloaded = ScenarioResult.from_json(dump.read_text())
    assert reloaded.scenario.workload == "gcc"
    assert reloaded.scenario.slowdowns == {"fp": 2.0}
    assert reloaded.scenario.config == {"rob_entries": 48}
    # CLI result is bit-identical to the library running the same scenario
    direct = run_scenario(reloaded.scenario)
    assert direct.result == reloaded.result


def test_run_unknown_scenario_fails_cleanly(capsys):
    code, _, err = run_cli(capsys, "run", "no-such-scenario")
    assert code == 2
    assert "unknown scenario" in err


def test_run_bad_override_fails_cleanly():
    with pytest.raises(SystemExit, match="KEY=VALUE"):
        main(["run", "gals5", "--slowdown", "nonsense"])


def test_run_non_numeric_override_value_fails_cleanly(capsys):
    """A bad value must produce a clean error exit, not a raw traceback."""
    code, _, err = run_cli(capsys, "run", "gals5", "--slowdown", "fetch=abc")
    assert code == 2
    assert "error:" in err


def test_run_unknown_config_field_fails_cleanly(capsys):
    code, _, err = run_cli(capsys, "run", "gals5", "--config", "rob_size=64")
    assert code == 2
    assert "error:" in err


# ---------------------------------------------------------------------- sweep
def test_sweep_prints_table_and_writes_json(tmp_path, capsys):
    dump = tmp_path / "sweep.json"
    code, out, _ = run_cli(
        capsys, "sweep", "base", "gals5", "--jobs", "1",
        "--instructions", str(SMALL), "--json", str(dump))
    assert code == 0
    assert "scenario" in out and "IPC" in out
    rows = json.loads(dump.read_text())
    assert [row["scenario"]["name"] for row in rows] == ["base", "gals5"]
    assert all(row["result"]["committed_instructions"] == SMALL
               for row in rows)


def test_sweep_without_scenarios_errors(capsys):
    with pytest.raises(SystemExit):
        main(["sweep"])


# --------------------------------------------------------------------- report
def test_report_baseline_renders_tables(capsys):
    code, out, _ = run_cli(
        capsys, "report", "baseline", "--benchmarks", "perl",
        "--instructions", str(SMALL), "--jobs", "1")
    assert code == 0
    assert "Figure 5" in out
    assert "relative performance" in out
    assert "perl" in out


def test_report_dvfs_renders_table(capsys):
    code, out, _ = run_cli(
        capsys, "report", "dvfs", "--benchmark", "perl",
        "--policies", "perl-fp3", "--instructions", str(SMALL),
        "--jobs", "1")
    assert code == 0
    assert "perl/perl-fp3" in out


# ---------------------------------------------------------------- results cache
def test_run_with_cache_reports_hit_on_second_run(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    code, out, _ = run_cli(capsys, "run", "fem3", "--instructions", str(SMALL),
                           "--cache", "--cache-dir", cache)
    assert code == 0
    assert "computed in" in out and "cached" in out
    code, out, _ = run_cli(capsys, "run", "fem3", "--instructions", str(SMALL),
                           "--cache", "--cache-dir", cache)
    assert code == 0
    assert "served from cache" in out
    # cached and fresh CLI runs print identical summaries
    _, fresh_out, _ = run_cli(capsys, "run", "fem3",
                              "--instructions", str(SMALL))
    assert out.split("served from cache")[1].splitlines()[1:] \
        == fresh_out.splitlines()[1:]


def test_sweep_prints_status_and_hit_rate(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    code, out, _ = run_cli(capsys, "sweep", "base", "gals5", "--jobs", "1",
                           "--instructions", str(SMALL),
                           "--cache", "--cache-dir", cache)
    assert code == 0
    assert "computed" in out
    assert "cache: 0/2 hits (0%)" in out
    code, out, _ = run_cli(capsys, "sweep", "base", "gals5", "--jobs", "1",
                           "--instructions", str(SMALL),
                           "--cache", "--cache-dir", cache)
    assert code == 0
    assert "cache: 2/2 hits (100%)" in out
    assert out.count("cached") >= 2


def test_sweep_without_cache_still_prints_per_scenario_status(capsys):
    code, out, _ = run_cli(capsys, "sweep", "base", "--jobs", "1",
                           "--instructions", str(SMALL))
    assert code == 0
    assert "computed" in out
    assert "swept 1 scenario(s)" in out
    assert "hits" not in out  # no store involved, no hit-rate line


def test_cache_ls_gc_clear(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    code, out, _ = run_cli(capsys, "cache", "ls", "--cache-dir", cache)
    assert code == 0 and "(empty)" in out
    run_cli(capsys, "run", "base", "--instructions", str(SMALL),
            "--cache", "--cache-dir", cache, "--quiet")
    code, out, _ = run_cli(capsys, "cache", "ls", "--cache-dir", cache)
    assert code == 0
    assert "base" in out and "1 entry" in out and "ok" in out
    code, out, _ = run_cli(capsys, "cache", "gc", "--cache-dir", cache)
    assert code == 0 and "kept 1" in out
    code, out, _ = run_cli(capsys, "cache", "clear", "--cache-dir", cache)
    assert code == 0 and "removed 1 entry" in out
    code, out, _ = run_cli(capsys, "cache", "ls", "--cache-dir", cache)
    assert "(empty)" in out


def test_report_compare_renders_and_writes_json(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    dump = tmp_path / "compare.json"
    code, out, _ = run_cli(
        capsys, "report", "compare", "--topologies", "base", "gals5",
        "--instructions", str(SMALL), "--jobs", "1",
        "--cache-dir", cache, "--json", str(dump))
    assert code == 0
    assert "design-space compare" in out
    assert "rel ED2" in out
    payload = json.loads(dump.read_text())
    assert payload["instructions"] == SMALL
    assert {record["topology"] for record in payload["records"]} \
        == {"base", "gals5"}
    base_row = [r for r in payload["records"] if r["topology"] == "base"][0]
    assert base_row["rel_performance"] == 1.0
    # second invocation is served from the cache
    code, out, _ = run_cli(
        capsys, "report", "compare", "--topologies", "base", "gals5",
        "--instructions", str(SMALL), "--jobs", "1", "--cache-dir", cache)
    assert code == 0
    assert "2 from cache" in out


def test_report_compare_no_cache_bypasses_store(tmp_path, capsys):
    code, out, _ = run_cli(
        capsys, "report", "compare", "--topologies", "base",
        "--instructions", str(SMALL), "--jobs", "1", "--no-cache",
        "--cache-dir", str(tmp_path / "cache"))
    assert code == 0
    assert "0 from cache" in out
    assert not (tmp_path / "cache").exists()
