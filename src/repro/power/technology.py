"""Technology parameters for the power and voltage-scaling models.

The paper's DVFS experiments (Section 5.2) use the delay/voltage relationship
of Equation 1 with alpha = 1.6, "appropriate for today's 0.13 um devices"; the
base power models are Wattch-style switching-capacitance models.  This module
bundles the handful of process-level numbers everything else needs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class TechnologyParameters:
    """Process and operating-point parameters."""

    #: feature size in micrometres (documentation only)
    feature_size_um: float = 0.13
    #: nominal supply voltage in volts
    nominal_vdd: float = 1.5
    #: transistor threshold voltage in volts
    threshold_voltage: float = 0.35
    #: velocity-saturation exponent of Equation 1 (2.0 at 0.35 um,
    #: between 1 and 2 below that; the paper uses 1.6 for 0.13 um)
    alpha: float = 1.6
    #: nominal clock frequency in GHz (all clocks equal in experiment set 1)
    nominal_frequency_ghz: float = 1.0
    #: fraction of a block's full power consumed when it is idle
    #: (the paper models unused modules at 10 % of full power)
    idle_power_fraction: float = 0.10

    def __post_init__(self) -> None:
        if self.nominal_vdd <= self.threshold_voltage:
            raise ValueError("nominal Vdd must exceed the threshold voltage")
        if not 0 < self.alpha <= 2.5:
            raise ValueError("alpha outside the physically sensible range")
        if not 0 <= self.idle_power_fraction <= 1:
            raise ValueError("idle_power_fraction must be in [0, 1]")
        if self.nominal_frequency_ghz <= 0:
            raise ValueError("nominal frequency must be positive")

    @property
    def nominal_period_ns(self) -> float:
        """Clock period at the nominal frequency, in nanoseconds."""
        return 1.0 / self.nominal_frequency_ghz

    def with_alpha(self, alpha: float) -> "TechnologyParameters":
        """Copy with a different velocity-saturation exponent."""
        return replace(self, alpha=alpha)

    def with_frequency(self, frequency_ghz: float) -> "TechnologyParameters":
        """Copy with a different nominal clock frequency."""
        return replace(self, nominal_frequency_ghz=frequency_ghz)


#: The default 0.13 um operating point used throughout the reproduction.
DEFAULT_TECHNOLOGY = TechnologyParameters()

#: A 0.35 um operating point (alpha = 2), matching the technology Equation 1
#: is quoted for; useful for the voltage-scaling sensitivity studies.
TECH_0_35_UM = TechnologyParameters(feature_size_um=0.35, nominal_vdd=3.3,
                                    threshold_voltage=0.5, alpha=2.0,
                                    nominal_frequency_ghz=0.6)
