"""Physical register files and result-visibility tracking.

The processor of Table 3 has 72 physical integer registers and 72 physical
floating-point registers.  Besides allocation/freeing, the physical register
file is where cross-domain result forwarding latency is modelled: every
physical register remembers *when* and *in which clock domain* its value was
produced; a consumer in another domain observes readiness only after the
result has crossed the inter-domain FIFO (the paper's "latency in forwarding
results from one queue to another through FIFOs", Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..isa.registers import is_fp_reg

#: A value produced "at the beginning of time" (architectural state).
ALWAYS_READY = float("-inf")

_NEVER_READY = float("inf")


@dataclass(slots=True)
class PhysicalRegister:
    """Allocation and readiness state of one physical register."""

    index: int
    is_fp: bool
    allocated: bool = False
    ready_time: float = ALWAYS_READY
    producer_domain: str = ""
    #: event-driven wakeup: issue-queue entries blocked on this register's
    #: value.  The producer's writeback walks the list, decrements each
    #: waiter's not-ready operand count and moves fully awake entries onto
    #: their queue's age-ordered ready list (see IssueQueue.push_ready).
    #: Squashed entries are skipped lazily; ``free()`` clears the list.
    waiters: List = field(default_factory=list)


class PhysicalRegisterFile:
    """Integer + FP physical register files with free lists.

    Physical register ids are globally unique: integer registers occupy
    ``[0, num_int)`` and FP registers ``[num_int, num_int + num_fp)``.
    """

    def __init__(self, num_int: int = 72, num_fp: int = 72,
                 num_arch_int: int = 32, num_arch_fp: int = 32) -> None:
        if num_int < num_arch_int or num_fp < num_arch_fp:
            raise ValueError("physical register files must cover the architectural state")
        self.num_int = num_int
        self.num_fp = num_fp
        self.num_arch_int = num_arch_int
        self.num_arch_fp = num_arch_fp
        self._registers: List[PhysicalRegister] = (
            [PhysicalRegister(i, is_fp=False) for i in range(num_int)]
            + [PhysicalRegister(num_int + i, is_fp=True) for i in range(num_fp)]
        )
        # The first num_arch registers of each file hold the initial
        # architectural state and start out allocated and ready.
        self._free_int: List[int] = []
        self._free_fp: List[int] = []
        # incremental allocated-register counts (occupancy is sampled every
        # commit cycle, so counting per sample would be O(registers) each time)
        self._int_in_use = 0
        self._fp_in_use = 0
        for reg in self._registers:
            in_initial_map = ((not reg.is_fp and reg.index < num_arch_int) or
                              (reg.is_fp and reg.index - num_int < num_arch_fp))
            if in_initial_map:
                reg.allocated = True
                if reg.is_fp:
                    self._fp_in_use += 1
                else:
                    self._int_in_use += 1
            else:
                (self._free_fp if reg.is_fp else self._free_int).append(reg.index)
        # statistics
        #: reads counts explicit is_ready() probes only; the issue queue's
        #: inlined wakeup scan does not pass through it (see
        #: IssueQueue.ready_instructions -- wakeup traffic is tracked by
        #: IssueQueue.wakeup_searches instead)
        self.reads = 0
        #: writes counts produced results (mark_ready and the execution
        #: unit's inlined equivalent); it doubles as the wakeup-cache stamp
        self.writes = 0
        self.allocation_failures = 0

    # ----------------------------------------------------------- allocation
    def initial_mapping(self) -> Dict[int, int]:
        """Architectural -> physical map for the initial state."""
        mapping = {}
        for arch in range(self.num_arch_int):
            mapping[arch] = arch
        for arch in range(self.num_arch_fp):
            mapping[self.num_arch_int + arch] = self.num_int + arch
        return mapping

    def allocate(self, for_fp: bool) -> Optional[int]:
        """Allocate a free physical register, or None when the file is full."""
        free_list = self._free_fp if for_fp else self._free_int
        if not free_list:
            self.allocation_failures += 1
            return None
        index = free_list.pop()
        reg = self._registers[index]
        reg.allocated = True
        reg.ready_time = float("inf")
        reg.producer_domain = ""
        if for_fp:
            self._fp_in_use += 1
        else:
            self._int_in_use += 1
        return index

    def allocate_for_arch(self, arch_reg: int) -> Optional[int]:
        """Allocate a physical register in the file matching an arch register."""
        return self.allocate(for_fp=is_fp_reg(arch_reg))

    def free(self, index: int) -> None:
        """Return a physical register to its free list."""
        reg = self._registers[index]
        if not reg.allocated:
            raise ValueError(f"double free of physical register {index}")
        reg.allocated = False
        reg.ready_time = ALWAYS_READY
        reg.producer_domain = ""
        # Any waiter still linked here is squashed wrong-path work (a live
        # consumer always commits before its source register is freed);
        # clearing keeps the next allocation's waiter list pristine.
        if reg.waiters:
            reg.waiters.clear()
        if reg.is_fp:
            self._fp_in_use -= 1
            self._free_fp.append(index)
        else:
            self._int_in_use -= 1
            self._free_int.append(index)

    # -------------------------------------------------------------- readiness
    def mark_pending(self, index: int) -> None:
        """The register is allocated but its value has not been produced yet."""
        reg = self._registers[index]
        reg.ready_time = float("inf")
        reg.producer_domain = ""

    def mark_ready(self, index: int, time: float, domain: str) -> None:
        """Record that the value was produced at ``time`` in ``domain``.

        This is the event-driven wakeup source: the register's waiter list
        (issue-queue entries blocked on this value) is walked once, each
        live waiter's not-ready operand count drops by one, and entries
        whose last operand this was move onto their queue's age-ordered
        ready list.  Squashed waiters are dropped without a wakeup.
        """
        reg = self._registers[index]
        reg.ready_time = time
        reg.producer_domain = domain
        self.writes += 1
        waiters = reg.waiters
        if waiters:
            for waiter in waiters:
                if not waiter.squashed and waiter.pending_ops:
                    pending = waiter.pending_ops - 1
                    waiter.pending_ops = pending
                    if pending == 0:
                        queue = waiter.wakeup_queue
                        if queue is not None:
                            queue.push_ready(waiter)
            waiters.clear()

    def ready_time(self, index: int) -> float:
        """Absolute time the register's value is ready in its producing domain."""
        return self._registers[index].ready_time

    def producer_domain(self, index: int) -> str:
        """Clock domain that produces (or produced) the register's value."""
        return self._registers[index].producer_domain

    def is_ready(
        self,
        index: int,
        now: float,
        consumer_domain: str,
        forwarding_latency: Callable[[str, str], float],
    ) -> bool:
        """Is the value usable by ``consumer_domain`` at time ``now``?

        ``forwarding_latency(producer_domain, consumer_domain)`` returns the
        extra delay (ns) a result needs to become visible across domains; it is
        zero inside a domain and zero everywhere in the synchronous machine.
        """
        reg = self._registers[index]
        self.reads += 1
        ready_time = reg.ready_time
        if ready_time == ALWAYS_READY:
            return True
        if ready_time == _NEVER_READY:
            return False
        producer_domain = reg.producer_domain
        if producer_domain and producer_domain != consumer_domain:
            ready_time += forwarding_latency(producer_domain, consumer_domain)
        return ready_time <= now

    def visible_ready_time(
        self,
        index: int,
        consumer_domain: str,
        forwarding_latency: Callable[[str, str], float],
    ) -> float:
        """Absolute time the value becomes usable in ``consumer_domain``."""
        reg = self._registers[index]
        ready_time = reg.ready_time
        if ready_time == ALWAYS_READY or ready_time == _NEVER_READY:
            return ready_time
        producer_domain = reg.producer_domain
        if producer_domain and producer_domain != consumer_domain:
            ready_time += forwarding_latency(producer_domain, consumer_domain)
        return ready_time

    # ------------------------------------------------------------ statistics
    @property
    def int_in_use(self) -> int:
        """Allocated integer physical registers (paper: 'register allocation
        table occupancy' went from 15 to 24 for ijpeg)."""
        return self._int_in_use

    @property
    def fp_in_use(self) -> int:
        """Number of allocated FP physical registers."""
        return self._fp_in_use

    @property
    def free_int_count(self) -> int:
        """Number of free integer physical registers."""
        return len(self._free_int)

    @property
    def free_fp_count(self) -> int:
        """Number of free FP physical registers."""
        return len(self._free_fp)
