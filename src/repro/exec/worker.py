"""Store-coordinated sweep worker: ``python -m repro.exec.worker``.

One worker process drains the job queue of a results store: it scans
``<store root>/queue/`` for job files (one canonical scenario JSON each,
written by :class:`~repro.exec.backends.SubprocessBackend` or by hand),
claims individual jobs via the store's atomic *leased* claim files, runs the
claimed scenario through the single
:func:`~repro.core.scenario.run_scenario` path and publishes the result with
the store's atomic ``put()``.  Because the *only* coordination substrate is
the store directory, any number of workers -- on this machine or on other
hosts sharing the filesystem -- can drain the same queue without
double-computing or torn writes.

Failure handling is the point of this module:

* while computing, the worker **heartbeats** its claim
  (:meth:`~repro.results.store.ResultsStore.heartbeat_claim`); a worker that
  dies mid-job (SIGKILL, power loss) simply stops heartbeating, and after
  ``REPRO_CLAIM_TTL`` seconds any other worker breaks the expired lease and
  recomputes -- no job is ever wedged forever;
* failures are **classified**: infrastructure errors (``OSError``, a broken
  pool, a torn job file) are retried in place with exponential backoff and
  deterministic jitter up to ``--max-retries``, while deterministic
  simulation exceptions fail fast;
* a job that keeps failing is recorded as a ``<key>.err`` marker whose JSON
  carries the growing attempt count and, once given up on, is **quarantined**
  (the queue file moves to ``<store>/quarantine/jobs/``) -- a poison
  scenario stops one job, not the fleet.  The submitting parent computes
  quarantined jobs in-process, which re-raises the real exception with full
  context.

Usage::

    python -m repro.exec.worker --store /path/to/store [--exit-when-idle]
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time
import traceback
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..core.scenario import Scenario
from ..results.store import ResultsStore, temp_path_for
from .faults import inject, set_role

#: Queue directory name under the store root.
QUEUE_DIR = "queue"

#: Consecutive empty queue scans before an ``--exit-when-idle`` worker exits.
#: Scans that find queued-but-claimed jobs do *not* count as idle: the claim
#: holder may be dead, and its lease expiry would make the job claimable.
IDLE_SCANS = 3

#: Default bound on infrastructure-failure retries (mirrors
#: :class:`~repro.exec.config.ExecutionConfig.max_retries`).
DEFAULT_MAX_RETRIES = 3

#: Default backoff base delay in seconds.
DEFAULT_RETRY_BACKOFF = 0.05


def queue_dir(store: ResultsStore) -> Path:
    """The store's job-queue directory."""
    return store.root / QUEUE_DIR


def job_path(store: ResultsStore, key: str) -> Path:
    """Queue-file path of one job (keyed like the result it will produce)."""
    return queue_dir(store) / f"{key}.json"


def error_path(store: ResultsStore, key: str) -> Path:
    """Failure-marker path of one job (JSON: attempts, error, traceback)."""
    return queue_dir(store) / f"{key}.err"


def enqueue_job(store: ResultsStore, scenario: Scenario,
                key: Optional[str] = None) -> str:
    """Write one job file atomically (idempotent per key); returns the key."""
    if key is None:
        key = store.key_for(scenario)
    path = job_path(store, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    fault = inject("worker.enqueue")
    # host+pid+thread+serial-unique temp name (the store's own scheme): two
    # hosts sharing the store over NFS can collide on a bare pid
    temporary = temp_path_for(path)
    text = json.dumps({"key": key, "scenario": scenario.to_dict()}, indent=1)
    if fault is not None and fault.action == "torn":
        text = text[:len(text) // 2]
    temporary.write_text(text)
    os.replace(temporary, path)
    # a fresh submission supersedes any stale failure marker for the key
    withdraw_error(store, key)
    return key


def withdraw_job(store: ResultsStore, key: str) -> None:
    """Remove one job file (no-op when a worker already consumed it)."""
    try:
        job_path(store, key).unlink()
    except FileNotFoundError:
        pass


def withdraw_error(store: ResultsStore, key: str) -> None:
    """Remove one failure marker (no-op when absent)."""
    try:
        error_path(store, key).unlink()
    except FileNotFoundError:
        pass


def read_error(store: ResultsStore, key: str) -> Optional[Dict[str, Any]]:
    """Parse one failure marker; None when absent or unreadable."""
    try:
        payload = json.loads(error_path(store, key).read_text())
        return payload if isinstance(payload, dict) else None
    except (OSError, ValueError):
        return None


def write_error(store: ResultsStore, key: str, attempts: int, error: str,
                trace: str, infrastructure: bool, quarantined: bool) -> None:
    """Record (atomically) one job's failure state in its ``.err`` marker."""
    path = error_path(store, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    temporary = temp_path_for(path)
    temporary.write_text(json.dumps({
        "key": key, "attempts": attempts, "error": error,
        "traceback": trace, "infrastructure": infrastructure,
        "quarantined": quarantined,
        "updated": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }, indent=1))
    os.replace(temporary, path)


def pending_jobs(store: ResultsStore) -> List[Path]:
    """Job files currently queued, oldest key first (stable across workers)."""
    directory = queue_dir(store)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))


def _load_job(path: Path) -> Optional[Scenario]:
    """Parse one job file; None when it is torn/foreign (quarantine it)."""
    try:
        payload = json.loads(path.read_text())
        return Scenario.from_dict(payload["scenario"])
    except (OSError, ValueError, KeyError, TypeError):
        return None


class _ClaimHeartbeat:
    """Background thread refreshing one claim's lease while a job computes.

    Beats every quarter TTL, stops when the job finishes or the lease turns
    out to be broken (the claim file vanished under us: another worker
    decided we were dead -- publishing our result anyway is harmless, the
    store's puts are idempotent, but resurrecting the claim would not be).
    """

    def __init__(self, store: ResultsStore, key: str) -> None:
        self.store = store
        self.key = key
        self.interval = max(store.claim_ttl / 4.0, 0.05)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name=f"claim-heartbeat-{key[:8]}")

    def start(self) -> None:
        """Start beating."""
        self._thread.start()

    def stop(self) -> None:
        """Stop beating and reap the thread."""
        self._stop.set()
        self._thread.join(timeout=5)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            if inject("worker.heartbeat") is not None:
                continue  # injected stall: skip this beat
            if not self.store.heartbeat_claim(self.key):
                return  # lease broken by another worker: stop resurrecting it


def run_one(store: ResultsStore, owner: str = "",
            max_retries: int = DEFAULT_MAX_RETRIES,
            retry_backoff: float = DEFAULT_RETRY_BACKOFF) -> bool:
    """Claim and run at most one queued job; True when one was processed.

    Processing means: the job was claimed, computed (or found already
    published) and its queue file removed -- or it failed terminally and was
    quarantined with a ``.err`` marker.  False means nothing was claimable
    this scan (queue empty, or every remaining job is claimed by another
    worker whose lease is still live).
    """
    from .backends import (is_infrastructure_error, retry_delay,
                           timed_run_scenario)
    for path in pending_jobs(store):
        key = path.stem
        if store.entry_path(key).exists():
            # someone already published this job's result
            withdraw_job(store, key)
            continue
        marker = read_error(store, key)
        if marker is not None and marker.get("quarantined"):
            continue  # given up on; the submitting parent owns it now
        if not store.try_claim(key, owner=owner):
            continue
        heartbeat = _ClaimHeartbeat(store, key)
        heartbeat.start()
        try:
            if store.entry_path(key).exists():
                # published between the scan and the claim
                withdraw_job(store, key)
                return True
            inject("worker.claimed")  # injected death mid-claim (os._exit)
            scenario = _load_job(path)
            if scenario is None:
                # enqueue writes atomically, so an unparseable job file is
                # corruption, not a mid-write read: quarantine it
                write_error(store, key, attempts=1, error="torn job file",
                            trace="", infrastructure=True, quarantined=True)
                store.quarantine_file(path, kind="jobs",
                                      reason="torn job file")
                return True
            attempts = int(marker.get("attempts", 0)) if marker else 0
            while True:
                attempts += 1
                try:
                    outcome, seconds = timed_run_scenario(scenario)
                    store.put(outcome, wall_seconds=seconds)
                except Exception as exc:
                    infrastructure = is_infrastructure_error(exc)
                    write_error(store, key, attempts=attempts,
                                error=f"{type(exc).__name__}: {exc}",
                                trace=traceback.format_exc(),
                                infrastructure=infrastructure,
                                quarantined=False)
                    if infrastructure and attempts <= max_retries:
                        time.sleep(retry_delay(retry_backoff, attempts, key))
                        continue  # transient shape: try again, lease held
                    # poison scenario (deterministic failure) or retries
                    # exhausted: quarantine so the rest of the fleet moves on
                    write_error(store, key, attempts=attempts,
                                error=f"{type(exc).__name__}: {exc}",
                                trace=traceback.format_exc(),
                                infrastructure=infrastructure,
                                quarantined=True)
                    store.quarantine_file(
                        path, kind="jobs",
                        reason=f"{type(exc).__name__}: {exc} "
                               f"(after {attempts} attempt"
                               f"{'' if attempts == 1 else 's'})")
                    return True
                # success: a transient failure never leaves a lasting marker
                withdraw_error(store, key)
                withdraw_job(store, key)
                return True
        finally:
            heartbeat.stop()
            store.release_claim(key)
    return False


def drain(store: ResultsStore, poll_interval: float = 0.05,
          exit_when_idle: bool = False, owner: str = "",
          max_retries: int = DEFAULT_MAX_RETRIES,
          retry_backoff: float = DEFAULT_RETRY_BACKOFF) -> int:
    """Worker main loop; returns the number of jobs this worker processed.

    With ``exit_when_idle`` the loop ends after :data:`IDLE_SCANS`
    consecutive scans of a truly *empty* queue (the parent-driven sweep
    shape); without it the worker serves the queue indefinitely (the
    standing multi-host worker shape).  A scan that found queued jobs all
    claimed elsewhere counts as busy, not idle: the holder may be a dead
    worker whose lease is about to expire, and abandoning the queue then
    would orphan the job until the submitting parent's fallback.
    """
    processed = 0
    idle_scans = 0
    while True:
        if run_one(store, owner=owner, max_retries=max_retries,
                   retry_backoff=retry_backoff):
            processed += 1
            idle_scans = 0
            continue
        if any(read_error(store, path.stem) is None
               or not read_error(store, path.stem).get("quarantined")
               for path in pending_jobs(store)):
            idle_scans = 0  # claimed-but-pending jobs: busy-wait on leases
        else:
            idle_scans += 1
        if exit_when_idle and idle_scans >= IDLE_SCANS:
            return processed
        time.sleep(poll_interval)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point of one worker process."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec.worker",
        description="Drain a results store's sweep-job queue (claim jobs "
                    "via leased claim files, heartbeat while computing, "
                    "publish results atomically).")
    parser.add_argument("--store", required=True, metavar="PATH",
                        help="results-store root shared with the submitter")
    parser.add_argument("--poll-interval", type=float, default=0.05,
                        metavar="SECONDS",
                        help="sleep between empty queue scans (default 0.05)")
    parser.add_argument("--exit-when-idle", action="store_true",
                        help="exit after the queue stays empty for a few "
                             "scans instead of serving forever")
    parser.add_argument("--max-retries", type=int,
                        default=DEFAULT_MAX_RETRIES, metavar="N",
                        help="infrastructure-failure retries per job before "
                             f"quarantine (default {DEFAULT_MAX_RETRIES})")
    parser.add_argument("--retry-backoff", type=float,
                        default=DEFAULT_RETRY_BACKOFF, metavar="SECONDS",
                        help="exponential-backoff base delay "
                             f"(default {DEFAULT_RETRY_BACKOFF})")
    args = parser.parse_args(argv)
    set_role("worker")  # fault plans target workers without hitting parents
    store = ResultsStore(root=args.store)
    owner = f"{os.uname().nodename}:{os.getpid()}" if hasattr(os, "uname") \
        else str(os.getpid())
    processed = drain(store, poll_interval=args.poll_interval,
                      exit_when_idle=args.exit_when_idle, owner=owner,
                      max_retries=args.max_retries,
                      retry_backoff=args.retry_backoff)
    return 0 if processed >= 0 else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
