"""Figure 11 (and the perl case study of Section 5.2): selective slowdown.

Paper result: slowing the fetch and memory clocks by 10 % and the FP clock by
50 % "generically" (same policy for every application) saves energy and power
but costs a substantial ~18 % of performance -- so slowdown has to be applied
selectively, per application.  The perl-specific policy (FP clock / 3) costs
only ~9 % performance while cutting power by ~18 % and energy by ~11 %.
"""

from repro.analysis import dvfs_table
from repro.core.dvfs import GENERIC_SLOWDOWN
from repro.core.experiments import selective_slowdown

from conftest import TIMED_INSTRUCTIONS

import pytest

#: figure-reproduction benchmarks are tier-2: heavy, skipped by tier-1
pytestmark = pytest.mark.slow


def test_fig11_generic_and_perl_slowdown(benchmark, figure11_results):
    benchmark.pedantic(
        selective_slowdown, args=("perl", GENERIC_SLOWDOWN),
        kwargs={"num_instructions": TIMED_INSTRUCTIONS},
        rounds=1, iterations=1)

    print("\n=== Figure 11: generic slowdown (fetch -10%, mem -10%, FP -50%) "
          "plus the perl FP/3 case ===")
    print(dvfs_table(figure11_results, include_ideal=False))

    generic = [r for r in figure11_results if r.policy == "generic"]
    perl_fp3 = next(r for r in figure11_results if r.policy == "perl-fp3")

    # The generic policy costs performance on every benchmark and saves power.
    assert all(r.relative_performance < 1.0 for r in generic)
    assert all(r.relative_power < 1.0 for r in generic)
    mean_drop = sum(1 - r.relative_performance for r in generic) / len(generic)
    print(f"\nmean performance drop of the generic policy: {mean_drop:.1%} "
          f"(paper: ~18%)")
    assert 0.03 < mean_drop < 0.30

    # The application-specific perl policy is gentler on performance than the
    # generic one while still saving power (paper: -9% perf, -18% power).
    generic_perl = next(r for r in generic if r.benchmark == "perl")
    assert perl_fp3.relative_performance >= generic_perl.relative_performance
    assert perl_fp3.relative_power < 1.0
    assert perl_fp3.relative_energy < 1.02
    print(f"perl FP/3: perf {perl_fp3.relative_performance:.3f}, "
          f"energy {perl_fp3.relative_energy:.3f}, "
          f"power {perl_fp3.relative_power:.3f} "
          f"(paper: 0.91 / 0.89 / 0.82)")
