"""Macro-block energy models.

Each power-modelled block of the processor -- the macro blocks of Figure 10 --
is described by a :class:`BlockEnergyModel`: a per-access energy, the number
of accesses a fully-busy cycle performs (its "ports"), and whether the block
is conditionally clocked.  The per-cycle energy follows Wattch's
conditional-clocking style the paper adopts: an accessed block is charged in
proportion to its port utilisation, an idle block is charged 10 % of its full
power (clock gating and leakage overhead), and clock grids are never gated.

:func:`default_block_models` builds the block set for a given processor
configuration, scaling per-access energies with the configured structure
sizes through :mod:`repro.power.capacitance`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from . import capacitance
from .technology import DEFAULT_TECHNOLOGY, TechnologyParameters


@dataclass(frozen=True)
class BlockEnergyModel:
    """Energy behaviour of one macro block."""

    name: str
    #: energy per access at nominal Vdd, in nJ
    access_energy: float
    #: accesses per cycle when fully utilised
    ports: int = 1
    #: True for conditionally-clocked blocks (idle cost = idle fraction),
    #: False for always-on blocks (clock grids)
    gated: bool = True
    #: reporting category used by the Figure-10 style breakdown
    category: str = "core"

    def __post_init__(self) -> None:
        if self.access_energy < 0:
            raise ValueError(f"block {self.name!r}: negative access energy")
        if self.ports <= 0:
            raise ValueError(f"block {self.name!r}: ports must be positive")

    @property
    def full_cycle_energy(self) -> float:
        """Energy of a fully-utilised cycle at nominal Vdd (nJ)."""
        return self.access_energy * self.ports

    def cycle_energy(self, accesses: int, vdd: float,
                     tech: TechnologyParameters = DEFAULT_TECHNOLOGY) -> float:
        """Energy consumed in one cycle with ``accesses`` accesses at ``vdd``."""
        if accesses < 0:
            raise ValueError("accesses must be non-negative")
        full = self.full_cycle_energy
        if not self.gated:
            nominal = full
        elif accesses == 0:
            nominal = tech.idle_power_fraction * full
        else:
            utilisation = min(1.0, accesses / self.ports)
            utilisation = max(utilisation, tech.idle_power_fraction)
            nominal = full * utilisation
        return capacitance.scale_voltage(nominal, vdd, tech)


#: Reporting categories, in the order Figure 10 stacks them.
BREAKDOWN_CATEGORIES = (
    "Global clock",
    "Domain clocks",
    "Fetch/I-cache",
    "Branch predictor",
    "Decode",
    "Rename",
    "Register file",
    "Issue windows",
    "ALUs",
    "D-cache",
    "L2 cache",
    "Result bus",
    "FIFOs",
)


def default_block_models(
    *,
    int_issue_entries: int = 20,
    fp_issue_entries: int = 16,
    mem_issue_entries: int = 16,
    int_registers: int = 72,
    fp_registers: int = 72,
    il1_size: int = 16 * 1024,
    il1_assoc: int = 1,
    dl1_size: int = 16 * 1024,
    dl1_assoc: int = 4,
    l2_size: int = 256 * 1024,
    l2_assoc: int = 4,
    num_int_alus: int = 4,
    num_fp_alus: int = 4,
    machine_width: int = 4,
) -> Dict[str, BlockEnergyModel]:
    """Energy models for every conditionally-clocked block (no clock grids).

    Clock grids are registered separately by the power accountant because
    their energy is per clock cycle of a specific domain, not per access.
    """
    regfile_entries = int_registers + fp_registers
    regfile_energy = capacitance.regfile_access_energy(entries=regfile_entries)
    return {
        "icache": BlockEnergyModel(
            "icache",
            capacitance.array_access_energy(il1_size, il1_assoc),
            ports=1, category="Fetch/I-cache"),
        "bpred": BlockEnergyModel(
            "bpred",
            capacitance.array_access_energy(4 * 1024, 1) * 0.5,
            ports=machine_width, category="Branch predictor"),
        "decode": BlockEnergyModel(
            "decode", capacitance.decode_energy(), ports=machine_width,
            category="Decode"),
        "rename": BlockEnergyModel(
            "rename", capacitance.rename_energy(), ports=machine_width,
            category="Rename"),
        "regfile_read": BlockEnergyModel(
            "regfile_read", regfile_energy, ports=2 * machine_width,
            category="Register file"),
        "regfile_write": BlockEnergyModel(
            "regfile_write", regfile_energy, ports=machine_width,
            category="Register file"),
        "iq_int": BlockEnergyModel(
            "iq_int", capacitance.cam_access_energy(int_issue_entries),
            ports=2 * machine_width, category="Issue windows"),
        "iq_fp": BlockEnergyModel(
            "iq_fp", capacitance.cam_access_energy(fp_issue_entries) * 0.85,
            ports=2 * machine_width, category="Issue windows"),
        "iq_mem": BlockEnergyModel(
            "iq_mem", capacitance.cam_access_energy(mem_issue_entries) * 0.8,
            ports=2 * machine_width, category="Issue windows"),
        "alu_int": BlockEnergyModel(
            "alu_int", capacitance.alu_energy(is_fp=False), ports=num_int_alus,
            category="ALUs"),
        "alu_fp": BlockEnergyModel(
            "alu_fp", capacitance.alu_energy(is_fp=True), ports=num_fp_alus,
            category="ALUs"),
        "dcache": BlockEnergyModel(
            "dcache", capacitance.array_access_energy(dl1_size, dl1_assoc),
            ports=2, category="D-cache"),
        "l2": BlockEnergyModel(
            "l2", capacitance.array_access_energy(l2_size, l2_assoc) * 0.5,
            ports=1, category="L2 cache"),
        "resultbus": BlockEnergyModel(
            "resultbus", capacitance.result_bus_energy(), ports=machine_width,
            category="Result bus"),
        "fifo": BlockEnergyModel(
            "fifo", capacitance.fifo_transfer_energy(), ports=4 * machine_width,
            category="FIFOs"),
    }


def global_clock_block() -> BlockEnergyModel:
    """The chip-wide global clock grid (synchronous base processor only)."""
    return BlockEnergyModel("global_clock",
                            capacitance.global_clock_grid_energy(),
                            ports=1, gated=False, category="Global clock")


def local_clock_block(domain: str) -> BlockEnergyModel:
    """One clock domain's local (major-clock) grid."""
    return BlockEnergyModel(f"clock_{domain}",
                            capacitance.local_clock_grid_energy(domain),
                            ports=1, gated=False, category="Domain clocks")
