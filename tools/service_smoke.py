#!/usr/bin/env python3
"""CI smoke test for the ``repro serve`` results service.

Drives the service exactly the way the acceptance contract describes,
end to end through real processes:

1. pre-warm a temporary store with one scenario via ``repro run --cache``;
2. start ``repro serve`` (ephemeral port, serial backend) against it;
3. query the warm scenario -- must answer *200* immediately (no recompute)
   with a body byte-identical to the ``repro run --json`` artifact;
4. query a cold scenario -- must answer *202 Accepted*, then converge to
   *200* with a body byte-identical to a fresh local ``repro run --json``
   of the same scenario (the service converted the miss into a stored
   result).

Exits nonzero (with a diagnostic on stderr) on the first violated
expectation.  Usage::

    python tools/service_smoke.py [--instructions N] [--timeout SECONDS]
"""

import argparse
import json
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.parse
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CLI = [sys.executable, "-m", "repro"]


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def run_cli(*argv: str) -> None:
    subprocess.run([*CLI, *argv], check=True, cwd=REPO)


def get(url: str):
    """GET one URL; returns (status code, body bytes) without raising."""
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--instructions", type=int, default=300)
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="overall deadline for the cold query to "
                             "converge (default: 120)")
    args = parser.parse_args()
    n = args.instructions

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as temp:
        store = Path(temp) / "store"
        warm_json = Path(temp) / "warm.json"
        fresh_json = Path(temp) / "fresh.json"

        print(f"[1/4] pre-warming store {store} ...", flush=True)
        run_cli("run", "base", "--instructions", str(n), "--quiet",
                "--cache", "--cache-dir", str(store), "--json",
                str(warm_json))

        print("[2/4] starting repro serve ...", flush=True)
        server = subprocess.Popen(
            [*CLI, "serve", "--port", "0", "--cache-dir", str(store),
             "--job-backend", "serial", "--poll-interval", "0.05",
             "--quiet"],
            cwd=REPO, stdout=subprocess.PIPE, text=True)
        try:
            handshake = server.stdout.readline()
            if "http://" not in handshake:
                fail(f"no service URL in startup line: {handshake!r}")
            url = next(token for token in handshake.split()
                       if token.startswith("http://"))
            print(f"      service up at {url}", flush=True)

            code, _body = get(f"{url}/health")
            if code != 200:
                fail(f"/health answered {code}, expected 200")

            print("[3/4] warm query must hit without recompute ...",
                  flush=True)
            query = urllib.parse.urlencode(
                {"name": "base", "num_instructions": n})
            code, body = get(f"{url}/scenario?{query}")
            if code != 200:
                fail(f"warm query answered {code}, expected 200")
            if body != warm_json.read_bytes():
                fail("warm body differs from the repro run --json artifact")
            print("      200, byte-identical to repro run --json", flush=True)

            print("[4/4] cold query must 202 then converge to 200 ...",
                  flush=True)
            query = urllib.parse.urlencode(
                {"name": "base", "num_instructions": n, "seed": 9})
            code, body = get(f"{url}/scenario?{query}")
            if code != 202:
                fail(f"cold query answered {code}, expected 202")
            if json.loads(body).get("status") != "pending":
                fail(f"cold reply body is not pending: {body!r}")
            deadline = time.monotonic() + args.timeout
            while True:
                code, body = get(f"{url}/scenario?{query}")
                if code == 200:
                    break
                if code != 202:
                    fail(f"poll answered {code}, expected 202/200")
                if time.monotonic() > deadline:
                    fail("cold query never converged to 200")
                time.sleep(0.2)
            # the service's computation must match a fresh local run bit
            # for bit (same scenario, independent process)
            run_cli("run", "base", "--instructions", str(n), "--seed", "9",
                    "--quiet", "--no-cache", "--json", str(fresh_json))
            if body != fresh_json.read_bytes():
                fail("converged body differs from a fresh repro run --json")
            print("      202 -> 200, byte-identical to a fresh local run",
                  flush=True)
        finally:
            server.terminate()
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()

    print("service smoke: OK", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
