"""Kernelized engine hot core with interchangeable backends.

The simulation hot core -- clock-wheel run loop, clock-edge ticks,
mixed-clock FIFO synchronizer math, event-wakeup waiter walk -- lives in
:mod:`repro.kernel.reference`, a compile-friendly pure-Python module that is
both the default implementation and the source the optional ahead-of-time
compiled backend is built from (``tools/build_kernel.py``; a hand-written C
translation is bundled for hosts with a C compiler but neither mypyc nor
Cython).

Backend selection::

    ProcessorConfig(backend="auto" | "pure" | "compiled")
    REPRO_BACKEND=pure|compiled      # honoured when backend is "auto"

``"auto"`` follows ``REPRO_BACKEND`` and otherwise picks ``"pure"``;
``"compiled"`` degrades gracefully to the reference when no compiled artifact
is importable (or its :data:`KERNEL_API_VERSION` does not match), so a
checkout without a built extension behaves identically everywhere.  The two
backends are bit-identical by contract -- same event order, same
``SimulationResult``, same results-store cache keys -- pinned by the
differential suite in ``tests/test_kernel_backends.py``.
"""

import os

from .reference import KERNEL_API_VERSION

#: Environment variable consulted by the ``"auto"`` backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Accepted values for ``ProcessorConfig.backend`` / ``--backend``.
BACKENDS = ("auto", "pure", "compiled")

#: Resolved Kernel instances, one per concrete backend name.
_KERNELS = {}


class Kernel:
    """The resolved hot-core entry points for one backend.

    Attributes mirror the reference module's API: ``run_wheel`` (the engine's
    clock-wheel segment loop), ``wake_waiters`` (event-wakeup writeback
    walk), ``sync_visible_at`` (FIFO synchronizer edge mapping) and
    ``fifo_class`` (the :class:`MixedClockFifo` subclass the processor
    instantiates for cross-domain channels).  Instances are stateless and
    picklable (functions resolve by module reference), so configs and
    scenarios carrying a backend survive ``spawn``-platform worker pools.
    """

    __slots__ = ("name", "compiled", "run_wheel", "wake_waiters",
                 "sync_visible_at", "fifo_class")

    def __init__(self, name, compiled, run_wheel, wake_waiters,
                 sync_visible_at, fifo_class):
        self.name = name
        self.compiled = compiled
        self.run_wheel = run_wheel
        self.wake_waiters = wake_waiters
        self.sync_visible_at = sync_visible_at
        self.fifo_class = fifo_class

    def __reduce__(self):
        """Pickle by backend name: workers re-resolve against their own build."""
        return (get_kernel, (self.name,))

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Kernel(name={self.name!r}, compiled={self.compiled})"


def load_compiled():
    """The compiled extension module, or None when absent or ABI-mismatched."""
    try:
        from . import _ckernel
    except ImportError:
        return None
    if getattr(_ckernel, "KERNEL_API_VERSION", None) != KERNEL_API_VERSION:
        return None
    return _ckernel


def compiled_available():
    """True when a usable compiled kernel artifact is importable."""
    return load_compiled() is not None


def available_backends():
    """Concrete backends importable right now (always includes ``pure``)."""
    names = ["pure"]
    if compiled_available():
        names.append("compiled")
    return names


def resolve_backend(requested="auto"):
    """Map a requested backend name to the concrete one that will run.

    ``"auto"`` (or None) consults :data:`BACKEND_ENV_VAR` and defaults to
    ``"pure"``; ``"compiled"`` falls back to ``"pure"`` when no usable
    artifact is importable (graceful degradation).  Unknown names raise
    ``ValueError``.
    """
    if requested is None or requested == "auto":
        requested = os.environ.get(BACKEND_ENV_VAR, "").strip() or "pure"
        if requested == "auto":
            requested = "pure"
    if requested not in ("pure", "compiled"):
        raise ValueError(
            f"unknown kernel backend {requested!r}; known: {BACKENDS}")
    if requested == "compiled" and not compiled_available():
        return "pure"
    return requested


def get_kernel(backend="auto"):
    """The :class:`Kernel` for ``backend`` (resolved, cached, degraded)."""
    name = resolve_backend(backend)
    kernel = _KERNELS.get(name)
    if kernel is None:
        kernel = _make_kernel(name)
        _KERNELS[name] = kernel
    return kernel


def _make_kernel(name):
    """Assemble the Kernel record for a concrete backend name."""
    # Imported lazily: fifo -> sim.clock -> kernel.reference must stay
    # cycle-free, so this package's top level imports nothing from the rest
    # of the library.
    from . import reference
    from ..async_comm.fifo import MixedClockFifo
    if name == "compiled":
        ckernel = load_compiled()
        from .cfifo import CompiledMixedClockFifo
        return Kernel("compiled", True, ckernel.run_wheel,
                      ckernel.wake_waiters, ckernel.sync_visible_at,
                      CompiledMixedClockFifo)
    return Kernel("pure", False, reference.run_wheel, reference.wake_waiters,
                  reference.sync_visible_at, MixedClockFifo)


__all__ = [
    "BACKENDS",
    "BACKEND_ENV_VAR",
    "KERNEL_API_VERSION",
    "Kernel",
    "available_backends",
    "compiled_available",
    "get_kernel",
    "load_compiled",
    "resolve_backend",
]
