"""CI perf-regression gate over BENCH_sim_core.json.

Compares the newest benchmark record (the one ``bench_sim_core.py`` just
appended) against the previous one -- the last entry committed to the
repository -- and fails when any tracked throughput metric regressed by more
than the threshold (default 25 %, generous enough to absorb CI-runner noise
while still catching a real hot-path regression).

Tracked metrics: full-run instructions/sec (gals and base machines, the
occupancy-controller gals5 run, the non-paper fem3 topology, the oscillating
``phased:intfp-osc`` workload, and the replicated-cluster cluster2 machine)
and engine-alone events/sec (clock-wheel scheduler, mixed and uniform
periods).
Metrics missing from an older record (e.g. the controller/fem3 runs added in
the deferred-telemetry PR, or the warm-start ``sweep_warm`` key) are reported
and skipped, not failed.  Records from different CPython minor series (the
``python_minor`` tag, derived from the full version string for older records)
never gate each other: interpreter generations shift the profile too much for
even the seed-normalised ratios to be comparable.  Records from different
engine kernel backends (the ``backend`` tag; records predating it are
implicitly "pure") never gate each other either -- a compiled-kernel number
would both sail past any pure baseline and mask a genuine pure-path
regression.  The baseline is therefore the most recent older *full* record
from the same minor series **and** the same backend; smoke-tagged records
(CI quick checks appended with ``--smoke --append``) document a point in the
trajectory but are never used as baselines.  No such record: nothing to
gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_sim_core.py        # append record
    python benchmarks/check_bench_regression.py [--threshold 0.25]

Exit status 1 on regression, 0 otherwise.
"""

import argparse
import json
import sys
from pathlib import Path

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_sim_core.json"


def _engine(record, label, key):
    return float(record["engine_events_per_sec"][label][key])


def _instr(record, kind):
    return float(record["full_run"][kind]["instr_per_sec"])


def _sweep(record):
    return float(record["sweep_warm"]["instr_per_sec"])


def _minor(record):
    """The record's CPython minor series ('3.11'), or None when unknown.

    Newer records carry an explicit ``python_minor`` tag; for records that
    predate it, derive the series from the full ``python`` version string.
    """
    tag = record.get("python_minor")
    if tag:
        return str(tag)
    version = str(record.get("python", ""))
    parts = version.split(".")
    if len(parts) >= 2 and parts[0].isdigit() and parts[1].isdigit():
        return f"{parts[0]}.{parts[1]}"
    return None


def _backend(record):
    """The engine kernel backend that produced the record.

    Newer records carry an explicit ``backend`` tag; every record from
    before the kernelized-core PR was measured on the pure-Python path.
    """
    return str(record.get("backend") or "pure")


#: Metrics gated when baseline and current ran on the same machine+python:
#: raw throughput, directly comparable.
ABSOLUTE_METRICS = (
    ("gals instr/s", lambda r: _instr(r, "gals")),
    ("base instr/s", lambda r: _instr(r, "base")),
    ("gals+controller instr/s", lambda r: _instr(r, "gals_controller")),
    ("fem3 instr/s", lambda r: _instr(r, "fem3")),
    ("phased_osc instr/s", lambda r: _instr(r, "phased_osc")),
    ("cluster2 instr/s", lambda r: _instr(r, "cluster2")),
    ("sweep_warm instr/s", _sweep),
    ("engine mixed ev/s", lambda r: _engine(r, "mixed", "wheel")),
    ("engine uniform ev/s", lambda r: _engine(r, "uniform", "wheel")),
)

#: Metrics gated across different machines (e.g. a CI runner vs the record
#: committed from a dev box): each value is normalised by the *same run's*
#: live embedded-seed-engine throughput, which scales with the host's
#: single-core Python speed -- so the ratio tracks code changes, not
#: hardware.
RELATIVE_METRICS = (
    ("gals instr per seed-ev",
     lambda r: _instr(r, "gals") / _engine(r, "mixed", "seed_engine_live")),
    ("base instr per seed-ev",
     lambda r: _instr(r, "base") / _engine(r, "mixed", "seed_engine_live")),
    ("gals+controller instr per seed-ev",
     lambda r: (_instr(r, "gals_controller")
                / _engine(r, "mixed", "seed_engine_live"))),
    ("fem3 instr per seed-ev",
     lambda r: _instr(r, "fem3") / _engine(r, "mixed", "seed_engine_live")),
    ("phased_osc instr per seed-ev",
     lambda r: (_instr(r, "phased_osc")
                / _engine(r, "mixed", "seed_engine_live"))),
    ("cluster2 instr per seed-ev",
     lambda r: (_instr(r, "cluster2")
                / _engine(r, "mixed", "seed_engine_live"))),
    ("sweep_warm instr per seed-ev",
     lambda r: _sweep(r) / _engine(r, "mixed", "seed_engine_live")),
    ("mixed wheel/seed speedup",
     lambda r: (_engine(r, "mixed", "wheel")
                / _engine(r, "mixed", "seed_engine_live"))),
    ("uniform wheel/seed speedup",
     lambda r: (_engine(r, "uniform", "wheel")
                / _engine(r, "uniform", "seed_engine_live"))),
)


def check(history, threshold):
    """Return (lines, regressed) comparing the last record to its baseline."""
    if len(history) < 2:
        return ["fewer than two benchmark records; nothing to compare"], False
    current = history[-1]
    cur_minor = _minor(current)
    cur_backend = _backend(current)
    # Different CPython minor series optimise this workload differently
    # enough (specialising interpreter, comprehension inlining, ...) that
    # even the seed-normalised ratios drift; cross-minor records document a
    # version's throughput but never gate each other.  The same goes for
    # different kernel backends: compiled-vs-pure is an implementation swap,
    # not a code-path regression signal.  The baseline is the most recent
    # older full (non-smoke) record from the *same* interpreter series and
    # the *same* backend.
    baseline = next((record for record in reversed(history[:-1])
                     if _minor(record) == cur_minor
                     and _backend(record) == cur_backend
                     and not record.get("smoke")), None)
    if baseline is None:
        return [f"no earlier full record from CPython {cur_minor or '?'} "
                f"with the {cur_backend!r} backend (cross-minor and "
                "cross-backend records are not comparable); nothing to "
                "gate"], False
    same_host = (baseline.get("machine") == current.get("machine")
                 and baseline.get("python") == current.get("python"))
    metrics = ABSOLUTE_METRICS if same_host else RELATIVE_METRICS
    mode = ("same host: raw throughput" if same_host
            else "different host/python: seed-normalised ratios")
    lines = [f"baseline: {baseline.get('timestamp', '?')}  "
             f"current: {current.get('timestamp', '?')}  "
             f"[{cur_backend} backend]  "
             f"(threshold: -{threshold:.0%}; {mode})"]
    regressed = False
    for label, extract in metrics:
        try:
            was, now = extract(baseline), extract(current)
        except (KeyError, TypeError, ValueError, ZeroDivisionError):
            lines.append(f"  {label:<34} missing from a record; skipped")
            continue
        change = now / was - 1.0 if was else 0.0
        bad = change < -threshold
        regressed |= bad
        verdict = "REGRESSION" if bad else "ok"
        lines.append(f"  {label:<34} {was:>12,.2f} -> {now:>12,.2f}  "
                     f"{change:+7.1%}  {verdict}")
    return lines, regressed


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="maximum tolerated fractional slowdown "
                             "(default: 0.25)")
    parser.add_argument("--bench-file", type=Path, default=BENCH_FILE)
    args = parser.parse_args(argv)

    try:
        history = json.loads(args.bench_file.read_text())
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.bench_file}: {exc}", file=sys.stderr)
        return 2
    if not isinstance(history, list):
        history = [history]

    lines, regressed = check(history, args.threshold)
    print("\n".join(lines))
    if regressed:
        print(f"\nperformance regressed by more than {args.threshold:.0%} "
              "vs the last recorded run", file=sys.stderr)
        return 1
    print("\nno regression beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
