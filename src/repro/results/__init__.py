"""Persistent, content-addressed store of scenario results.

The package memoizes the single scenario run path on disk: results are keyed
by a canonical hash of the scenario JSON plus a fingerprint of the
simulation-relevant source tree, so identical runs are served from cache
bit-identically and any code or override change invalidates cleanly.  See
:mod:`repro.results.store` for the store, :mod:`repro.results.fingerprint`
for the invalidation scheme and :mod:`repro.results.runner` for resumable
cache-aware sweeps.
"""

from .fingerprint import (SIMULATION_PACKAGES, code_fingerprint,
                          fingerprint_details, source_tree_digest)
from .runner import (SweepRun, hit_rate, resume_sweep, run_cached,
                     timed_run_scenario)
from .store import (CACHE_DIR_ENV_VAR, CacheEntry, GcStats, ResultsStore,
                    cache_key, canonical_scenario_dict, default_cache_dir,
                    resolve_store)

__all__ = [
    "CACHE_DIR_ENV_VAR",
    "CacheEntry",
    "GcStats",
    "ResultsStore",
    "SIMULATION_PACKAGES",
    "SweepRun",
    "cache_key",
    "canonical_scenario_dict",
    "code_fingerprint",
    "default_cache_dir",
    "fingerprint_details",
    "hit_rate",
    "resolve_store",
    "resume_sweep",
    "run_cached",
    "source_tree_digest",
    "timed_run_scenario",
]
