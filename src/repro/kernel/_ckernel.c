/* Compiled kernel backend: hand-written C translation of reference.py.
 *
 * This extension module exports the same API as repro.kernel.reference --
 * run_wheel(), wake_waiters(), sync_visible_at(), KERNEL_API_VERSION -- and
 * is bit-identical to it by construction: every operation below mirrors the
 * corresponding Python operation (list comparison for chain ordering,
 * list.sort() for the rotation, truthiness tests, the exact IEEE-754
 * operation order of the synchronizer edge mapping).  The differential suite
 * in tests/test_kernel_backends.py pins the equivalence.
 *
 * tools/build_kernel.py compiles this file when neither mypyc nor Cython is
 * available; repro.kernel.load_compiled() only imports the artifact when
 * KERNEL_API_VERSION matches the reference, so stale builds degrade
 * gracefully to pure Python.
 *
 * Chain records are the 9-element lists documented in repro.sim.event
 * (indices used literally: 0=time, 1=priority, 2=seq, 3=callback, 4=param,
 * 5=period, 8=cancelled).
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>

#define REPRO_KERNEL_API_VERSION 1

/* interned attribute/method names (created in module init) */
static PyObject *str__now;
static PyObject *str_push_ready;
static PyObject *str_squashed;
static PyObject *str_pending_ops;
static PyObject *str_wakeup_queue;

/* ------------------------------------------------------------- helpers */

/* Truthiness with the common singletons short-circuited; -1 on error. */
static int
obj_is_true(PyObject *obj)
{
    if (obj == Py_True)
        return 1;
    if (obj == Py_False || obj == Py_None)
        return 0;
    return PyObject_IsTrue(obj);
}

/* min(wheel) with Python semantics (first minimal element wins on ties,
 * list lexicographic comparison).  Returns a new reference, NULL on error. */
static PyObject *
wheel_min(PyObject *wheel)
{
    Py_ssize_t size = PyList_GET_SIZE(wheel);
    PyObject *best;
    Py_ssize_t i;

    if (size == 0) {
        PyErr_SetString(PyExc_ValueError, "min() arg is an empty sequence");
        return NULL;
    }
    best = PyList_GET_ITEM(wheel, 0);
    Py_INCREF(best);
    for (i = 1; i < PyList_GET_SIZE(wheel); i++) {
        PyObject *item = PyList_GET_ITEM(wheel, i);
        int lt = PyObject_RichCompareBool(item, best, Py_LT);
        if (lt < 0) {
            Py_DECREF(best);
            return NULL;
        }
        if (lt) {
            Py_INCREF(item);
            Py_DECREF(best);
            best = item;
        }
    }
    return best;
}

/* events_cell[0] = events_done  (unconditional).  0 on success. */
static int
store_events(PyObject *cell, long long events_done)
{
    PyObject *value = PyLong_FromLongLong(events_done);
    if (value == NULL)
        return -1;
    return PyList_SetItem(cell, 0, value); /* steals value */
}

/* if events_done > events_cell[0]: events_cell[0] = events_done */
static int
store_events_if_greater(PyObject *cell, long long events_done)
{
    PyObject *current = PyList_GET_ITEM(cell, 0);
    long long have = PyLong_AsLongLong(current);
    if (have == -1 && PyErr_Occurred())
        return -1;
    if (events_done > have)
        return store_events(cell, events_done);
    return 0;
}

/* cell[0] = value (borrowed; a new reference is taken).  0 on success. */
static int
store_cell(PyObject *cell, PyObject *value)
{
    Py_INCREF(value);
    return PyList_SetItem(cell, 0, value); /* steals */
}

/* ------------------------------------------------------------ run_wheel */

static PyObject *
run_wheel(PyObject *module, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *engine, *horizon, *until, *stop_condition, *max_events;
    long long processed, events_done;
    PyObject *queue = NULL, *wheel = NULL, *stop = NULL, *events_cell = NULL;
    PyObject *current_cell = NULL, *version_cell = NULL, *sequence = NULL;
    PyObject *discard_chain = NULL, *rotation = NULL, *wheel_version = NULL;
    PyObject *chain = NULL, *time = NULL;
    double event_limit = 0.0;
    int has_limit, has_stop_condition, finished = 0;
    Py_ssize_t wheel_size, index = 0;

    if (nargs != 6) {
        PyErr_SetString(PyExc_TypeError,
                        "run_wheel expects exactly 6 arguments");
        return NULL;
    }
    engine = args[0];
    horizon = args[1];
    until = args[2];
    stop_condition = args[3];
    max_events = args[4];
    processed = PyLong_AsLongLong(args[5]);
    if (processed == -1 && PyErr_Occurred())
        return NULL;

    queue = PyObject_GetAttrString(engine, "_queue");
    wheel = PyObject_GetAttrString(engine, "_wheel");
    stop = PyObject_GetAttrString(engine, "_stop");
    events_cell = PyObject_GetAttrString(engine, "_events");
    current_cell = PyObject_GetAttrString(engine, "_current");
    version_cell = PyObject_GetAttrString(engine, "_wheel_state");
    sequence = PyObject_GetAttrString(engine, "_sequence");
    discard_chain = PyObject_GetAttrString(engine, "_discard_chain");
    if (queue == NULL || wheel == NULL || stop == NULL || events_cell == NULL
            || current_cell == NULL || version_cell == NULL
            || sequence == NULL || discard_chain == NULL)
        goto error;
    if (!PyList_Check(queue) || !PyList_Check(wheel) || !PyList_Check(stop)
            || !PyList_Check(events_cell) || !PyList_Check(current_cell)
            || !PyList_Check(version_cell)) {
        PyErr_SetString(PyExc_TypeError, "engine state cells must be lists");
        goto error;
    }

    events_done = PyLong_AsLongLong(PyList_GET_ITEM(events_cell, 0));
    if (events_done == -1 && PyErr_Occurred())
        goto error;
    has_limit = (max_events != Py_None);
    if (has_limit) {
        event_limit = PyFloat_AsDouble(max_events);
        if (event_limit == -1.0 && PyErr_Occurred())
            goto error;
    }
    has_stop_condition = (stop_condition != Py_None);

    /* Rotation detection -- see reference.run_wheel for the invariant. */
    wheel_size = PyList_GET_SIZE(wheel);
    if (wheel_size > 0) {
        PyObject *first = PyList_GET_ITEM(wheel, 0);
        PyObject *period = PyList_GET_ITEM(first, 5);
        PyObject *priority = PyList_GET_ITEM(first, 1);
        int uniform = 1;
        Py_ssize_t i;
        for (i = 0; i < wheel_size; i++) {
            PyObject *item = PyList_GET_ITEM(wheel, i);
            int differs = PyObject_RichCompareBool(
                PyList_GET_ITEM(item, 5), period, Py_NE);
            if (differs < 0)
                goto error;
            if (!differs) {
                differs = PyObject_RichCompareBool(
                    PyList_GET_ITEM(item, 1), priority, Py_NE);
                if (differs < 0)
                    goto error;
            }
            if (differs) {
                uniform = 0;
                break;
            }
        }
        if (uniform) {
            rotation = PyList_GetSlice(wheel, 0, wheel_size);
            if (rotation == NULL)
                goto error;
            if (PyList_Sort(rotation) < 0)
                goto error;
            {
                PyObject *span = PyNumber_Subtract(
                    PyList_GET_ITEM(PyList_GET_ITEM(rotation, wheel_size - 1), 0),
                    PyList_GET_ITEM(PyList_GET_ITEM(rotation, 0), 0));
                int wraps;
                if (span == NULL)
                    goto error;
                wraps = PyObject_RichCompareBool(span, period, Py_GE);
                Py_DECREF(span);
                if (wraps < 0)
                    goto error;
                if (wraps)
                    Py_CLEAR(rotation);
            }
        }
    }

    wheel_version = PyList_GET_ITEM(version_cell, 0);
    Py_INCREF(wheel_version);

    for (;;) {
        int stopped, cancelled, over_horizon;
        PyObject *result, *sequence_value, *period_value, *new_time;

        stopped = obj_is_true(PyList_GET_ITEM(stop, 0));
        if (stopped < 0)
            goto error;
        if (stopped)
            break;

        if (rotation != NULL) {
            chain = PyList_GET_ITEM(rotation, index);
            Py_INCREF(chain);
            index++;
            if (index == wheel_size)
                index = 0;
        } else {
            chain = wheel_min(wheel);
            if (chain == NULL)
                goto error;
        }

        cancelled = obj_is_true(PyList_GET_ITEM(chain, 8));
        if (cancelled < 0)
            goto error;
        if (cancelled) {
            result = PyObject_CallOneArg(discard_chain, chain);
            if (result == NULL)
                goto error;
            Py_DECREF(result);
            Py_CLEAR(chain);
            break;
        }

        time = PyList_GET_ITEM(chain, 0);
        Py_INCREF(time);
        if (PyFloat_CheckExact(time) && PyFloat_CheckExact(horizon)) {
            over_horizon =
                PyFloat_AS_DOUBLE(time) > PyFloat_AS_DOUBLE(horizon);
        } else {
            over_horizon = PyObject_RichCompareBool(time, horizon, Py_GT);
            if (over_horizon < 0)
                goto error;
        }
        if (over_horizon) {
            if (PyObject_SetAttr(engine, str__now, until) < 0)
                goto error;
            if (store_events_if_greater(events_cell, events_done) < 0)
                goto error;
            finished = 1;
            Py_CLEAR(time);
            Py_CLEAR(chain);
            goto done;
        }

        if (PyObject_SetAttr(engine, str__now, time) < 0)
            goto error;
        if (store_cell(current_cell, chain) < 0)
            goto error;
        /* callbacks observe the pre-event count, exactly as on the generic
         * path */
        if (store_events(events_cell, events_done) < 0)
            goto error;
        {
            PyObject *callback = PyList_GET_ITEM(chain, 3);
            PyObject *param = PyList_GET_ITEM(chain, 4);
            Py_INCREF(callback);
            Py_INCREF(param);
            result = PyObject_CallOneArg(callback, param);
            Py_DECREF(callback);
            Py_DECREF(param);
        }
        if (result == NULL)
            goto error; /* cell holds the pre-event count, _current the chain */
        Py_DECREF(result);
        if (store_cell(current_cell, Py_None) < 0)
            goto error;
        events_done++;

        cancelled = obj_is_true(PyList_GET_ITEM(chain, 8));
        if (cancelled < 0)
            goto error;
        if (cancelled) {
            result = PyObject_CallOneArg(discard_chain, chain);
            if (result == NULL)
                goto error;
            Py_DECREF(result);
            Py_CLEAR(time);
            Py_CLEAR(chain);
            break;
        }

        sequence_value = PyIter_Next(sequence);
        if (sequence_value == NULL) {
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_RuntimeError,
                                "engine sequence iterator exhausted");
            goto error;
        }
        if (PyList_SetItem(chain, 2, sequence_value) < 0) /* steals */
            goto error;
        period_value = PyList_GET_ITEM(chain, 5);
        if (PyFloat_CheckExact(time) && PyFloat_CheckExact(period_value)) {
            new_time = PyFloat_FromDouble(
                PyFloat_AS_DOUBLE(time) + PyFloat_AS_DOUBLE(period_value));
        } else {
            new_time = PyNumber_Add(time, period_value);
        }
        if (new_time == NULL)
            goto error;
        if (PyList_SetItem(chain, 0, new_time) < 0) /* steals */
            goto error;
        Py_CLEAR(time);
        Py_CLEAR(chain);

        if (has_stop_condition || has_limit) {
            processed++;
            if (has_stop_condition) {
                int should_stop;
                if (store_events(events_cell, events_done) < 0)
                    goto error;
                result = PyObject_CallNoArgs(stop_condition);
                if (result == NULL)
                    goto error;
                should_stop = PyObject_IsTrue(result);
                Py_DECREF(result);
                if (should_stop < 0)
                    goto error;
                if (should_stop) {
                    /* cell already written unconditionally above */
                    finished = 1;
                    goto done;
                }
            }
            if (has_limit && (double)processed >= event_limit) {
                if (store_events_if_greater(events_cell, events_done) < 0)
                    goto error;
                finished = 1;
                goto done;
            }
        }

        if (PyList_GET_SIZE(queue) > 0)
            break; /* one-shots scheduled */
        {
            PyObject *current_version = PyList_GET_ITEM(version_cell, 0);
            if (current_version != wheel_version) {
                int changed = PyObject_RichCompareBool(
                    current_version, wheel_version, Py_NE);
                if (changed < 0)
                    goto error;
                if (changed)
                    break; /* chains changed */
            }
        }
    }

    /* segment ended without finishing the run: unconditional count store */
    if (store_events(events_cell, events_done) < 0)
        goto error;

done:
    Py_XDECREF(rotation);
    Py_XDECREF(wheel_version);
    Py_DECREF(queue);
    Py_DECREF(wheel);
    Py_DECREF(stop);
    Py_DECREF(events_cell);
    Py_DECREF(current_cell);
    Py_DECREF(version_cell);
    Py_DECREF(sequence);
    Py_DECREF(discard_chain);
    {
        PyObject *count = PyLong_FromLongLong(processed);
        if (count == NULL)
            return NULL;
        PyObject *pair = PyTuple_New(2);
        if (pair == NULL) {
            Py_DECREF(count);
            return NULL;
        }
        Py_INCREF(finished ? Py_True : Py_False);
        PyTuple_SET_ITEM(pair, 0, finished ? Py_True : Py_False);
        PyTuple_SET_ITEM(pair, 1, count);
        return pair;
    }

error:
    Py_XDECREF(time);
    Py_XDECREF(chain);
    Py_XDECREF(rotation);
    Py_XDECREF(wheel_version);
    Py_XDECREF(queue);
    Py_XDECREF(wheel);
    Py_XDECREF(stop);
    Py_XDECREF(events_cell);
    Py_XDECREF(current_cell);
    Py_XDECREF(version_cell);
    Py_XDECREF(sequence);
    Py_XDECREF(discard_chain);
    return NULL;
}

/* --------------------------------------------------------- wake_waiters */

static PyObject *
wake_waiters(PyObject *module, PyObject *waiters)
{
    Py_ssize_t i;

    if (!PyList_Check(waiters)) {
        PyErr_SetString(PyExc_TypeError, "waiters must be a list");
        return NULL;
    }
    for (i = 0; i < PyList_GET_SIZE(waiters); i++) {
        PyObject *waiter = PyList_GET_ITEM(waiters, i);
        PyObject *attribute;
        long pending;
        int squashed;

        Py_INCREF(waiter);
        attribute = PyObject_GetAttr(waiter, str_squashed);
        if (attribute == NULL)
            goto waiter_error;
        squashed = PyObject_IsTrue(attribute);
        Py_DECREF(attribute);
        if (squashed < 0)
            goto waiter_error;
        if (squashed) {
            Py_DECREF(waiter);
            continue;
        }
        attribute = PyObject_GetAttr(waiter, str_pending_ops);
        if (attribute == NULL)
            goto waiter_error;
        pending = PyLong_AsLong(attribute);
        Py_DECREF(attribute);
        if (pending == -1 && PyErr_Occurred())
            goto waiter_error;
        if (pending == 0) {
            Py_DECREF(waiter);
            continue;
        }
        pending--;
        attribute = PyLong_FromLong(pending);
        if (attribute == NULL)
            goto waiter_error;
        if (PyObject_SetAttr(waiter, str_pending_ops, attribute) < 0) {
            Py_DECREF(attribute);
            goto waiter_error;
        }
        Py_DECREF(attribute);
        if (pending == 0) {
            PyObject *queue = PyObject_GetAttr(waiter, str_wakeup_queue);
            if (queue == NULL)
                goto waiter_error;
            if (queue != Py_None) {
                PyObject *result =
                    PyObject_CallMethodOneArg(queue, str_push_ready, waiter);
                if (result == NULL) {
                    Py_DECREF(queue);
                    goto waiter_error;
                }
                Py_DECREF(result);
            }
            Py_DECREF(queue);
        }
        Py_DECREF(waiter);
        continue;

    waiter_error:
        Py_DECREF(waiter);
        return NULL;
    }
    if (PyList_SetSlice(waiters, 0, PY_SSIZE_T_MAX, NULL) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------ sync_visible_at */

static PyObject *
sync_visible_at(PyObject *module, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *time, *phase, *period, *latency;

    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "sync_visible_at expects exactly 4 arguments");
        return NULL;
    }
    time = args[0];
    phase = args[1];
    period = args[2];
    latency = args[3];

    if (PyFloat_CheckExact(time) && PyFloat_CheckExact(phase)
            && PyFloat_CheckExact(period) && PyFloat_CheckExact(latency)) {
        double t = PyFloat_AS_DOUBLE(time);
        double ph = PyFloat_AS_DOUBLE(phase);
        double per = PyFloat_AS_DOUBLE(period);
        double lat = PyFloat_AS_DOUBLE(latency);
        double first_edge;
        if (t < ph) {
            first_edge = ph;
        } else {
            double quotient = (t - ph) / per;
            /* the long long truncation below matches Python int() for the
             * values a simulation can produce; punt absurd magnitudes to
             * the exact object path */
            if (quotient > -9.0e18 && quotient < 9.0e18) {
                first_edge =
                    ph + ((double)((long long)quotient + 1)) * per;
            } else {
                goto exact;
            }
        }
        return PyFloat_FromDouble(first_edge + lat);
    }

exact:
    {
        /* mirror the reference expression operation by operation */
        PyObject *first_edge, *result;
        int before_phase = PyObject_RichCompareBool(time, phase, Py_LT);
        if (before_phase < 0)
            return NULL;
        if (before_phase) {
            first_edge = phase;
            Py_INCREF(first_edge);
        } else {
            PyObject *offset = PyNumber_Subtract(time, phase);
            PyObject *quotient, *count, *bumped, *span;
            if (offset == NULL)
                return NULL;
            quotient = PyNumber_TrueDivide(offset, period);
            Py_DECREF(offset);
            if (quotient == NULL)
                return NULL;
            count = PyNumber_Long(quotient);
            Py_DECREF(quotient);
            if (count == NULL)
                return NULL;
            {
                PyObject *one = PyLong_FromLong(1);
                if (one == NULL) {
                    Py_DECREF(count);
                    return NULL;
                }
                bumped = PyNumber_Add(count, one);
                Py_DECREF(one);
            }
            Py_DECREF(count);
            if (bumped == NULL)
                return NULL;
            span = PyNumber_Multiply(bumped, period);
            Py_DECREF(bumped);
            if (span == NULL)
                return NULL;
            first_edge = PyNumber_Add(phase, span);
            Py_DECREF(span);
            if (first_edge == NULL)
                return NULL;
        }
        result = PyNumber_Add(first_edge, latency);
        Py_DECREF(first_edge);
        return result;
    }
}

/* ---------------------------------------------------------- module glue */

static PyMethodDef ckernel_methods[] = {
    {"run_wheel", (PyCFunction)(void (*)(void))run_wheel, METH_FASTCALL,
     "Run one clock-wheel segment; see repro.kernel.reference.run_wheel."},
    {"wake_waiters", (PyCFunction)wake_waiters, METH_O,
     "Writeback waiter walk; see repro.kernel.reference.wake_waiters."},
    {"sync_visible_at", (PyCFunction)(void (*)(void))sync_visible_at,
     METH_FASTCALL,
     "Synchronizer edge mapping; see repro.kernel.reference.sync_visible_at."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    "_ckernel",
    "Compiled kernel backend (C translation of repro.kernel.reference).",
    -1,
    ckernel_methods,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    PyObject *module;

    str__now = PyUnicode_InternFromString("_now");
    str_push_ready = PyUnicode_InternFromString("push_ready");
    str_squashed = PyUnicode_InternFromString("squashed");
    str_pending_ops = PyUnicode_InternFromString("pending_ops");
    str_wakeup_queue = PyUnicode_InternFromString("wakeup_queue");
    if (str__now == NULL || str_push_ready == NULL || str_squashed == NULL
            || str_pending_ops == NULL || str_wakeup_queue == NULL)
        return NULL;

    module = PyModule_Create(&ckernel_module);
    if (module == NULL)
        return NULL;
    if (PyModule_AddIntConstant(module, "KERNEL_API_VERSION",
                                REPRO_KERNEL_API_VERSION) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
