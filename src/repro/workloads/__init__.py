"""Workloads: Spec95/Mediabench behaviour profiles, synthetic traces, kernels.

* :mod:`repro.workloads.profiles` -- per-benchmark behavioural parameters and
  the named multi-phase mix table.
* :mod:`repro.workloads.synthetic` -- deterministic synthetic trace generation.
* :mod:`repro.workloads.kernels` -- hand-written assembly kernels executed
  functionally to produce real traces.
* :mod:`repro.workloads.phased` -- phase-structured traces that change regime
  mid-run (static / oscillating / dynamic hot-set schedules).
* :mod:`repro.workloads.registry` -- the name -> trace-factory registry the
  declarative Scenario subsystem and the CLI resolve workloads through.
"""

from .kernels import KERNELS, Kernel, get_kernel, kernel_trace
from .phased import PhasedWorkload, PhasePlacement
from .profiles import (DEFAULT_BENCHMARKS, DVFS_CASE_STUDY_BENCHMARKS, PROFILES,
                       WORKLOAD_MIXES, BenchmarkProfile, PhasedMix,
                       available_mixes, get_mix, get_profile,
                       profiles_in_suite)
from .registry import (KERNEL_PREFIX, PHASED_PREFIX, WORKLOADS, WorkloadEntry,
                       available_workloads, build_workload,
                       get_workload_entry)
from .synthetic import SyntheticWorkload, make_trace, make_workload

__all__ = [
    "BenchmarkProfile",
    "DEFAULT_BENCHMARKS",
    "DVFS_CASE_STUDY_BENCHMARKS",
    "KERNELS",
    "KERNEL_PREFIX",
    "Kernel",
    "PHASED_PREFIX",
    "PROFILES",
    "PhasePlacement",
    "PhasedMix",
    "PhasedWorkload",
    "SyntheticWorkload",
    "WORKLOADS",
    "WORKLOAD_MIXES",
    "WorkloadEntry",
    "available_mixes",
    "available_workloads",
    "build_workload",
    "get_kernel",
    "get_mix",
    "get_profile",
    "get_workload_entry",
    "kernel_trace",
    "make_trace",
    "make_workload",
    "profiles_in_suite",
]
