"""Textual reports and ASCII charts of experiment results.

The paper presents its results as bar charts (Figures 5-13); this module
renders the same series as text tables and simple horizontal ASCII bars so
the benchmark harness can print directly comparable output.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.experiments import DvfsResult
from ..core.metrics import ComparisonRow
from ..power.accounting import EnergyBreakdown
from ..power.blocks import BREAKDOWN_CATEGORIES


def ascii_bar(value: float, scale: float = 50.0, maximum: float = 1.2) -> str:
    """A horizontal bar of '#' characters for a normalised value."""
    if maximum <= 0:
        raise ValueError("maximum must be positive")
    clamped = max(0.0, min(value, maximum))
    return "#" * int(round(clamped / maximum * scale))


def bar_chart(series: Mapping[str, float], title: str = "",
              maximum: Optional[float] = None, width: int = 40) -> str:
    """Render a named series as an ASCII bar chart."""
    if not series:
        return title
    peak = maximum if maximum is not None else max(series.values()) or 1.0
    label_width = max(len(name) for name in series)
    lines = [title] if title else []
    for name, value in series.items():
        bar = ascii_bar(value, scale=width, maximum=peak)
        lines.append(f"{name:<{label_width}}  {value:6.3f}  {bar}")
    return "\n".join(lines)


# ------------------------------------------------------------------ Figures 5-9
def performance_table(rows: Sequence[ComparisonRow]) -> str:
    """Figure 5: GALS performance relative to base, per benchmark."""
    lines = [f"{'benchmark':<10} {'relative performance':>21}"]
    for row in rows:
        lines.append(f"{row.benchmark:<10} {row.relative_performance:>21.3f}")
    mean = sum(r.relative_performance for r in rows) / len(rows)
    lines.append(f"{'average':<10} {mean:>21.3f}")
    return "\n".join(lines)


def slip_table(rows: Sequence[ComparisonRow]) -> str:
    """Figure 6: average slip (ns) in base and GALS."""
    lines = [f"{'benchmark':<10} {'base slip':>10} {'gals slip':>10} {'ratio':>7}"]
    for row in rows:
        lines.append(f"{row.benchmark:<10} {row.base_slip_ns:>10.2f} "
                     f"{row.gals_slip_ns:>10.2f} {row.slip_ratio:>7.2f}")
    return "\n".join(lines)


def slip_breakdown_table(rows: Sequence[ComparisonRow]) -> str:
    """Figure 7: share of the GALS slip spent in FIFOs vs in the pipeline."""
    lines = [f"{'benchmark':<10} {'FIFO share':>11} {'pipeline share':>15}"]
    for row in rows:
        fifo = row.gals_fifo_slip_fraction
        lines.append(f"{row.benchmark:<10} {fifo:>11.2%} {1 - fifo:>15.2%}")
    return "\n".join(lines)


def misspeculation_table(rows: Sequence[ComparisonRow]) -> str:
    """Figure 8: percentage of mis-speculated instructions, base vs GALS."""
    lines = [f"{'benchmark':<10} {'base':>8} {'gals':>8}"]
    for row in rows:
        lines.append(f"{row.benchmark:<10} {row.base_misspeculation:>8.1%} "
                     f"{row.gals_misspeculation:>8.1%}")
    return "\n".join(lines)


def energy_power_table(rows: Sequence[ComparisonRow]) -> str:
    """Figure 9: GALS energy and power normalised to base."""
    lines = [f"{'benchmark':<10} {'rel energy':>11} {'rel power':>10}"]
    for row in rows:
        lines.append(f"{row.benchmark:<10} {row.relative_energy:>11.3f} "
                     f"{row.relative_power:>10.3f}")
    mean_e = sum(r.relative_energy for r in rows) / len(rows)
    mean_p = sum(r.relative_power for r in rows) / len(rows)
    lines.append(f"{'average':<10} {mean_e:>11.3f} {mean_p:>10.3f}")
    return "\n".join(lines)


# -------------------------------------------------------------------- Figure 10
def breakdown_table(base: EnergyBreakdown, gals: EnergyBreakdown) -> str:
    """Figure 10: per-macro-block energy, both machines normalised to base."""
    lines = [f"{'category':<18} {'base':>8} {'gals':>8}"]
    total = base.total_energy_nj or 1.0
    for category in BREAKDOWN_CATEGORIES:
        base_share = base.by_category.get(category, 0.0) / total
        gals_share = gals.by_category.get(category, 0.0) / total
        lines.append(f"{category:<18} {base_share:>8.3f} {gals_share:>8.3f}")
    lines.append(f"{'total':<18} {1.0:>8.3f} "
                 f"{gals.total_energy_nj / total:>8.3f}")
    return "\n".join(lines)


# ------------------------------------------------------------------- scenarios
def scenario_table(results: Sequence) -> str:
    """Comparison table for a batch of ScenarioResult objects (CLI sweeps)."""
    header = (f"{'scenario':<20} {'topology':<11} {'workload':<18} "
              f"{'IPC':>6} {'elapsed ns':>11} {'energy nJ':>10} {'power W':>8}")
    lines = [header]
    for item in results:
        result = item.result
        lines.append(
            f"{item.scenario.name:<20} {item.scenario.topology:<11} "
            f"{item.scenario.workload:<18} {result.ipc:>6.2f} "
            f"{result.elapsed_ns:>11.1f} {result.total_energy_nj:>10.1f} "
            f"{result.average_power_w:>8.2f}")
    return "\n".join(lines)


# ------------------------------------------------------- design-space compare
def design_space_records(results: Sequence) -> List[Dict[str, Any]]:
    """Flat metric records for a topology × workload × policy result set.

    Each record carries the absolute figures of merit (IPC, elapsed time,
    energy, power, energy-delay and energy-delay² products) plus the same
    quantities normalised to the fully synchronous ``base`` topology of the
    same workload × policy cell (or, if the set has no ``base`` row for that
    cell, to its first row).  This is the payload ``repro report compare
    --json`` writes for CI artifacts.
    """
    records = []
    for item in results:
        scenario, result = item.scenario, item.result
        elapsed = result.elapsed_ns
        energy = result.total_energy_nj
        records.append({
            "scenario": scenario.name,
            "topology": scenario.topology,
            "workload": scenario.workload,
            "policy": scenario.policy,
            "controller": getattr(scenario, "controller", None),
            "instructions": result.committed_instructions,
            "ipc": result.ipc,
            "elapsed_ns": elapsed,
            "energy_nj": energy,
            "power_w": result.average_power_w,
            "edp_nj_ns": energy * elapsed,
            "ed2p_nj_ns2": energy * elapsed * elapsed,
        })
    # normalise within each workload × policy cell against its base topology;
    # adaptive (controller-driven) rows never serve as the reference, so a
    # controller's rel_* columns always read against the static baseline
    references: Dict[tuple, Dict[str, Any]] = {}
    for record in records:
        cell = (record["workload"], record["policy"])
        if cell not in references or (record["topology"] == "base"
                                      and record["controller"] is None):
            references[cell] = record
    for record in records:
        reference = references[(record["workload"], record["policy"])]
        record["rel_performance"] = (
            reference["elapsed_ns"] / record["elapsed_ns"]
            if record["elapsed_ns"] else 0.0)
        for field_name, rel_name in (("energy_nj", "rel_energy"),
                                     ("edp_nj_ns", "rel_edp"),
                                     ("ed2p_nj_ns2", "rel_ed2p")):
            record[rel_name] = (record[field_name] / reference[field_name]
                                if reference[field_name] else 0.0)
    return records


def design_space_table(results: Sequence) -> str:
    """Cross-topology design-space table (``repro report compare``).

    Relative columns are normalised per workload × policy cell against the
    ``base`` topology (see :func:`design_space_records`); ED and ED² are the
    energy-delay products, the lower the better.
    """
    records = design_space_records(results)
    header = (f"{'topology':<11} {'workload':<18} {'policy':<10} "
              f"{'controller':<10} "
              f"{'IPC':>6} {'energy nJ':>10} {'power W':>8} "
              f"{'ED':>9} {'ED2':>9} "
              f"{'rel perf':>9} {'rel E':>7} {'rel ED':>7} {'rel ED2':>8}")
    lines = [header]
    for record in records:
        lines.append(
            f"{record['topology']:<11} {record['workload']:<18} "
            f"{record['policy'] or '-':<10} "
            f"{record['controller'] or '-':<10} "
            f"{record['ipc']:>6.2f} {record['energy_nj']:>10.1f} "
            f"{record['power_w']:>8.2f} "
            f"{record['edp_nj_ns']:>9.3g} {record['ed2p_nj_ns2']:>9.3g} "
            f"{record['rel_performance']:>9.3f} {record['rel_energy']:>7.3f} "
            f"{record['rel_edp']:>7.3f} {record['rel_ed2p']:>8.3f}")
    return "\n".join(lines)


# ------------------------------------------------------- controller traces
def dvfs_trace_records(item) -> List[Dict[str, Any]]:
    """Flat per-epoch records for one controller-driven ScenarioResult.

    Each record carries the epoch boundary time, the epoch's IPC and energy,
    and the per-domain frequency (GHz, derived from the scenario's base
    period and the slowdowns in force after the epoch's control decision) --
    the time series adaptive-vs-static comparisons plot.
    """
    trace = item.result.dvfs_trace or []
    base_period = item.scenario.base_period
    records = []
    for entry in trace:
        records.append({
            "epoch": entry["epoch"],
            "time_ns": entry["time_ns"],
            "committed": entry["committed"],
            "ipc": entry["ipc"],
            "energy_nj": entry["energy_nj"],
            "energy_delta_nj": entry["energy_delta_nj"],
            "retimed": entry["retimed"],
            "frequency_ghz": {
                domain: 1.0 / (base_period * slowdown)
                for domain, slowdown in entry["slowdowns"].items()},
            "slowdowns": dict(entry["slowdowns"]),
            "voltages": dict(entry["voltages"]),
            "queue_occupancy": dict(entry.get("queue_occupancy", {})),
        })
    return records


def dvfs_trace_table(item) -> str:
    """Per-epoch frequency/IPC/energy trace of one controller-driven run.

    One row per control epoch; the frequency columns (GHz) show each clock
    domain's rate in force *after* that epoch's control decision, with a
    ``*`` marking epochs where the controller actually retimed a domain.
    """
    records = dvfs_trace_records(item)
    if not records:
        return "(no DVFS trace: run had no online controller)"
    domains = list(records[0]["frequency_ghz"])
    header = f"{'epoch':>5} {'t ns':>8} {'IPC':>6} {'dE nJ':>8}  " + " ".join(
        f"{domain:>8}" for domain in domains)
    lines = [header]
    for record in records:
        freqs = " ".join(f"{record['frequency_ghz'][domain]:>8.3f}"
                         for domain in domains)
        mark = "*" if record["retimed"] else " "
        lines.append(f"{record['epoch']:>5} {record['time_ns']:>8.1f} "
                     f"{record['ipc']:>6.2f} {record['energy_delta_nj']:>8.1f} "
                     f"{mark} {freqs}")
    return "\n".join(lines)


# -------------------------------------------------------- phased workloads
def phase_trace_records(item) -> List[Dict[str, Any]]:
    """Per-control-epoch records annotated with the phased-workload phase.

    For a controller-driven run of a ``phased:<mix>`` workload, rebuilds the
    (deterministic) phase plan and attributes every control epoch to the
    phase in which the epoch's last committed instruction falls, adding
    ``phase``, ``segment`` and ``committed_delta`` to each
    :func:`dvfs_trace_records` record.  This is what lets adaptive-vs-static
    comparisons see *which regime* the controller was reacting to.
    """
    from ..workloads import PhasedWorkload, get_mix
    from ..workloads.registry import PHASED_PREFIX
    scenario = item.scenario
    if not scenario.workload.startswith(PHASED_PREFIX):
        raise ValueError(f"scenario {scenario.name!r} runs workload "
                         f"{scenario.workload!r}, not a phased: workload")
    workload = PhasedWorkload(
        get_mix(scenario.workload[len(PHASED_PREFIX):]),
        seed=scenario.seed, kernel_size=scenario.kernel_size)
    plan = workload.plan(scenario.num_instructions)
    records = []
    prev_committed = 0
    for record in dvfs_trace_records(item):
        committed = record["committed"]
        marker = max(prev_committed,
                     min(committed, scenario.num_instructions) - 1)
        placement = next(p for p in plan if p.start <= marker < p.end)
        records.append({**record,
                        "phase": placement.index,
                        "segment": placement.segment,
                        "committed_delta": committed - prev_committed})
        prev_committed = committed
    return records


def phase_resolved_table(item) -> str:
    """Phase-resolved IPC and energy of one controller-driven phased run.

    One row per phase of the workload's schedule: how many control epochs it
    spanned, the instructions committed and time spent inside it, and the
    resulting per-phase IPC (in nominal reference cycles) and energy per
    instruction -- the table that shows a regime change actually moving the
    machine's operating point.
    """
    records = phase_trace_records(item)
    if not records:
        return "(no phase trace: run had no online controller)"
    base_period = item.scenario.base_period
    by_phase: Dict[int, Dict[str, Any]] = {}
    prev_time = 0.0
    for record in records:
        row = by_phase.setdefault(record["phase"], {
            "segment": record["segment"], "epochs": 0,
            "committed": 0, "time_ns": 0.0, "energy_nj": 0.0})
        row["epochs"] += 1
        row["committed"] += record["committed_delta"]
        row["time_ns"] += record["time_ns"] - prev_time
        row["energy_nj"] += record["energy_delta_nj"]
        prev_time = record["time_ns"]
    header = (f"{'phase':>5} {'segment':<20} {'epochs':>6} {'instr':>7} "
              f"{'t ns':>9} {'IPC':>6} {'nJ':>9} {'nJ/instr':>9}")
    lines = [header]
    for phase in sorted(by_phase):
        row = by_phase[phase]
        cycles = row["time_ns"] / base_period if base_period else 0.0
        ipc = row["committed"] / cycles if cycles else 0.0
        epi = row["energy_nj"] / row["committed"] if row["committed"] else 0.0
        lines.append(f"{phase:>5} {row['segment']:<20} {row['epochs']:>6} "
                     f"{row['committed']:>7} {row['time_ns']:>9.1f} "
                     f"{ipc:>6.2f} {row['energy_nj']:>9.1f} {epi:>9.2f}")
    return "\n".join(lines)


# ----------------------------------------------------------------- Figures 11-13
def dvfs_table(results: Sequence[DvfsResult], include_ideal: bool = True) -> str:
    """Figures 11-13: normalised performance / energy / (ideal) / power."""
    header = f"{'config':<22} {'performance':>12} {'energy':>8}"
    if include_ideal:
        header += f" {'ideal':>7}"
    header += f" {'power':>7}"
    lines = [header]
    for result in results:
        line = (f"{result.benchmark + '/' + result.policy:<22} "
                f"{result.relative_performance:>12.3f} "
                f"{result.relative_energy:>8.3f}")
        if include_ideal:
            line += f" {result.ideal_energy:>7.3f}"
        line += f" {result.relative_power:>7.3f}"
        lines.append(line)
    return "\n".join(lines)
