"""Cache and memory hierarchy models (paper Table 3)."""

from .cache import Cache, CacheGeometry, CacheStats, MainMemory
from .hierarchy import MemoryHierarchy, MemoryHierarchyConfig
from .replacement import (FIFOPolicy, LRUPolicy, RandomPolicy,
                          ReplacementPolicy, make_policy)

__all__ = [
    "Cache",
    "CacheGeometry",
    "CacheStats",
    "FIFOPolicy",
    "LRUPolicy",
    "MainMemory",
    "MemoryHierarchy",
    "MemoryHierarchyConfig",
    "RandomPolicy",
    "ReplacementPolicy",
    "make_policy",
]
