"""Wattch-style power modelling (paper Section 4.3) and voltage scaling (§3.3).

* :mod:`repro.power.technology` -- process parameters (Vdd, Vt, alpha).
* :mod:`repro.power.capacitance` -- parametric per-access energy models.
* :mod:`repro.power.blocks` -- macro-block energy models (Figure 10 blocks).
* :mod:`repro.power.activity` / :mod:`repro.power.accounting` -- per-cycle
  conditional-clocking energy accounting.
* :mod:`repro.power.voltage` -- Equation 1 delay/voltage model and DVFS helpers.
"""

from .accounting import EnergyBreakdown, PowerAccountant
from .activity import ActivityCounters
from .blocks import (BREAKDOWN_CATEGORIES, BlockEnergyModel, default_block_models,
                     global_clock_block, local_clock_block)
from .capacitance import (alu_energy, array_access_energy, cam_access_energy,
                          clock_grid_energy_per_cycle, fifo_transfer_energy,
                          global_clock_grid_energy, local_clock_grid_energy,
                          regfile_access_energy, scale_voltage)
from .technology import DEFAULT_TECHNOLOGY, TECH_0_35_UM, TechnologyParameters
from .voltage import (OperatingPoint, delay_factor, energy_scale,
                      ideal_synchronous_energy, operating_point_for_slowdown,
                      voltage_for_slowdown)

__all__ = [
    "ActivityCounters",
    "BREAKDOWN_CATEGORIES",
    "BlockEnergyModel",
    "DEFAULT_TECHNOLOGY",
    "EnergyBreakdown",
    "OperatingPoint",
    "PowerAccountant",
    "TECH_0_35_UM",
    "TechnologyParameters",
    "alu_energy",
    "array_access_energy",
    "cam_access_energy",
    "clock_grid_energy_per_cycle",
    "default_block_models",
    "delay_factor",
    "energy_scale",
    "fifo_transfer_energy",
    "global_clock_block",
    "global_clock_grid_energy",
    "ideal_synchronous_energy",
    "local_clock_block",
    "local_clock_grid_energy",
    "operating_point_for_slowdown",
    "regfile_access_energy",
    "scale_voltage",
    "voltage_for_slowdown",
]
