#!/usr/bin/env python3
"""CI chaos test: the sweep fabric under a deterministic fault storm.

Drives a multi-worker sweep through worker kills, injected ``OSError``s and
torn entry writes (a seeded :class:`repro.exec.faults.FaultPlan`), then
asserts the *bit-identity contract*: the design-space records and table of
the storm-ridden store are byte-identical to a clean serial run's.

The storm, step by step (every fault scheduled by the plan, so the run
replays identically):

1. **clean run** -- the design-space grid on the ``serial`` backend into
   store A; its records/table are the reference bytes;
2. **victim worker** -- a real ``python -m repro.exec.worker`` process
   whose plan kills it (``os._exit(137)``) right after it wins its second
   claim: it publishes one result, then dies *holding a claim* -- the
   SIGKILL/power-loss shape;
3. **survivor worker** -- a second worker whose plan injects a transient
   ``OSError`` on its first entry write (exercising the retry/backoff path)
   and tears the bytes of a later one (exercising checksum quarantine).
   With ``REPRO_CLAIM_TTL=2`` it breaks the victim's expired lease,
   recomputes the orphaned job and drains the rest of the queue;
4. **resume** -- an in-process :func:`repro.results.resume_sweep` fills
   whatever the storm left missing (the torn entry is quarantined on read
   and recomputed);
5. **verdict** -- records/table must equal the clean run's bytes, ``repro
   cache verify`` semantics must report every entry ok, no queue files or
   claims may remain, and the fault log must show the storm actually fired
   (exit + raise + torn events).

Exits nonzero on the first violated expectation.  Usage::

    python tools/chaos_smoke.py [--instructions N] [--fault-log PATH]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.analysis.report import design_space_records, design_space_table
from repro.core.experiments import design_space_scenarios
from repro.exec import ExecutionConfig
from repro.exec.faults import (FAULT_LOG_ENV_VAR, FAULT_PLAN_ENV_VAR,
                               FaultPlan, FaultRule)
from repro.exec.worker import pending_jobs, enqueue_job
from repro.results import resume_sweep
from repro.results.store import CLAIM_TTL_ENV_VAR, ResultsStore

#: Lease TTL (seconds) for the storm: short enough that the survivor breaks
#: the dead victim's claim within the smoke budget.
CLAIM_TTL = 2.0

#: The plan that kills the victim right after its second claim win.
VICTIM_PLAN = FaultPlan(seed=1202, rules=(
    FaultRule(site="worker.claimed", action="exit", hits=(1,), role="worker",
              message="injected worker death mid-claim"),
))

#: The plan that makes the survivor's store writes misbehave (but lets it
#: live): a transient OSError on its first put, torn bytes on its third.
SURVIVOR_PLAN = FaultPlan(seed=1202, rules=(
    FaultRule(site="store.put", action="raise", hits=(0,), role="worker",
              message="injected transient store failure"),
    FaultRule(site="store.put", action="torn", hits=(2,), role="worker",
              message="injected torn entry write"),
))


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def worker_env(plan_path: Path, fault_log: Path) -> dict:
    """Environment for one faulty worker process (plan + TTL + log)."""
    env = dict(os.environ)
    env[FAULT_PLAN_ENV_VAR] = str(plan_path)
    env[FAULT_LOG_ENV_VAR] = str(fault_log)
    env[CLAIM_TTL_ENV_VAR] = str(CLAIM_TTL)
    source = str(REPO / "src")
    existing = env.get("PYTHONPATH", "")
    if source not in existing.split(os.pathsep):
        env["PYTHONPATH"] = source + (os.pathsep + existing
                                      if existing else "")
    return env


def spawn_worker(store: Path, env: dict) -> subprocess.Popen:
    """Start one real worker process against ``store``."""
    return subprocess.Popen(
        [sys.executable, "-m", "repro.exec.worker", "--store", str(store),
         "--exit-when-idle", "--poll-interval", "0.05",
         "--retry-backoff", "0.01"],
        cwd=REPO, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def reference_bytes(runs) -> bytes:
    """The canonical bytes of a sweep's records + table (the contract)."""
    outcomes = [run.outcome for run in runs]
    records = design_space_records(outcomes)
    table = design_space_table(outcomes)
    return json.dumps({"records": records, "table": table},
                      sort_keys=True).encode("utf-8")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--instructions", type=int, default=240)
    parser.add_argument("--timeout", type=float, default=180.0,
                        help="overall deadline for the storm phase "
                             "(default: 180)")
    parser.add_argument("--fault-log", metavar="PATH",
                        help="write the fired-fault log here (default: "
                             "inside the temp dir; CI uploads it)")
    args = parser.parse_args()

    grid = design_space_scenarios(workloads=["perl"],
                                  num_instructions=args.instructions)
    print(f"design-space grid: {len(grid)} scenarios "
          f"({args.instructions} instructions each)", flush=True)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as temp:
        workdir = Path(temp)
        fault_log = (Path(args.fault_log).resolve() if args.fault_log
                     else workdir / "faults.jsonl")

        # ---- phase 1: the clean serial reference ------------------------
        print("[1/5] clean serial run ...", flush=True)
        store_a = ResultsStore(root=workdir / "store-clean")
        clean_runs = resume_sweep(grid, execution=ExecutionConfig(
            backend="serial", store=store_a))
        reference = reference_bytes(clean_runs)

        # ---- phase 2: the victim worker dies holding a claim ------------
        print("[2/5] victim worker (killed mid-claim) ...", flush=True)
        store_b = ResultsStore(root=workdir / "store-chaos",
                               claim_ttl=CLAIM_TTL)
        for scenario in grid:
            enqueue_job(store_b, scenario)
        victim_plan = workdir / "victim-plan.json"
        victim_plan.write_text(VICTIM_PLAN.to_json())
        victim = spawn_worker(store_b.root, worker_env(victim_plan,
                                                       fault_log))
        victim.wait(timeout=args.timeout)
        if victim.returncode != 137:
            fail(f"victim exited {victim.returncode}, expected the injected "
                 f"death (137)")
        held = store_b.list_claims()
        if len(held) != 1:
            fail(f"victim should die holding exactly one claim, found "
                 f"{len(held)}")
        print(f"      victim died holding claim {held[0].key[:12]} "
              f"(published {len(store_b.entries())} result(s) first)",
              flush=True)

        # ---- phase 3: the survivor breaks the lease and drains ----------
        print("[3/5] survivor worker (retries, torn write, lease break) "
              "...", flush=True)
        survivor_plan = workdir / "survivor-plan.json"
        survivor_plan.write_text(SURVIVOR_PLAN.to_json())
        survivor = spawn_worker(store_b.root, worker_env(survivor_plan,
                                                         fault_log))
        survivor.wait(timeout=args.timeout)
        if survivor.returncode != 0:
            fail(f"survivor exited {survivor.returncode}, expected 0")
        if pending_jobs(store_b):
            fail(f"queue not drained: {len(pending_jobs(store_b))} job(s) "
                 f"left")
        if store_b.list_claims():
            fail("claims left behind after the survivor drained the queue")

        # ---- phase 4: resume fills what the storm corrupted -------------
        print("[4/5] resume_sweep over the stormed store ...", flush=True)
        chaos_runs = resume_sweep(grid, execution=ExecutionConfig(
            backend="serial", store=store_b))
        recomputed = sum(1 for run in chaos_runs if not run.cached)
        print(f"      {recomputed} scenario(s) recomputed (torn/corrupt "
              f"entries)", flush=True)

        # ---- phase 5: the verdict ---------------------------------------
        print("[5/5] verifying bit-identity and store integrity ...",
              flush=True)
        chaos = reference_bytes(chaos_runs)
        if chaos != reference:
            fail("design-space records/table differ from the clean run")
        stats = store_b.verify()
        if stats.quarantined or stats.ok != stats.checked:
            fail(f"store verify found corruption after the resume: "
                 f"{stats.checked} checked, {stats.ok} ok, "
                 f"{stats.quarantined} quarantined")
        if stats.checked < len(grid):
            fail(f"store holds {stats.checked} entries, expected at least "
                 f"{len(grid)}")
        events = [json.loads(line)
                  for line in fault_log.read_text().splitlines() if line]
        actions = {event["action"] for event in events}
        for expected in ("exit", "raise", "torn"):
            if expected not in actions:
                fail(f"fault log records no {expected!r} event -- the storm "
                     f"never fired ({sorted(actions)})")
        print(f"      {len(events)} faults fired "
              f"({', '.join(sorted(actions))}); results byte-identical; "
              f"store verifies clean", flush=True)
        if args.fault_log is None:
            time.sleep(0)  # the temp-dir log dies with the TemporaryDirectory

    print("chaos smoke: OK", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
