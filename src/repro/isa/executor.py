"""Functional executor: runs a program and emits the dynamic trace.

This plays the role SimpleScalar's functional simulator plays in the paper's
infrastructure: it executes instructions architecturally (registers, memory,
control flow) and hands the resulting dynamic instruction stream to the
timing models.  No timing is modelled here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .instructions import Instruction, InstructionClass, Opcode
from .program import INSTRUCTION_SIZE, Program
from .registers import NUM_ARCH_REGS, ZERO_REG, is_fp_reg
from .trace import ListTraceSource, TraceInstruction

#: Default base address of the data segment the executor exposes.
DATA_BASE = 0x1000_0000


class ExecutionLimitExceeded(RuntimeError):
    """Raised when a program runs longer than the configured instruction limit."""


@dataclass
class MachineState:
    """Architectural state of the functional machine."""

    registers: List[float] = field(default_factory=lambda: [0] * NUM_ARCH_REGS)
    memory: Dict[int, float] = field(default_factory=dict)

    def read_reg(self, reg: int):
        """Architectural register read (the zero register reads as 0)."""
        if reg == ZERO_REG:
            return 0
        return self.registers[reg]

    def write_reg(self, reg: int, value) -> None:
        """Architectural register write (writes to the zero register are dropped; integer registers truncate)."""
        if reg == ZERO_REG:
            return
        if not is_fp_reg(reg):
            value = int(value)
        self.registers[reg] = value

    def read_mem(self, address: int):
        """Data-memory read (uninitialised addresses read as 0)."""
        return self.memory.get(address, 0)

    def write_mem(self, address: int, value) -> None:
        """Data-memory write at an absolute address."""
        self.memory[address] = value


class FunctionalExecutor:
    """Executes a :class:`Program` and records the dynamic trace."""

    def __init__(self, program: Program, max_instructions: int = 1_000_000) -> None:
        self.program = program
        self.max_instructions = max_instructions
        self.state = MachineState()
        self.trace: List[TraceInstruction] = []
        self._halted = False

    # -------------------------------------------------------------- public
    @property
    def halted(self) -> bool:
        """True once a HALT instruction has executed."""
        return self._halted

    def preload_memory(self, values: Dict[int, float]) -> None:
        """Initialise data memory before running (addresses are absolute)."""
        self.state.memory.update(values)

    def set_register(self, reg: int, value) -> None:
        """Initialise one architectural register before running."""
        self.state.write_reg(reg, value)

    def run(self, entry_label: Optional[str] = None) -> ListTraceSource:
        """Run to completion and return the trace as an instruction source."""
        pc = (self.program.pc_of_label(entry_label)
              if entry_label else self.program.entry_pc)
        while not self._halted:
            if len(self.trace) >= self.max_instructions:
                raise ExecutionLimitExceeded(
                    f"program {self.program.name!r} exceeded "
                    f"{self.max_instructions} instructions")
            pc = self._step(pc)
        return ListTraceSource(self.trace, name=self.program.name)

    # ------------------------------------------------------------- internals
    def _step(self, pc: int) -> int:
        instr = self.program.instruction_at(pc)
        state = self.state
        next_pc = pc + INSTRUCTION_SIZE
        taken = False
        target_pc: Optional[int] = None
        mem_address: Optional[int] = None

        op = instr.opcode
        if op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.AND,
                  Opcode.OR, Opcode.XOR, Opcode.SLL, Opcode.SRL, Opcode.SLT,
                  Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV):
            a = state.read_reg(instr.sources[0])
            b = state.read_reg(instr.sources[1])
            state.write_reg(instr.dest, self._alu(op, a, b))
        elif op in (Opcode.MOV, Opcode.FMOV):
            state.write_reg(instr.dest, state.read_reg(instr.sources[0]))
        elif op is Opcode.CVTIF:
            state.write_reg(instr.dest, float(state.read_reg(instr.sources[0])))
        elif op is Opcode.CVTFI:
            state.write_reg(instr.dest, int(state.read_reg(instr.sources[0])))
        elif op is Opcode.LI:
            state.write_reg(instr.dest, instr.immediate)
        elif op is Opcode.ADDI:
            state.write_reg(instr.dest,
                            state.read_reg(instr.sources[0]) + instr.immediate)
        elif op in (Opcode.LW, Opcode.FLW):
            mem_address = int(state.read_reg(instr.sources[0])) + instr.immediate
            state.write_reg(instr.dest, state.read_mem(mem_address))
        elif op in (Opcode.SW, Opcode.FSW):
            mem_address = int(state.read_reg(instr.sources[1])) + instr.immediate
            state.write_mem(mem_address, state.read_reg(instr.sources[0]))
        elif op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
            a = state.read_reg(instr.sources[0])
            b = state.read_reg(instr.sources[1])
            taken = self._branch_taken(op, a, b)
            target_pc = self.program.pc_of_label(instr.target_label)
            if taken:
                next_pc = target_pc
        elif op in (Opcode.J, Opcode.JAL):
            taken = True
            target_pc = self.program.pc_of_label(instr.target_label)
            if op is Opcode.JAL:
                state.write_reg(31, next_pc)  # link register convention: r31
            next_pc = target_pc
        elif op is Opcode.JR:
            taken = True
            target_pc = int(state.read_reg(instr.sources[0]))
            next_pc = target_pc
        elif op is Opcode.HALT:
            self._halted = True
        elif op is Opcode.NOP:
            pass
        else:  # pragma: no cover - all opcodes handled above
            raise NotImplementedError(f"opcode {op} not implemented")

        self.trace.append(TraceInstruction(
            index=len(self.trace),
            pc=pc,
            opclass=instr.opclass,
            dest=instr.dest,
            sources=instr.sources,
            mem_address=mem_address,
            is_branch=instr.is_branch,
            taken=taken,
            target_pc=target_pc,
        ))
        return next_pc

    @staticmethod
    def _alu(op: Opcode, a, b):
        if op in (Opcode.ADD, Opcode.FADD):
            return a + b
        if op in (Opcode.SUB, Opcode.FSUB):
            return a - b
        if op in (Opcode.MUL, Opcode.FMUL):
            return a * b
        if op is Opcode.DIV:
            return a // b if b != 0 else 0
        if op is Opcode.FDIV:
            return a / b if b != 0 else 0.0
        if op is Opcode.AND:
            return int(a) & int(b)
        if op is Opcode.OR:
            return int(a) | int(b)
        if op is Opcode.XOR:
            return int(a) ^ int(b)
        if op is Opcode.SLL:
            return int(a) << (int(b) & 31)
        if op is Opcode.SRL:
            return int(a) >> (int(b) & 31)
        if op is Opcode.SLT:
            return 1 if a < b else 0
        raise NotImplementedError(op)  # pragma: no cover

    @staticmethod
    def _branch_taken(op: Opcode, a, b) -> bool:
        if op is Opcode.BEQ:
            return a == b
        if op is Opcode.BNE:
            return a != b
        if op is Opcode.BLT:
            return a < b
        if op is Opcode.BGE:
            return a >= b
        raise NotImplementedError(op)  # pragma: no cover


def execute_program(program: Program,
                    max_instructions: int = 1_000_000,
                    initial_memory: Optional[Dict[int, float]] = None,
                    initial_registers: Optional[Dict[int, float]] = None,
                    ) -> ListTraceSource:
    """Convenience wrapper: run ``program`` and return its dynamic trace."""
    executor = FunctionalExecutor(program, max_instructions=max_instructions)
    if initial_memory:
        executor.preload_memory(initial_memory)
    if initial_registers:
        for reg, value in initial_registers.items():
            executor.set_register(reg, value)
    return executor.run()
