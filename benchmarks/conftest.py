"""Shared, cached experiment results for the figure-reproduction benchmarks.

Figures 5-10 all read from the same set of base-vs-GALS runs and Figures 11-13
from the same DVFS runs, so those are computed once per benchmark session and
shared.  Individual benchmark functions still *time* a representative
simulation so `pytest benchmarks/ --benchmark-only` reports meaningful
simulator performance numbers.
"""

import pytest

from repro.core.dvfs import (GCC_GALS_1, GCC_GALS_2, GENERIC_SLOWDOWN, IJPEG_SWEEP,
                             PERL_FP_BY_3)
from repro.core.experiments import (baseline_comparison, selective_slowdown,
                                    slowdown_sweep)
from repro.workloads.profiles import DVFS_CASE_STUDY_BENCHMARKS

#: Trace length used for the reproduced figures.  Long enough for steady-state
#: behaviour of the synthetic workloads, short enough to keep the whole
#: harness in the minutes range on a laptop.
FIGURE_INSTRUCTIONS = 1500

#: Shorter length used for the timed portion of each benchmark.
TIMED_INSTRUCTIONS = 600

#: Benchmarks shown in Figures 5-10 (mirrors the paper's Spec95 + Mediabench mix).
FIGURE_BENCHMARKS = (
    "compress", "gcc", "go", "ijpeg", "li", "perl",
    "applu", "fpppp", "swim",
    "adpcm", "epic", "mpeg2",
)


@pytest.fixture(scope="session")
def suite_rows():
    """Base-vs-GALS comparison rows for the full benchmark list (Figs 5-10)."""
    return baseline_comparison(FIGURE_BENCHMARKS,
                               num_instructions=FIGURE_INSTRUCTIONS)


@pytest.fixture(scope="session")
def figure11_results():
    """Generic slowdown on perl/ijpeg/gcc plus the perl FP/3 case (Fig. 11)."""
    results = [selective_slowdown(benchmark, GENERIC_SLOWDOWN,
                                  num_instructions=FIGURE_INSTRUCTIONS)
               for benchmark in DVFS_CASE_STUDY_BENCHMARKS]
    results.append(selective_slowdown("perl", PERL_FP_BY_3,
                                      num_instructions=FIGURE_INSTRUCTIONS))
    return results


@pytest.fixture(scope="session")
def figure12_results():
    """The ijpeg memory-clock sweep (gals-00/10/20/50, Fig. 12)."""
    return slowdown_sweep("ijpeg", IJPEG_SWEEP,
                          num_instructions=FIGURE_INSTRUCTIONS)


@pytest.fixture(scope="session")
def figure13_results():
    """gcc with the FP clock halved (gals-1) and divided by three (gals-2)."""
    return [selective_slowdown("gcc", policy,
                               num_instructions=FIGURE_INSTRUCTIONS)
            for policy in (GCC_GALS_1, GCC_GALS_2)]
