"""Unit tests for the Wattch-style power models and voltage scaling (Eq. 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power import (ActivityCounters, BlockEnergyModel, DEFAULT_TECHNOLOGY,
                         PowerAccountant, TechnologyParameters, default_block_models,
                         delay_factor, energy_scale, global_clock_block,
                         ideal_synchronous_energy, local_clock_block,
                         operating_point_for_slowdown, voltage_for_slowdown)
from repro.power import capacitance
from repro.sim.clock import Clock, ClockDomain
from repro.sim.engine import SimulationEngine


# ----------------------------------------------------------------- technology
def test_technology_validation():
    with pytest.raises(ValueError):
        TechnologyParameters(nominal_vdd=0.3, threshold_voltage=0.35)
    with pytest.raises(ValueError):
        TechnologyParameters(idle_power_fraction=1.5)
    assert DEFAULT_TECHNOLOGY.nominal_period_ns == pytest.approx(1.0)
    assert DEFAULT_TECHNOLOGY.alpha == pytest.approx(1.6)


# -------------------------------------------------------------- Equation 1 DVS
def test_delay_factor_is_one_at_nominal_and_grows_below():
    assert delay_factor(DEFAULT_TECHNOLOGY.nominal_vdd) == pytest.approx(1.0)
    assert delay_factor(1.0) > 1.0
    with pytest.raises(ValueError):
        delay_factor(0.2)


def test_voltage_for_slowdown_inverts_delay_factor():
    for slowdown in (1.1, 1.5, 2.0, 3.0):
        vdd = voltage_for_slowdown(slowdown)
        assert vdd < DEFAULT_TECHNOLOGY.nominal_vdd
        assert delay_factor(vdd) == pytest.approx(slowdown, rel=1e-3)


def test_voltage_for_slowdown_edge_cases():
    assert voltage_for_slowdown(1.0) == DEFAULT_TECHNOLOGY.nominal_vdd
    assert voltage_for_slowdown(0.5) == DEFAULT_TECHNOLOGY.nominal_vdd
    with pytest.raises(ValueError):
        voltage_for_slowdown(0.0)


def test_energy_scale_quadratic_in_voltage():
    assert energy_scale(DEFAULT_TECHNOLOGY.nominal_vdd) == pytest.approx(1.0)
    assert energy_scale(0.75) == pytest.approx(0.25)


def test_smaller_alpha_gives_less_voltage_reduction():
    """The paper notes savings are higher for smaller technologies (alpha
    closer to 1 needs a *larger* voltage drop for the same slowdown)."""
    tech_alpha_2 = DEFAULT_TECHNOLOGY.with_alpha(2.0)
    tech_alpha_1_2 = DEFAULT_TECHNOLOGY.with_alpha(1.2)
    v2 = voltage_for_slowdown(1.5, tech_alpha_2)
    v12 = voltage_for_slowdown(1.5, tech_alpha_1_2)
    assert v12 < v2


def test_operating_point_with_conversion_losses():
    ideal = operating_point_for_slowdown(2.0)
    lossy = operating_point_for_slowdown(2.0, conversion_efficiency=0.85)
    assert lossy.energy_multiplier > ideal.energy_multiplier
    with pytest.raises(ValueError):
        operating_point_for_slowdown(2.0, conversion_efficiency=0.0)


def test_ideal_synchronous_energy_monotone_in_performance():
    energies = [ideal_synchronous_energy(p) for p in (1.0, 0.9, 0.8, 0.7)]
    assert energies[0] == pytest.approx(1.0)
    assert energies == sorted(energies, reverse=True)
    with pytest.raises(ValueError):
        ideal_synchronous_energy(0.0)


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=1.0, max_value=4.0))
def test_property_voltage_scaling_never_exceeds_nominal(slowdown):
    vdd = voltage_for_slowdown(slowdown)
    assert DEFAULT_TECHNOLOGY.threshold_voltage < vdd <= DEFAULT_TECHNOLOGY.nominal_vdd
    assert 0.0 < energy_scale(vdd) <= 1.0


# ---------------------------------------------------------------- capacitance
def test_capacitance_scaling_trends():
    small = capacitance.array_access_energy(8 * 1024, 1)
    big = capacitance.array_access_energy(256 * 1024, 1)
    assert big > small
    direct = capacitance.array_access_energy(16 * 1024, 1)
    four_way = capacitance.array_access_energy(16 * 1024, 4)
    assert four_way > direct
    assert capacitance.cam_access_energy(32) > capacitance.cam_access_energy(16)
    with pytest.raises(ValueError):
        capacitance.array_access_energy(0)
    with pytest.raises(ValueError):
        capacitance.clock_grid_energy_per_cycle(-1.0)


def test_global_grid_larger_than_any_local_grid():
    global_energy = capacitance.global_clock_grid_energy()
    for domain in capacitance.DOMAIN_AREAS_MM2:
        assert capacitance.local_clock_grid_energy(domain) < global_energy
    with pytest.raises(KeyError):
        capacitance.local_clock_grid_energy("gpu")


# --------------------------------------------------------------------- blocks
def test_block_cycle_energy_conditional_clocking():
    model = BlockEnergyModel("alu", access_energy=1.0, ports=4)
    vdd = DEFAULT_TECHNOLOGY.nominal_vdd
    idle = model.cycle_energy(0, vdd)
    assert idle == pytest.approx(0.4)  # 10% of full (4.0)
    partial = model.cycle_energy(2, vdd)
    assert partial == pytest.approx(2.0)
    saturated = model.cycle_energy(10, vdd)
    assert saturated == pytest.approx(4.0)
    with pytest.raises(ValueError):
        model.cycle_energy(-1, vdd)


def test_block_energy_scales_with_voltage_squared():
    model = BlockEnergyModel("alu", access_energy=1.0, ports=1)
    full = model.cycle_energy(1, DEFAULT_TECHNOLOGY.nominal_vdd)
    scaled = model.cycle_energy(1, DEFAULT_TECHNOLOGY.nominal_vdd / 2)
    assert scaled == pytest.approx(full / 4)


def test_clock_grid_blocks_are_not_gated():
    grid = global_clock_block()
    assert not grid.gated
    assert grid.cycle_energy(0, DEFAULT_TECHNOLOGY.nominal_vdd) == pytest.approx(
        grid.full_cycle_energy)
    local = local_clock_block("fetch")
    assert local.category == "Domain clocks"


def test_default_block_models_cover_figure10_categories():
    models = default_block_models()
    categories = {m.category for m in models.values()}
    for expected in ("Fetch/I-cache", "Issue windows", "ALUs", "D-cache",
                     "Register file", "Rename", "Decode", "Result bus"):
        assert expected in categories
    # bigger issue queues cost more energy per access
    big = default_block_models(int_issue_entries=40)
    assert big["iq_int"].access_energy > models["iq_int"].access_energy


def test_block_model_validation():
    with pytest.raises(ValueError):
        BlockEnergyModel("x", access_energy=-1.0)
    with pytest.raises(ValueError):
        BlockEnergyModel("x", access_energy=1.0, ports=0)


# ----------------------------------------------------------------- accounting
def test_activity_counters_pending_and_totals():
    activity = ActivityCounters()
    activity.record("icache", 2)
    activity.record("icache", 1)
    assert activity.pending("icache") == 3
    assert activity.drain("icache") == 3
    assert activity.pending("icache") == 0
    assert activity.total("icache") == 3
    with pytest.raises(ValueError):
        activity.record("icache", -1)


def test_power_accountant_charges_blocks_per_cycle():
    engine = SimulationEngine()
    domain = ClockDomain(Clock("core", period=1.0), voltage=1.5)
    activity = ActivityCounters()
    accountant = PowerAccountant(activity)
    block = BlockEnergyModel("alu", access_energy=1.0, ports=1)
    accountant.register_block(block, domain)
    domain.bind(engine)

    class Worker:
        def clock_edge(self, cycle, time):
            if cycle < 3:
                activity.record("alu", 1)

    # register after the accountant: components run before hooks regardless
    domain_components_first = Worker()
    domain.add_component(domain_components_first)
    engine.run(until=5.0)
    # 3 active cycles at 1.0 nJ + 3 idle cycles at 0.1 nJ
    assert accountant.energy_by_block["alu"] == pytest.approx(3.3)
    breakdown = accountant.breakdown(elapsed_ns=6.0)
    assert breakdown.total_energy_nj == pytest.approx(3.3)
    assert breakdown.average_power_w == pytest.approx(3.3 / 6.0)
    assert breakdown.by_category["core"] == pytest.approx(3.3)


def test_power_accountant_rejects_duplicate_blocks():
    domain = ClockDomain(Clock("core", period=1.0))
    accountant = PowerAccountant(ActivityCounters())
    block = BlockEnergyModel("alu", access_energy=1.0)
    accountant.register_block(block, domain)
    with pytest.raises(ValueError):
        accountant.register_block(block, domain)


def test_breakdown_normalisation_and_share():
    domain = ClockDomain(Clock("core", period=1.0))
    accountant = PowerAccountant(ActivityCounters())
    accountant.register_block(BlockEnergyModel("alu", access_energy=1.0), domain)
    accountant.energy_by_block["alu"] = 5.0
    breakdown = accountant.breakdown(elapsed_ns=10.0)
    assert breakdown.category_share("core") == pytest.approx(1.0)
    reference = breakdown
    normalised = breakdown.normalised_to(reference)
    assert all(0.0 <= v <= 1.0 for v in normalised.values())
