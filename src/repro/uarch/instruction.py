"""In-flight (dynamic) instruction state.

A :class:`DynamicInstruction` wraps one fetched instruction -- correct-path
(from the workload trace) or wrong-path (synthesised after a misprediction) --
and carries all the per-instruction state the pipeline needs: renamed
registers, the ROB slot, timestamps of every pipeline event, and the
accumulated time spent inside inter-domain FIFOs (the quantity Figure 7
reports).
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

from ..isa.instructions import InstructionClass
from ..isa.trace import TraceInstruction

_SEQ = itertools.count()


class DynamicInstruction:
    """One instruction in flight through the pipeline."""

    __slots__ = (
        "trace", "seq", "epoch", "wrong_path",
        "opclass", "pc", "is_branch", "is_control", "is_load", "is_store",
        "phys_dest", "phys_sources", "prev_phys_dest", "rename_checkpoint",
        "rob_index", "exec_domain",
        "predicted_taken", "mispredicted",
        "fetch_time", "decode_time", "pipe_ready", "rename_time",
        "dispatch_time", "issue_time", "complete_time", "commit_time",
        "fifo_time", "fu_done",
        "squashed", "completed", "issued",
        "wakeup_after", "wakeup_stamp", "pending_ops", "wakeup_queue",
    )

    def __init__(self, trace: TraceInstruction, epoch: int,
                 wrong_path: bool = False,
                 seq: Optional[int] = None) -> None:
        self.trace = trace
        self.seq = seq if seq is not None else next(_SEQ)
        self.epoch = epoch
        self.wrong_path = wrong_path

        # Flattened trace facts: these are read on nearly every pipeline
        # stage of every cycle, so resolve the property chains (trace
        # property -> enum property) exactly once per dynamic instruction.
        opclass = trace.opclass
        self.opclass = opclass
        self.pc = trace.pc
        self.is_branch = trace.is_branch
        self.is_control = (opclass is InstructionClass.BRANCH
                           or opclass is InstructionClass.JUMP)
        self.is_load = opclass is InstructionClass.LOAD
        self.is_store = opclass is InstructionClass.STORE

        self.phys_dest: Optional[int] = None
        self.phys_sources: Tuple[int, ...] = ()
        self.prev_phys_dest: Optional[int] = None
        self.rename_checkpoint = None
        self.rob_index: Optional[int] = None
        self.exec_domain: str = ""

        self.predicted_taken: Optional[bool] = None
        self.mispredicted: bool = False

        # Only the timestamps read before the pipeline necessarily wrote them
        # are initialised here; decode/rename/dispatch/issue times and the
        # functional-unit completion time (``fu_done``) are assigned by their
        # stages before anything reads them.
        self.fetch_time: float = -1.0
        self.complete_time: float = -1.0
        self.commit_time: float = -1.0

        #: accumulated residency (ns) in mixed-clock FIFOs
        self.fifo_time: float = 0.0

        self.squashed: bool = False
        self.completed: bool = False
        self.issued: bool = False

        #: wakeup cache (issue queue): earliest time the operands can all be
        #: visible, or +inf while a producer has not completed yet
        self.wakeup_after: float = -1.0
        #: regfile write-counter stamp at the last failed +inf wakeup check
        self.wakeup_stamp: int = -1
        #: event-driven wakeup: number of source operands whose producers
        #: have not completed yet (maintained by the waiter lists)
        self.pending_ops: int = 0
        #: event-driven wakeup: the IssueQueue holding this entry, so a
        #: producer's writeback can move it onto that queue's ready list
        self.wakeup_queue = None

    # --------------------------------------------------------------- queries
    @property
    def dest(self) -> Optional[int]:
        """Architectural destination register, or None."""
        return self.trace.dest

    @property
    def sources(self) -> Tuple[int, ...]:
        """Architectural source registers (possibly empty)."""
        return self.trace.sources

    @property
    def is_fp(self) -> bool:
        """True for floating-point instructions."""
        return self.opclass.is_fp

    @property
    def is_mem(self) -> bool:
        """True for loads and stores."""
        return self.opclass.is_memory

    @property
    def slip(self) -> float:
        """Fetch-to-commit latency in ns (the paper's 'slip', Figure 6)."""
        if self.commit_time < 0 or self.fetch_time < 0:
            return 0.0
        return self.commit_time - self.fetch_time

    def record_fifo_wait(self, wait: float) -> None:
        """Accumulate time spent in a mixed-clock FIFO."""
        if wait > 0:
            self.fifo_time += wait

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.wrong_path:
            flags.append("wrong-path")
        if self.squashed:
            flags.append("squashed")
        if self.completed:
            flags.append("done")
        flag_text = f" [{', '.join(flags)}]" if flags else ""
        return (f"DynInstr(seq={self.seq}, pc={self.pc:#x}, "
                f"{self.opclass.value}{flag_text})")
