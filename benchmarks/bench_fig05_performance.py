"""Figure 5: performance of the GALS model relative to the base model.

Paper result: the GALS processor is 10 % slower on average (range roughly
5-15 %); fpppp, with its exceptionally low branch density, takes the smallest
hit.  The benchmark times one representative base-vs-GALS pair; the reproduced
figure uses the session-cached full suite.
"""

from repro.analysis import bar_chart, performance_table
from repro.core.experiments import average_performance_drop, run_pair

from conftest import TIMED_INSTRUCTIONS

import pytest

#: figure-reproduction benchmarks are tier-2: heavy, skipped by tier-1
pytestmark = pytest.mark.slow


def test_fig05_relative_performance(benchmark, suite_rows):
    benchmark.pedantic(
        run_pair, args=("perl",), kwargs={"num_instructions": TIMED_INSTRUCTIONS},
        rounds=1, iterations=1)

    print("\n=== Figure 5: GALS performance relative to base ===")
    print(performance_table(suite_rows))
    print()
    print(bar_chart({row.benchmark: row.relative_performance for row in suite_rows},
                    title="relative performance (1.0 = synchronous base)",
                    maximum=1.0))

    average_drop = average_performance_drop(suite_rows)
    # Paper: 5-15 % drop, 10 % on average.
    assert 0.04 < average_drop < 0.20
    fpppp = next(row for row in suite_rows if row.benchmark == "fpppp")
    assert fpppp.relative_performance == max(r.relative_performance
                                             for r in suite_rows)
    assert all(row.relative_performance <= 1.01 for row in suite_rows)
