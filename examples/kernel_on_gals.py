#!/usr/bin/env python3
"""Run a real (assembled and functionally executed) kernel on both machines.

The profile-driven synthetic workloads reproduce the paper's figures, but the
library also runs genuine programs: this example assembles a kernel written in
the small RISC ISA, executes it functionally to obtain its dynamic trace, and
feeds that trace to the synchronous and GALS timing models.

Usage::

    python examples/kernel_on_gals.py [kernel] [size]

Kernels: vector_sum, dot_product, saxpy, matmul, fibonacci, string_search.
"""

import sys

from repro import build_base_processor, build_gals_processor, compare
from repro.workloads import get_kernel


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "dot_product"
    size = int(sys.argv[2]) if len(sys.argv) > 2 else 120

    kernel = get_kernel(name)
    program, memory = kernel.build(size)
    print(f"Kernel '{name}' ({kernel.description}), size {size}: "
          f"{len(program)} static instructions")
    print()
    print(program.listing())
    print()

    trace = kernel.trace(size)
    print(f"dynamic trace: {len(trace)} instructions")

    base = build_base_processor(kernel.trace(size)).run()
    gals = build_gals_processor(kernel.trace(size)).run()
    row = compare(base, gals)

    print()
    print(base.summary())
    print()
    print(gals.summary())
    print()
    print(f"GALS relative performance: {row.relative_performance:.3f}")
    print(f"GALS relative energy:      {row.relative_energy:.3f}")
    print(f"GALS relative power:       {row.relative_power:.3f}")
    print()
    print("per-cluster issue counts (base run):")
    print(f"  note: kernels with FP work exercise the fp cluster; integer "
          f"kernels leave it idle at 10% power, which is what the "
          f"application-driven DVFS policies exploit.")


if __name__ == "__main__":
    main()
