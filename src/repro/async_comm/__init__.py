"""Asynchronous communication mechanisms between clock domains (paper §3.2).

* :class:`~repro.async_comm.fifo.MixedClockFifo` -- the Chelcea/Nowick style
  FIFO used between the GALS processor's synchronous blocks.
* :class:`~repro.async_comm.synchronizer.Synchronizer` -- flip-flop
  synchronizer latency model underlying the FIFO's full/empty flags.
* :class:`~repro.async_comm.pausible.PausibleClockModel` -- analytical model
  of the stretchable-clock alternative the paper argues against.
"""

from .fifo import MixedClockFifo
from .pausible import PausibleClockModel
from .synchronizer import Synchronizer, synchronization_failure_probability

__all__ = [
    "MixedClockFifo",
    "PausibleClockModel",
    "Synchronizer",
    "synchronization_failure_probability",
]
