"""Targeted unit tests for the fetch and decode/rename pipeline stages."""

import pytest

from repro.isa.instructions import InstructionClass
from repro.isa.registers import int_reg
from repro.isa.trace import ListTraceSource, TraceInstruction
from repro.memory.hierarchy import MemoryHierarchy
from repro.power.activity import ActivityCounters
from repro.sim.channel import SyncQueue
from repro.uarch.branch_predictor import BimodalPredictor, BranchTargetBuffer, BranchUnit
from repro.uarch.fetch import FetchUnit, RedirectMessage


def make_trace_instruction(index, pc, opclass=InstructionClass.INT_ALU,
                           taken=False, target=None):
    return TraceInstruction(index=index, pc=pc, opclass=opclass,
                            dest=int_reg(1), sources=(int_reg(2),),
                            is_branch=opclass is InstructionClass.BRANCH,
                            taken=taken, target_pc=target)


def make_fetch_unit(instructions, fetch_width=4):
    source = ListTraceSource(instructions, name="unit-test")
    output = SyncQueue("fetch->decode", capacity=32)
    redirect = SyncQueue("redirect", capacity=4)
    branch_unit = BranchUnit(BimodalPredictor(64), BranchTargetBuffer(16, 2))
    memory = MemoryHierarchy()
    activity = ActivityCounters()
    unit = FetchUnit(source=source, output_channel=output,
                     redirect_channel=redirect, branch_unit=branch_unit,
                     memory=memory, clock_period=lambda: 1.0,
                     activity=activity, fetch_width=fetch_width)
    return unit, output, redirect, branch_unit, activity


def test_fetch_pushes_a_full_group_per_cycle():
    instructions = [make_trace_instruction(i, 0x400000 + 4 * i) for i in range(6)]
    unit, output, _, _, activity = make_fetch_unit(instructions)
    # first access is an I-cache cold miss: the cycle stalls
    unit.clock_edge(0, 0.0)
    assert output.occupancy == 0
    assert unit.icache_stall_cycles >= 1
    # once the line is resident, a full group of 4 is fetched per cycle
    unit._busy_until = float("-inf")
    unit.clock_edge(1, 70.0)
    assert output.occupancy == 4
    fetched = output.items()
    assert [i.trace.index for i in fetched] == [0, 1, 2, 3]
    assert all(i.fetch_time == 70.0 for i in fetched)
    assert activity.total("icache") >= 1


def test_fetch_enters_wrong_path_mode_on_misprediction():
    branch_pc = 0x400010
    instructions = [
        make_trace_instruction(0, 0x400000),
        make_trace_instruction(1, branch_pc, InstructionClass.BRANCH,
                               taken=True, target=0x400100),
        make_trace_instruction(2, 0x400100),
    ]
    unit, output, redirect, branch_unit, _ = make_fetch_unit(instructions)
    # train the predictor to say not-taken for this branch so the (actually
    # taken) branch is guaranteed to mispredict
    for _ in range(4):
        branch_unit.predictor.update(branch_pc, False, False)
    unit.memory.fetch_access(0x400000)  # pre-warm the line
    unit.clock_edge(0, 0.0)
    fetched = output.items()
    branch = next(i for i in fetched if i.is_branch)
    assert branch.mispredicted
    assert unit.wrong_path_mode
    # subsequent fetch cycles produce wrong-path instructions
    unit.clock_edge(1, 1.0)
    assert unit.fetched_wrong_path > 0
    wrong = [i for i in output.items() if i.wrong_path]
    assert wrong and all(i.trace.index == -1 for i in wrong)
    # the correct-path source did not advance past the branch's successor
    assert unit.source.remaining == 1

    # a redirect with a newer epoch ends wrong-path mode
    redirect.push(RedirectMessage(epoch=unit.epoch + 1, branch_seq=branch.seq,
                                  resume_pc=0x400100), 1.5)
    unit.clock_edge(2, 2.0)
    assert not unit.wrong_path_mode
    assert unit.epoch == 1
    assert unit.redirects_received == 1


def test_fetch_stops_at_predicted_taken_branch():
    branch_pc = 0x400004
    instructions = [
        make_trace_instruction(0, 0x400000),
        make_trace_instruction(1, branch_pc, InstructionClass.BRANCH,
                               taken=True, target=0x400200),
        make_trace_instruction(2, 0x400200),
        make_trace_instruction(3, 0x400204),
    ]
    unit, output, _, branch_unit, _ = make_fetch_unit(instructions)
    for _ in range(4):
        branch_unit.predictor.update(branch_pc, True, True)
    unit.memory.fetch_access(0x400000)
    unit.clock_edge(0, 0.0)
    # the group ends with the correctly-predicted taken branch
    assert output.occupancy == 2
    assert not unit.wrong_path_mode


def test_fetch_stalls_when_output_channel_is_full():
    instructions = [make_trace_instruction(i, 0x400000 + 4 * i) for i in range(8)]
    source = ListTraceSource(instructions)
    output = SyncQueue("fetch->decode", capacity=2)
    redirect = SyncQueue("redirect", capacity=4)
    unit = FetchUnit(source=source, output_channel=output,
                     redirect_channel=redirect,
                     branch_unit=BranchUnit(BimodalPredictor(64),
                                            BranchTargetBuffer(16, 2)),
                     memory=MemoryHierarchy(), clock_period=lambda: 1.0,
                     activity=ActivityCounters(), fetch_width=4)
    unit.memory.fetch_access(0x400000)
    unit.clock_edge(0, 0.0)
    assert output.occupancy == 2
    unit.clock_edge(1, 1.0)
    assert unit.fetch_stall_cycles >= 1
    assert source.remaining == 6
