"""Tests for the declarative Scenario subsystem.

Covers the registries, the single run path's bit-identity with the golden
seed values, JSON round-tripping of scenarios and results, determinism, and
the parallel sweep.
"""

from dataclasses import replace

import pytest

from repro.core.scenario import (SCENARIOS, Scenario, ScenarioResult,
                                 available_scenarios, get_scenario,
                                 register_scenario, run_scenario,
                                 sweep_scenarios)
from tests.test_golden_regression import GOLDEN

SMALL = 250


# ------------------------------------------------------------------- registry
def test_registered_scenarios_cover_all_topologies():
    names = available_scenarios()
    for required in ("base", "gals5", "frontback2", "fem3", "alu4"):
        assert required in names


def test_get_scenario_unknown_raises():
    with pytest.raises(KeyError):
        get_scenario("no-such-scenario")


def test_register_scenario_rejects_duplicates():
    with pytest.raises(ValueError):
        register_scenario(Scenario(name="base"))


def test_scenario_validation():
    with pytest.raises(ValueError):
        Scenario(name="")
    with pytest.raises(ValueError):
        Scenario(name="x", num_instructions=0)
    with pytest.raises(ValueError):
        Scenario(name="x", base_period=0.0)


# ------------------------------------------------------------- golden identity
def test_registered_base_and_gals5_scenarios_reproduce_seed_goldens():
    """The scenario path must replay the seed tree's exact floats."""
    for (kind, benchmark, instructions), expected in GOLDEN.items():
        scenario_name = "base" if kind == "base" else "gals5"
        outcome = run_scenario(scenario_name, workload=benchmark,
                               num_instructions=instructions)
        result = outcome.result
        assert result.committed_instructions == expected["committed_instructions"]
        # exact float equality on purpose: the contract is bit-identity
        assert result.elapsed_ns == expected["elapsed_ns"]
        assert result.ipc == expected["ipc"]
        assert result.mean_slip_ns == expected["mean_slip_ns"]
        assert result.total_energy_nj == expected["total_energy_nj"]
        assert result.domain_cycles == expected["domain_cycles"]


def test_run_scenario_is_deterministic():
    first = run_scenario("fem3", num_instructions=SMALL)
    second = run_scenario("fem3", num_instructions=SMALL)
    assert first.result == second.result


# --------------------------------------------------------------- serialization
def test_scenario_json_round_trip_is_equal():
    scenario = Scenario(
        name="roundtrip", topology="alu4", workload="gcc",
        policy="generic", num_instructions=SMALL, seed=7, phase_seed=3,
        slowdowns={"memory": 1.25}, phases={"fetch": 0.4},
        config={"rob_entries": 48}, description="round-trip fixture")
    reloaded = Scenario.from_json(scenario.to_json())
    assert reloaded == scenario


def test_scenario_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError):
        Scenario.from_dict({"name": "x", "warp_factor": 9})


def test_serialized_scenario_runs_identically():
    scenario = replace(get_scenario("gals5-perl-fp3"), num_instructions=SMALL)
    reloaded = Scenario.from_json(scenario.to_json())
    assert run_scenario(reloaded).result == run_scenario(scenario).result


def test_scenario_result_json_round_trip():
    outcome = run_scenario("gals5", num_instructions=SMALL)
    reloaded = ScenarioResult.from_json(outcome.to_json())
    assert reloaded.scenario == outcome.scenario
    assert reloaded.result == outcome.result
    assert reloaded.result.total_energy_nj == outcome.result.total_energy_nj


# ------------------------------------------------------------------ semantics
def test_policy_scenario_scales_voltage_of_slowed_domain():
    outcome = run_scenario("gals5-perl-fp3", num_instructions=SMALL)
    voltages = outcome.result.domain_voltages
    assert voltages["fp"] < voltages["integer"]


def test_policy_projects_onto_coarse_topology_domains():
    """On a merged topology the slowed block drags its whole domain."""
    scenario = Scenario(name="fp3-on-alu4", topology="alu4", workload="perl",
                        policy="perl-fp3", num_instructions=SMALL)
    plan = scenario.build_plan()
    # perl-fp3 slows the fp block by 3x; on alu4 the fp block lives in 'alu'
    assert plan.slowdowns == {"alu": 3.0}


def test_explicit_slowdowns_override_policy():
    scenario = Scenario(name="override", topology="gals5", workload="perl",
                        policy="perl-fp3", slowdowns={"fp": 1.5})
    assert scenario.build_plan().slowdowns == {"fp": 1.5}


def test_unknown_slowdown_domain_rejected():
    scenario = Scenario(name="bad-domain", topology="base",
                        slowdowns={"fp": 2.0})
    with pytest.raises(ValueError):
        scenario.build_plan()


def test_unknown_phase_domain_rejected():
    """A typo in phases must fail loudly, not silently draw a random phase."""
    scenario = Scenario(name="bad-phase", topology="gals5",
                        phases={"fetchh": 0.3})
    with pytest.raises(ValueError, match="fetchh"):
        scenario.build_plan()


def test_config_overrides_reach_the_machine():
    narrow = run_scenario("base", num_instructions=SMALL,
                          config={"fetch_width": 1, "decode_width": 1,
                                  "dispatch_width": 1, "commit_width": 1})
    wide = run_scenario("base", num_instructions=SMALL)
    assert narrow.result.elapsed_ns > wide.result.elapsed_ns


def test_kernel_workload_scenario_runs():
    outcome = run_scenario("dotprod-gals5", kernel_size=16,
                           num_instructions=400)
    assert outcome.result.committed_instructions > 0
    assert outcome.result.processor == "gals"


# ---------------------------------------------------------------------- sweep
def test_sweep_falls_back_to_serial_when_workers_lack_registrations(monkeypatch):
    """Runtime-registered registry entries are invisible to spawn/forkserver
    pool workers; the sweep must recover by running in the parent process."""
    from repro.core import scenario as scenario_module

    def exploding_run_jobs(function, argument_tuples, jobs=None,
                           initializer=None, initargs=()):
        raise KeyError("unknown DVFS policy 'auto-something'")

    monkeypatch.setattr(scenario_module, "_run_jobs", exploding_run_jobs)
    results = sweep_scenarios(["base"], jobs=4, num_instructions=SMALL)
    assert len(results) == 1
    assert results[0].result.committed_instructions == SMALL


def test_sweep_matches_individual_runs_and_parallel_is_serial():
    names = ["base", "gals5", "frontback2"]
    serial = sweep_scenarios(names, jobs=1, num_instructions=SMALL)
    parallel = sweep_scenarios(names, jobs=2, num_instructions=SMALL)
    assert [item.scenario.name for item in serial] == names
    for one, two in zip(serial, parallel):
        assert one.result == two.result
    single = run_scenario("gals5", num_instructions=SMALL)
    assert serial[1].result == single.result
